//! Acceptance tests of the stratified-estimation layer: the single-stratum
//! session collapses bitwise onto the flat path, checkpoint/resume at
//! arbitrary wave cuts is bit-identical at every thread count, and the
//! combined estimate does not depend on the thread count.

use lbs::core::{
    Aggregate, AllocationPolicy, Estimate, LrLbsAggConfig, LrSession, SessionConfig,
    StratifiedSession, StratumEstimator,
};
use lbs::data::{generators::ScenarioBuilder, Dataset, DensityGrid, Stratifier};
use lbs::geom::Rect;
use lbs::service::{LbsBackend, ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn region() -> Rect {
    Rect::from_bounds(0.0, 0.0, 200.0, 200.0)
}

fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    ScenarioBuilder::usa_pois(n)
        .with_bbox(region())
        .build(&mut rng)
}

/// Everything that must agree bitwise between two runs.
fn fingerprint(e: &Estimate) -> (u64, u64, (u64, u64), u64, u64) {
    (
        e.value.to_bits(),
        e.std_error.to_bits(),
        (e.ci95.0.to_bits(), e.ci95.1.to_bits()),
        e.samples,
        e.query_cost,
    )
}

/// Thread counts to exercise: always 1, plus 2 on multi-core machines.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1];
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        >= 2
    {
        counts.push(2);
    }
    counts
}

fn stratified_session(
    service: &SimulatedLbs,
    strata: Vec<lbs::data::Stratum>,
    allocation: AllocationPolicy,
    cfg: SessionConfig,
) -> StratifiedSession<&SimulatedLbs> {
    StratifiedSession::new(
        service,
        &region(),
        &Aggregate::count_all(),
        StratumEstimator::Lr(LrLbsAggConfig::default()),
        strata,
        allocation,
        cfg,
    )
}

#[test]
fn single_stratum_is_bitwise_equal_to_the_flat_session() {
    // `count = 1` must be the flat estimator verbatim: same child config,
    // same seed stream (stratum_seed is the identity), same ledger.
    let d = dataset(100, 21);
    for threads in thread_counts() {
        let cfg = SessionConfig::new(500, 2015).with_threads(threads);
        let flat_service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
        let mut flat = LrSession::new(
            &flat_service,
            &region(),
            &Aggregate::count_all(),
            LrLbsAggConfig::default(),
            lbs::core::lr::History::new(),
            cfg.clone(),
        );
        while !flat.is_finished() {
            flat.step();
        }
        let flat_estimate = flat.finalize().expect("flat session completes");

        let strat_service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
        let strata = Stratifier::grid(1).strata(&region());
        assert_eq!(strata.len(), 1);
        let mut stratified =
            stratified_session(&strat_service, strata, AllocationPolicy::Proportional, cfg);
        while !stratified.is_finished() {
            stratified.step();
        }
        let stratified_estimate = stratified.finalize().expect("stratified session completes");

        assert_eq!(
            fingerprint(&flat_estimate),
            fingerprint(&stratified_estimate),
            "threads {threads}"
        );
        assert_eq!(
            flat_service.queries_issued(),
            strat_service.queries_issued(),
            "service ledger diverged at threads {threads}"
        );
    }
}

/// Runs a stratified session to completion, optionally checkpointing and
/// resuming at wave index `interrupt_at` (like a process that snapshots,
/// dies, and is restarted against the same backend).
fn run_with_interruption(
    service: &SimulatedLbs,
    strata: Vec<lbs::data::Stratum>,
    allocation: AllocationPolicy,
    cfg: SessionConfig,
    interrupt_at: Option<u64>,
) -> (Estimate, u64) {
    let mut session = stratified_session(service, strata, allocation, cfg);
    let mut waves = 0u64;
    while !session.is_finished() {
        if interrupt_at == Some(waves) {
            let checkpoint = session.checkpoint();
            drop(session);
            session = StratifiedSession::resume(service, checkpoint);
        }
        session.step();
        waves += 1;
    }
    let estimate = session.finalize().expect("session completes");
    (estimate, waves)
}

#[test]
fn stratified_checkpoint_resume_is_bit_identical_at_random_wave_cuts() {
    // Neyman allocation makes the mid-run re-allocation a wave-boundary
    // event the checkpoint must capture exactly; random cuts land both
    // before and after it.
    let d = dataset(120, 23);
    let strata = Stratifier::grid(4).strata(&region());
    for threads in thread_counts() {
        let cfg = SessionConfig::new(600, 2015)
            .with_threads(threads)
            .with_wave_size(8);
        let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
        let (baseline, total_waves) = run_with_interruption(
            &service,
            strata.clone(),
            AllocationPolicy::Neyman,
            cfg.clone(),
            None,
        );
        let baseline_ledger = service.queries_issued();
        assert!(total_waves >= 2, "need at least two waves to interrupt");

        let mut rng = StdRng::seed_from_u64(77);
        let mut cut_points: Vec<u64> = (0..3).map(|_| rng.gen_range(0..total_waves)).collect();
        cut_points.push(0);
        cut_points.push(total_waves - 1);
        for cut in cut_points {
            let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
            let (resumed, _) = run_with_interruption(
                &service,
                strata.clone(),
                AllocationPolicy::Neyman,
                cfg.clone(),
                Some(cut),
            );
            assert_eq!(
                fingerprint(&baseline),
                fingerprint(&resumed),
                "threads {threads}, interrupted at wave {cut}"
            );
            assert_eq!(
                baseline_ledger,
                service.queries_issued(),
                "service ledger diverged after resume at wave {cut}"
            );
        }
    }
}

#[test]
fn stratified_estimate_does_not_depend_on_the_thread_count() {
    // Density partitions exercise the weighted stratum weights; the
    // combined estimate must be bit-identical at every thread count.
    let d = dataset(150, 29);
    let grid = DensityGrid::from_dataset(&d, 32, 1, 0.1);
    let strata = Stratifier::density(grid, 4).strata(&region());
    let mut fingerprints = Vec::new();
    for threads in thread_counts() {
        let cfg = SessionConfig::new(500, 2015)
            .with_threads(threads)
            .with_wave_size(8);
        let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
        let (estimate, _) = run_with_interruption(
            &service,
            strata.clone(),
            AllocationPolicy::Proportional,
            cfg,
            None,
        );
        fingerprints.push(fingerprint(&estimate));
    }
    for pair in fingerprints.windows(2) {
        assert_eq!(pair[0], pair[1], "thread count changed the estimate");
    }
}
