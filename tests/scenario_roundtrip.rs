//! Acceptance tests of the scenario layer and the pluggable backend:
//!
//! * built-in experiments and their committed `scenarios/*.toml` specs
//!   render byte-identical CSV, at 1 thread and (when the machine reports
//!   more than one CPU) at 2 threads;
//! * declarative scenarios are bit-identical across thread counts;
//! * the unmodified estimators produce bit-identical estimates through the
//!   answer-preserving rate-limiter decorator.

use std::path::Path;
use std::time::Duration;

use lbs::core::driver::SampleDriver;
use lbs::core::{Aggregate, Estimate, LrLbsAgg, LrLbsAggConfig};
use lbs::data::generators::ScenarioBuilder;
use lbs::service::{LatencyBackend, LbsBackend, RateLimitedBackend, ServiceConfig, SimulatedLbs};
use lbs_bench::{
    load_scenario, load_scenario_dir, run_experiment_threaded, run_scenario, Scale, ScenarioContext,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx(threads: usize) -> ScenarioContext {
    ScenarioContext {
        scale: Scale::Micro,
        seed: 2015,
        threads,
        smoke: false,
    }
}

fn scenario_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name)
}

/// On the single-core CI container the 2-thread legs are skipped; they run
/// wherever the OS reports real parallelism.
fn multi_core() -> bool {
    std::thread::available_parallelism()
        .map(|n| n.get() >= 2)
        .unwrap_or(false)
}

#[test]
fn builtin_toml_scenarios_match_the_hardcoded_experiments_bitwise() {
    // fig12 exercises all three estimators, fig20 the LR ablation ladder —
    // together they cover the estimator code paths the other figures reuse.
    for id in ["fig12", "fig20"] {
        let scenario = load_scenario(&scenario_path(&format!("{id}.toml"))).expect("load");
        let direct = run_experiment_threaded(id, Scale::Micro, 2015, 1);
        let via_scenario = run_scenario(&scenario, &ctx(1)).expect("run");
        assert_eq!(
            direct.to_csv(),
            via_scenario.to_csv(),
            "{id}: scenario CSV differs from the hard-coded path at 1 thread"
        );

        if multi_core() {
            let parallel = run_scenario(&scenario, &ctx(2)).expect("run");
            assert_eq!(
                direct.to_csv(),
                parallel.to_csv(),
                "{id}: scenario CSV differs from the hard-coded path at 2 threads"
            );
        }
    }
}

#[test]
fn every_committed_scenario_loads_and_validates() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let scenarios = load_scenario_dir(&dir).expect("scenario dir loads");
    assert!(
        scenarios.len() >= 17,
        "expected the 12 built-in plus declarative scenarios, found {}",
        scenarios.len()
    );
    // Every built-in experiment id is covered by a committed spec.
    for id in lbs_bench::all_experiment_ids() {
        assert!(
            scenarios
                .iter()
                .any(|s| s.experiment.as_deref() == Some(id)),
            "no committed scenario covers built-in experiment {id}"
        );
    }
}

#[test]
fn declarative_scenarios_are_bit_identical_across_thread_counts() {
    let scenario = load_scenario(&scenario_path("grid_lattice_count.toml")).expect("load");
    let serial = run_scenario(&scenario, &ctx(1)).expect("serial run");
    assert!(!serial.rows.is_empty());
    if multi_core() {
        let parallel = run_scenario(&scenario, &ctx(2)).expect("parallel run");
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "declarative scenario differs between 1 and 2 threads"
        );
    }
}

/// Everything that must agree bitwise between two runs.
fn fingerprint(e: &Estimate) -> (f64, f64, (f64, f64), u64, u64) {
    (e.value, e.std_error, e.ci95, e.samples, e.query_cost)
}

#[test]
fn estimates_are_bit_identical_through_answer_preserving_decorators() {
    // The acceptance criterion of the backend extraction: the estimator runs
    // unmodified against a rate-limited (and latency-injected) decorator
    // stack and produces the exact estimate of the undecorated service.
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = ScenarioBuilder::usa_pois(250).build(&mut rng);
    let region = dataset.bbox();
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let driver = SampleDriver::serial();
    let agg = Aggregate::count_schools();

    let run = |backend: &dyn LbsBackend| -> Estimate {
        let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
        estimator
            .estimate_parallel(backend, &region, &agg, 600, 2015, &driver)
            .expect("estimation succeeds")
    };

    let plain = run(&service);
    let rate_limited = RateLimitedBackend::new(&service, 150, Duration::from_millis(1));
    let throttled = run(&rate_limited);
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&throttled),
        "rate limiting must not change estimates"
    );
    assert!(rate_limited.throttled_queries() > 0);

    let stacked = LatencyBackend::new(
        RateLimitedBackend::new(&service, 300, Duration::from_millis(1)),
        Duration::from_millis(0),
    );
    let decorated = run(&stacked);
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&decorated),
        "nested decorators must not change estimates"
    );
}
