//! Acceptance tests of the anytime-session layer: checkpoint/resume
//! determinism (bitwise, including the service ledger), anytime snapshots,
//! early stopping, and answer-preservation of the pluggable index backends.

use lbs::core::{
    Aggregate, Estimate, EstimationSession, LnrLbsAggConfig, LnrSession, LrLbsAgg, LrLbsAggConfig,
    LrSession, SampleDriver, SessionCheckpoint, SessionConfig, StopReason,
};
use lbs::data::{generators::ScenarioBuilder, Dataset};
use lbs::geom::Rect;
use lbs::service::{IndexKind, LbsBackend, ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn region() -> Rect {
    Rect::from_bounds(0.0, 0.0, 200.0, 200.0)
}

fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    ScenarioBuilder::usa_pois(n)
        .with_bbox(region())
        .build(&mut rng)
}

/// Everything that must agree bitwise between two runs.
fn fingerprint(e: &Estimate) -> (u64, u64, (u64, u64), u64, u64) {
    (
        e.value.to_bits(),
        e.std_error.to_bits(),
        (e.ci95.0.to_bits(), e.ci95.1.to_bits()),
        e.samples,
        e.query_cost,
    )
}

/// Thread counts to exercise: always 1, plus 2 on multi-core machines
/// (this container has a single CPU; oversubscribing real estimator work
/// would only slow the test without changing coverage — bit-identity across
/// thread counts is separately locked by `parallel_determinism.rs`).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1];
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        >= 2
    {
        counts.push(2);
    }
    counts
}

/// Runs an LR wave-mode session to completion, checkpointing and resuming
/// at wave index `interrupt_at` (on the same service, like a process that
/// snapshots its state, dies, and is restarted against the same backend).
fn lr_run_with_interruption(
    service: &SimulatedLbs,
    budget: u64,
    seed: u64,
    threads: usize,
    wave_size: Option<u64>,
    interrupt_at: Option<u64>,
) -> (Estimate, u64) {
    let mut cfg = SessionConfig::new(budget, seed).with_threads(threads);
    if let Some(wave) = wave_size {
        cfg = cfg.with_wave_size(wave);
    }
    let mut session = LrSession::new(
        service,
        &region(),
        &Aggregate::count_all(),
        LrLbsAggConfig::default(),
        lbs::core::lr::History::new(),
        cfg,
    );
    let mut waves = 0u64;
    while !session.is_finished() {
        if interrupt_at == Some(waves) {
            // Snapshot, drop the live session, resume from the snapshot.
            let checkpoint = session.checkpoint();
            drop(session);
            session = LrSession::resume(service, checkpoint);
        }
        session.step();
        waves += 1;
    }
    let estimate = session.finalize().expect("session completes");
    (estimate, waves)
}

#[test]
fn lr_checkpoint_resume_is_bit_identical_at_random_wave_indices() {
    let d = dataset(120, 31);
    for threads in thread_counts() {
        let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
        let (baseline, total_waves) =
            lr_run_with_interruption(&service, 900, 2015, threads, None, None);
        let baseline_ledger = service.queries_issued();
        assert!(total_waves >= 2, "need at least two waves to interrupt");

        // A seeded sweep of random interruption points (plus the first and
        // last wave boundaries as edge cases).
        let mut rng = StdRng::seed_from_u64(77);
        let mut cut_points: Vec<u64> = (0..4).map(|_| rng.gen_range(0..total_waves)).collect();
        cut_points.push(0);
        cut_points.push(total_waves - 1);
        for cut in cut_points {
            let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
            let (resumed, _) =
                lr_run_with_interruption(&service, 900, 2015, threads, None, Some(cut));
            assert_eq!(
                fingerprint(&baseline),
                fingerprint(&resumed),
                "threads {threads}, interrupted at wave {cut}"
            );
            assert_eq!(baseline.trace, resumed.trace, "trace at wave {cut}");
            assert_eq!(
                baseline_ledger,
                service.queries_issued(),
                "service ledger diverged after resume at wave {cut}"
            );
            assert_eq!(baseline.engine, resumed.engine, "engine report at {cut}");
        }
    }
}

#[test]
fn lr_checkpoint_resume_with_wave_size_one_hits_every_sample_index() {
    // wave_size = 1 makes every sample index a wave boundary, so this is
    // checkpoint/resume at a random *sample* index.
    let d = dataset(60, 33);
    for threads in thread_counts() {
        let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(6));
        let (baseline, total) = lr_run_with_interruption(&service, 250, 7, threads, Some(1), None);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..3 {
            let cut = rng.gen_range(0..total);
            let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(6));
            let (resumed, _) =
                lr_run_with_interruption(&service, 250, 7, threads, Some(1), Some(cut));
            assert_eq!(
                fingerprint(&baseline),
                fingerprint(&resumed),
                "threads {threads}, sample index {cut}"
            );
        }
    }
}

#[test]
fn lnr_session_checkpoint_resume_is_bit_identical() {
    let d = dataset(40, 35);
    let service = SimulatedLbs::new(d.clone(), ServiceConfig::lnr_lbs(8));
    let config = LnrLbsAggConfig {
        delta: 0.3,
        ..LnrLbsAggConfig::default()
    };
    let run = |interrupt: Option<u64>| {
        let service = SimulatedLbs::new(d.clone(), ServiceConfig::lnr_lbs(8));
        let mut session = LnrSession::new(
            &service,
            &region(),
            &Aggregate::count_all(),
            config.clone(),
            SessionConfig::new(400, 11).with_wave_size(4),
        );
        let mut waves = 0u64;
        while !session.is_finished() {
            if interrupt == Some(waves) {
                let checkpoint = session.checkpoint();
                drop(session);
                session = LnrSession::resume(&service, checkpoint);
            }
            session.step();
            waves += 1;
        }
        (session.finalize().expect("finishes"), waves)
    };
    drop(service);
    let (baseline, waves) = run(None);
    for cut in [0, waves / 2, waves - 1] {
        let (resumed, _) = run(Some(cut));
        assert_eq!(fingerprint(&baseline), fingerprint(&resumed), "wave {cut}");
    }
}

#[test]
fn type_erased_sessions_checkpoint_through_the_enum() {
    // The scheduler-facing wrapper: checkpoint an EstimationSession mid-run,
    // rebuild it from the SessionCheckpoint, and finish — bitwise equal.
    let d = dataset(80, 41);
    let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(8));
    let fresh = |svc| {
        EstimationSession::Lr(Box::new(LrSession::new(
            svc,
            &region(),
            &Aggregate::count_restaurants(),
            LrLbsAggConfig::default(),
            lbs::core::lr::History::new(),
            SessionConfig::new(400, 5).with_wave_size(8),
        )))
    };
    let mut baseline_session = fresh(&service);
    while !baseline_session.is_finished() {
        baseline_session.step();
    }
    let baseline = baseline_session.finalize().unwrap();

    let service2 = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(8));
    let mut session = fresh(&service2);
    session.step();
    session.step();
    let checkpoint: SessionCheckpoint = session.checkpoint();
    drop(session);
    let mut resumed = EstimationSession::resume(&service2, checkpoint);
    while !resumed.is_finished() {
        resumed.step();
    }
    let resumed = resumed.finalize().unwrap();
    assert_eq!(fingerprint(&baseline), fingerprint(&resumed));
    assert_eq!(service.queries_issued(), service2.queries_issued());
}

#[test]
fn anytime_snapshots_converge_and_stop_rules_fire() {
    let d = dataset(100, 43);
    let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10));
    let mut session = LrSession::new(
        &service,
        &region(),
        &Aggregate::count_all(),
        LrLbsAggConfig::default(),
        lbs::core::lr::History::new(),
        SessionConfig::new(100_000, 3)
            .with_wave_size(16)
            .with_target_ci_halfwidth(60.0),
    );
    let mut last_queries = 0;
    while !session.is_finished() {
        session.step();
        let snap = session.snapshot();
        assert!(snap.queries >= last_queries, "queries are monotone");
        last_queries = snap.queries;
        if snap.samples >= 2 {
            assert!(snap.std_error >= 0.0);
            assert!(snap.ci95.0 <= snap.value && snap.value <= snap.ci95.1);
        }
    }
    let snap = session.snapshot();
    // The budget is huge; the session must have stopped on the CI target.
    assert_eq!(snap.stop, Some(StopReason::TargetPrecision));
    assert!(snap.ci_halfwidth() <= 60.0);
    assert!(snap.queries < 100_000);
    // finalize() agrees with the snapshot.
    let estimate = session.finalize().unwrap();
    assert_eq!(estimate.value.to_bits(), snap.value.to_bits());
    assert_eq!(estimate.samples, snap.samples);
}

#[test]
fn serial_estimate_is_a_thin_loop_over_sessions() {
    // The batch facade and a hand-driven serial session must agree bitwise
    // when fed the same RNG stream.
    let d = dataset(90, 47);
    let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(8));
    let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
    let mut rng = StdRng::seed_from_u64(13);
    let batch = estimator
        .estimate(&service, &region(), &Aggregate::count_all(), 300, &mut rng)
        .unwrap();

    let service2 = SimulatedLbs::new(d, ServiceConfig::lr_lbs(8));
    let mut rng = StdRng::seed_from_u64(13);
    let mut session = LrSession::new_serial(
        &service2,
        &region(),
        &Aggregate::count_all(),
        LrLbsAggConfig::default(),
        lbs::core::lr::History::new(),
        300,
    );
    while !session.is_finished() {
        session.step_serial(&mut rng);
    }
    let manual = session.finalize().unwrap();
    assert_eq!(fingerprint(&batch), fingerprint(&manual));
    assert_eq!(service.queries_issued(), service2.queries_issued());
}

#[test]
fn index_backends_are_answer_preserving_end_to_end() {
    // The `index = grid|kdtree|brute` knob must never change an estimate:
    // all backends are exact with the same canonical order, so the whole
    // estimation pipeline is bit-identical across them.
    let d = dataset(140, 51);
    let run = |kind: IndexKind| {
        let service = SimulatedLbs::new(d.clone(), ServiceConfig::lr_lbs(10).with_index(kind));
        let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
        estimator
            .estimate_parallel(
                &service,
                &region(),
                &Aggregate::count_all(),
                600,
                2015,
                &SampleDriver::serial(),
            )
            .unwrap()
    };
    let grid = run(IndexKind::Grid);
    for kind in [IndexKind::KdTree, IndexKind::Brute] {
        let other = run(kind);
        assert_eq!(
            fingerprint(&grid),
            fingerprint(&other),
            "index backend {kind:?} changed the estimate"
        );
        assert_eq!(grid.trace, other.trace, "{kind:?}");
    }
}
