//! Invalidation property battery for the shared answer cache: random
//! insert/delete streams against a brute-force kNN oracle (a stale hit is
//! impossible by construction — every post-mutation answer is re-derived
//! from scratch and compared), plus a concurrent stress test showing that
//! N threads hammering one shared cache keep the hit/miss counters
//! consistent and produce answers identical to a serial run.

use lbs::data::{Dataset, Tuple};
use lbs::geom::{Point, Rect};
use lbs::service::{
    backend_fingerprint, AnswerCache, CachingBackend, LbsBackend, QueryResponse, ServiceConfig,
    SimulatedLbs,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn region() -> Rect {
    Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
}

/// Bare tuples at seeded-random positions; attributes play no role here.
fn seed_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n)
        .map(|id| {
            Tuple::new(
                id as u64,
                Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0),
            )
        })
        .collect();
    Dataset::new(tuples, region())
}

/// A fixed grid of query points, reused across every mutation step so that
/// surviving cache entries actually get re-used (and would surface as stale
/// answers if invalidation under-approximated).
fn probe_points() -> Vec<Point> {
    let mut points = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            points.push(Point::new(10.0 + 20.0 * i as f64, 10.0 + 20.0 * j as f64));
        }
    }
    points
}

/// Brute-force kNN under the service's canonical distance ranking:
/// `(distance, id)` with a total order on floats.
fn oracle_knn(dataset: &Dataset, query: &Point, k: usize) -> Vec<u64> {
    let mut scored: Vec<(f64, u64)> = dataset
        .tuples()
        .iter()
        .map(|t| (t.location.distance(query), t.id))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, id)| id).collect()
}

/// Applies one seeded-random mutation to `dataset`, migrating `cache`
/// across the version bump exactly like the scenario runner does.
fn mutate(dataset: &mut Dataset, cache: &AnswerCache, config: &ServiceConfig, rng: &mut StdRng) {
    let old = backend_fingerprint(dataset, config);
    if dataset.len() <= 5 || rng.gen::<f64>() < 0.6 {
        let location = Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0);
        dataset.insert(Tuple::new(dataset.next_id(), location));
        let new = backend_fingerprint(dataset, config);
        cache.apply_insert(old, new, &location);
    } else {
        let index = ((rng.gen::<f64>() * dataset.len() as f64) as usize).min(dataset.len() - 1);
        let id = dataset.tuples()[index].id;
        dataset.remove(id).expect("chosen id exists");
        let new = backend_fingerprint(dataset, config);
        cache.apply_delete(old, new, id);
    }
}

#[test]
fn random_mutation_streams_never_serve_stale_answers() {
    let k = 5;
    let config = ServiceConfig::lr_lbs(k);
    let cache = AnswerCache::unbounded();
    let mut dataset = seed_dataset(40, 9);
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let probes = probe_points();

    for step in 0..30 {
        let backend = CachingBackend::over_service(
            SimulatedLbs::new(dataset.clone(), config.clone()),
            cache.share(),
            true,
        );
        for query in &probes {
            let response = backend.query(query).expect("query succeeds");
            let got: Vec<u64> = response.results.iter().map(|r| r.id).collect();
            let want = oracle_knn(&dataset, query, k);
            assert_eq!(
                got, want,
                "step {step}: answer at ({}, {}) does not match the brute-force \
                 oracle — a stale cache entry survived a mutation it affected",
                query.x, query.y
            );
        }
        mutate(&mut dataset, &cache, &config, &mut rng);
    }

    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "no probe ever re-used a surviving entry — the stream exercised nothing"
    );
    assert!(
        stats.invalidations > 0,
        "thirty mutations never invalidated a single entry"
    );
}

#[test]
fn under_full_answers_carry_no_insert_certificate() {
    // With fewer tuples than k and no max_radius, *any* insert can surface
    // in an answer, no matter how distant: the certificate must degrade to
    // "invalidate on every insert" rather than keep a bogus radius.
    let k = 5;
    let config = ServiceConfig::lr_lbs(k);
    let cache = AnswerCache::unbounded();
    let mut dataset = seed_dataset(3, 11);
    let probes = probe_points();

    for step in 0..10 {
        let backend = CachingBackend::over_service(
            SimulatedLbs::new(dataset.clone(), config.clone()),
            cache.share(),
            true,
        );
        for query in &probes {
            let response = backend.query(query).expect("query succeeds");
            let got: Vec<u64> = response.results.iter().map(|r| r.id).collect();
            assert_eq!(
                got,
                oracle_knn(&dataset, query, k),
                "step {step}: stale under-full answer at ({}, {})",
                query.x,
                query.y
            );
        }
        // Inserts only, far corner first: distance is no excuse to keep an
        // under-full entry.
        let old = backend_fingerprint(&dataset, &config);
        let location = Point::new(99.0 - step as f64, 99.0);
        dataset.insert(Tuple::new(dataset.next_id(), location));
        let new = backend_fingerprint(&dataset, &config);
        cache.apply_insert(old, new, &location);
    }
    assert!(cache.stats().invalidations > 0);
}

#[test]
fn concurrent_hammering_matches_serial_and_keeps_counters_consistent() {
    let k = 5;
    let config = ServiceConfig::lr_lbs(k);
    let dataset = seed_dataset(80, 17);
    let probes = probe_points();

    // Serial reference: every probe once, through a private cold cache.
    let serial_cache = AnswerCache::unbounded();
    let serial = CachingBackend::over_service(
        SimulatedLbs::new(dataset.clone(), config.clone()),
        serial_cache.share(),
        true,
    );
    let reference: Vec<QueryResponse> = probes
        .iter()
        .map(|q| serial.query(q).expect("serial query succeeds"))
        .collect();

    // Concurrent run: several threads, several rounds each, every thread
    // walking the probe list from a different offset so leaders and waiters
    // interleave on the same keys.
    let threads = 4;
    let rounds = 3;
    let cache = AnswerCache::unbounded();
    let backend = CachingBackend::over_service(
        SimulatedLbs::new(dataset.clone(), config.clone()),
        cache.share(),
        true,
    );
    std::thread::scope(|scope| {
        for t in 0..threads {
            let backend = &backend;
            let probes = &probes;
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..rounds {
                    for i in 0..probes.len() {
                        let index = (i + t * 7 + round) % probes.len();
                        let response = backend
                            .query(&probes[index])
                            .expect("concurrent query succeeds");
                        assert_eq!(
                            response, reference[index],
                            "thread {t}, round {round}: concurrent answer diverged from serial"
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    let lookups = (threads * rounds * probes.len()) as u64;
    assert_eq!(
        stats.misses,
        probes.len() as u64,
        "single-flight must admit each distinct key exactly once, regardless of interleaving"
    );
    assert_eq!(stats.hits + stats.misses, lookups);
    assert_eq!(stats.invalidations, 0);
    assert_eq!(stats.evictions, 0);
    // Metered hits charge the shared ledger like real queries, so the ledger
    // reads exactly one charge per lookup.
    assert_eq!(backend.queries_issued(), lookups);
}
