//! Acceptance tests of the parallel sample driver: bit-identical results
//! across thread counts for all three estimators, sane behaviour under hard
//! service limits, and (on multi-core machines) actual wall-clock speedup.

use lbs::core::driver::SampleDriver;
use lbs::core::{
    Aggregate, Estimate, LnrLbsAgg, LnrLbsAggConfig, LrLbsAgg, LrLbsAggConfig, NnoBaseline,
    NnoConfig,
};
use lbs::data::{generators::ScenarioBuilder, Dataset};
use lbs::geom::Rect;
use lbs::service::{LbsBackend, ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn region() -> Rect {
    Rect::from_bounds(0.0, 0.0, 200.0, 200.0)
}

fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    ScenarioBuilder::usa_pois(n)
        .with_bbox(region())
        .build(&mut rng)
}

/// Everything that must agree bitwise between two runs.
fn fingerprint(e: &Estimate) -> (f64, f64, (f64, f64), u64, u64) {
    (e.value, e.std_error, e.ci95, e.samples, e.query_cost)
}

#[test]
fn lr_estimates_are_bit_identical_from_1_to_8_threads() {
    let d = dataset(150, 21);
    let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
    let run = |threads: usize| {
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        est.estimate_parallel(
            &service,
            &region(),
            &Aggregate::count_all(),
            1_500,
            2015,
            &SampleDriver::new(threads),
        )
        .unwrap()
    };
    let baseline = run(1);
    for threads in [2, 4, 8] {
        let other = run(threads);
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&other),
            "LR estimate diverged at {threads} threads"
        );
        assert_eq!(baseline.trace, other.trace);
    }
    // And the estimate is actually useful, not just consistent.
    assert!(baseline.relative_error(150.0) < 0.5);
    assert!(baseline.query_cost >= 1_500);
}

#[test]
fn lnr_estimates_are_bit_identical_from_1_to_8_threads() {
    let d = dataset(60, 23);
    let truth = d.len() as f64;
    let service = SimulatedLbs::new(d, ServiceConfig::lnr_lbs(10));
    let run = |threads: usize| {
        let mut est = LnrLbsAgg::new(LnrLbsAggConfig {
            delta: 0.2,
            ..LnrLbsAggConfig::default()
        });
        est.estimate_parallel(
            &service,
            &region(),
            &Aggregate::count_all(),
            3_000,
            7,
            &SampleDriver::new(threads),
        )
        .unwrap()
    };
    let baseline = run(1);
    let parallel = run(8);
    assert_eq!(fingerprint(&baseline), fingerprint(&parallel));
    assert!(baseline.relative_error(truth) < 0.8);
}

#[test]
fn nno_estimates_are_bit_identical_from_1_to_8_threads() {
    let d = dataset(100, 25);
    let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
    let run = |threads: usize| {
        let mut est = NnoBaseline::new(NnoConfig::default());
        est.estimate_parallel(
            &service,
            &region(),
            &Aggregate::count_all(),
            1_200,
            11,
            &SampleDriver::new(threads),
        )
        .unwrap()
    };
    let baseline = run(1);
    let parallel = run(8);
    assert_eq!(fingerprint(&baseline), fingerprint(&parallel));
}

#[test]
fn repeated_parallel_runs_reuse_history_and_stay_deterministic() {
    // Two estimate_parallel calls on the same estimator: the second starts
    // from the history the first absorbed. The pair must replay identically
    // at any thread count.
    let d = dataset(120, 27);
    let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
    let run_pair = |threads: usize| {
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        let driver = SampleDriver::new(threads);
        let first = est
            .estimate_parallel(
                &service,
                &region(),
                &Aggregate::count_all(),
                600,
                1,
                &driver,
            )
            .unwrap();
        let learned = est.history().len();
        let second = est
            .estimate_parallel(
                &service,
                &region(),
                &Aggregate::count_all(),
                600,
                2,
                &driver,
            )
            .unwrap();
        (fingerprint(&first), learned, fingerprint(&second))
    };
    assert_eq!(run_pair(1), run_pair(8));
    let (_, learned, _) = run_pair(4);
    assert!(learned > 0, "the driver must absorb history back");
}

#[test]
fn hard_service_limit_surfaces_as_no_samples_or_truncated_run() {
    // A hard limit far below one sample's cost: the driver must give up
    // cleanly (NoSamples), never hang or panic.
    let d = dataset(50, 29);
    let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(5).with_query_limit(1));
    let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
    let res = est.estimate_parallel(
        &service,
        &region(),
        &Aggregate::count_all(),
        500,
        3,
        &SampleDriver::new(4),
    );
    assert!(matches!(res, Err(lbs::core::EstimateError::NoSamples)));

    // A limit that allows some but not all samples: the run ends with a
    // usable estimate whose cost respects the hard limit.
    let d = dataset(80, 31);
    let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(5).with_query_limit(400));
    let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
    let out = est
        .estimate_parallel(
            &service,
            &region(),
            &Aggregate::count_all(),
            10_000,
            3,
            &SampleDriver::new(4),
        )
        .unwrap();
    assert!(out.samples > 0);
    assert!(service.queries_issued() <= 400);
}

/// Wall-clock speedup check. Requires real cores: on machines with fewer
/// than 4 CPUs the assertion is skipped (there is nothing to measure), and
/// `repro --threads N` records the honest measurement in
/// `BENCH_repro.json` instead.
#[test]
fn four_threads_beat_one_on_multicore_machines() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} CPU(s) available");
        return;
    }
    let d = dataset(400, 33);
    let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
    let timed = |threads: usize| {
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        // lbs-lint: allow(ambient-time, reason = "speedup probe timing; assertions compare estimates, not times")
        let started = std::time::Instant::now();
        let out = est
            .estimate_parallel(
                &service,
                &region(),
                &Aggregate::count_schools(),
                4_000,
                2015,
                &SampleDriver::new(threads),
            )
            .unwrap();
        (started.elapsed().as_secs_f64(), out)
    };
    // Warm up caches once, then measure.
    let _ = timed(1);
    let (serial_s, serial) = timed(1);
    let (parallel_s, parallel) = timed(4);
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    let speedup = serial_s / parallel_s.max(1e-9);
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup on 4 threads ({cores} CPUs), measured {speedup:.2}x \
         (serial {serial_s:.2}s, parallel {parallel_s:.2}s)"
    );
}
