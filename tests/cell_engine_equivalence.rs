//! Pruned-versus-full cell-engine equivalence, from geometry to estimates.
//!
//! The security-radius certificate of `lbs_geom::cell_engine` claims the
//! pruned construction is *exactly* the full one — not approximately. These
//! tests hold it to that claim at every layer:
//!
//! * a seeded property loop over random sites, known-sets and `h` asserting
//!   the pruned construction returns byte-identical vertices and area to
//!   the unpruned O(n) construction, including collinear and
//!   duplicate-distance tie configurations;
//! * byte-identity of the `k = 1` path against the original
//!   `lbs_geom::top_k_cell` oracle (same clip sequence, certified clips
//!   provably the identity);
//! * byte-identity of whole LR-LBS-AGG estimates with pruning and the cell
//!   cache enabled versus disabled, serial and parallel — the acceptance
//!   gate of the engine: speed must not move a single bit of any estimate.

use lbs::core::driver::SampleDriver;
use lbs::core::{Aggregate, LrLbsAgg, LrLbsAggConfig};
use lbs::data::ScenarioBuilder;
use lbs::geom::{
    level_region, level_region_pruned, level_region_pruned_with, top_k_cell, top_k_cell_pruned,
    top_k_cell_pruned_with, ClipScratch,
};
use lbs::geom::{sort_by_distance, HalfPlane, Point, Rect};
use lbs::service::{ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bbox() -> Rect {
    Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
}

fn assert_points_bitwise(a: &[Point], b: &[Point], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: vertex counts differ");
    for (pa, pb) in a.iter().zip(b.iter()) {
        assert_eq!(pa.x.to_bits(), pb.x.to_bits(), "{context}: x bits differ");
        assert_eq!(pa.y.to_bits(), pb.y.to_bits(), "{context}: y bits differ");
    }
}

/// Random known-set generator mixing uniform spread, a dense cluster near
/// the site (so pruning has something to certify), and deliberate
/// degeneracies: duplicate-distance ties, exact duplicates and collinear
/// runs.
fn random_candidates(rng: &mut StdRng, site: &Point) -> Vec<Point> {
    let n_uniform = rng.gen_range(4..20);
    let n_cluster = rng.gen_range(3..10);
    let mut pts: Vec<Point> = Vec::new();
    for _ in 0..n_uniform {
        pts.push(Point::new(
            rng.gen_range(0.0..100.0),
            rng.gen_range(0.0..100.0),
        ));
    }
    for _ in 0..n_cluster {
        pts.push(Point::new(
            (site.x + rng.gen_range(-8.0..8.0)).clamp(0.0, 100.0),
            (site.y + rng.gen_range(-8.0..8.0)).clamp(0.0, 100.0),
        ));
    }
    // Duplicate-distance tie: two candidates at the same distance from the
    // site in different directions.
    let d = rng.gen_range(3.0..20.0);
    pts.push(Point::new(site.x + d, site.y));
    pts.push(Point::new(site.x, site.y + d));
    // Exact duplicate of an existing candidate (coincident bisectors).
    let dup = pts[rng.gen_range(0..pts.len())];
    pts.push(dup);
    // Collinear run through the site.
    let step = rng.gen_range(2.0..6.0);
    for i in 1..=3 {
        pts.push(Point::new(site.x + step * i as f64, site.y));
    }
    pts.retain(|p| bbox().contains(p));
    sort_by_distance(site, &mut pts);
    pts
}

#[test]
fn property_pruned_equals_full_bitwise_over_random_configs() {
    let mut rng = StdRng::seed_from_u64(0x5eed_ce11);
    for case in 0..60 {
        let site = Point::new(rng.gen_range(5.0..95.0), rng.gen_range(5.0..95.0));
        let candidates = random_candidates(&mut rng, &site);
        for k in 1..=3usize {
            let (pruned, pruned_stats) = top_k_cell_pruned(&site, &candidates, k, &bbox(), true);
            let (full, full_stats) = top_k_cell_pruned(&site, &candidates, k, &bbox(), false);
            let context = format!("case {case}, k={k}");
            assert_eq!(
                pruned.area.to_bits(),
                full.area.to_bits(),
                "{context}: area bits differ (pruned {} vs full {})",
                pruned.area,
                full.area
            );
            assert_points_bitwise(&pruned.vertices, &full.vertices, &context);
            assert_eq!(full_stats.pruned, 0, "{context}: full mode must not prune");
            assert_eq!(
                pruned_stats.incorporated + pruned_stats.pruned,
                pruned_stats.candidates,
                "{context}: stats must account for every candidate"
            );
        }
    }
}

#[test]
fn property_k1_pruned_equals_legacy_oracle_bitwise() {
    // For k = 1 the legacy construction is a plain clip sequence; on the
    // same ascending candidate order the pruned path must reproduce it
    // bit for bit (certified clips are the identity on the vertex list).
    let mut rng = StdRng::seed_from_u64(0x000a_c1e5);
    for case in 0..80 {
        let site = Point::new(rng.gen_range(5.0..95.0), rng.gen_range(5.0..95.0));
        let candidates = random_candidates(&mut rng, &site);
        let oracle = top_k_cell(&site, &candidates, 1, &bbox());
        let (pruned, _) = top_k_cell_pruned(&site, &candidates, 1, &bbox(), true);
        let context = format!("case {case}");
        assert_eq!(
            pruned.area.to_bits(),
            oracle.area.to_bits(),
            "{context}: area bits differ from legacy oracle"
        );
        assert_points_bitwise(&pruned.vertices, &oracle.vertices, &context);
    }
}

#[test]
fn property_concave_area_matches_legacy_slab_oracle() {
    // For k > 1 the engine computes the area by the boundary-structure
    // method while the legacy oracle uses slab decomposition; both are
    // exact, so they must agree to floating-point accuracy — and the
    // vertex enumeration is shared code, so vertices stay byte-identical.
    let mut rng = StdRng::seed_from_u64(0xa5ea_51ab);
    for case in 0..40 {
        let site = Point::new(rng.gen_range(5.0..95.0), rng.gen_range(5.0..95.0));
        let candidates = random_candidates(&mut rng, &site);
        for k in 2..=3usize {
            let oracle = top_k_cell(&site, &candidates, k, &bbox());
            let (engine, _) = top_k_cell_pruned(&site, &candidates, k, &bbox(), true);
            let context = format!("case {case}, k={k}");
            assert_points_bitwise(&engine.vertices, &oracle.vertices, &context);
            let scale = oracle.area.max(1.0);
            assert!(
                (engine.area - oracle.area).abs() / scale < 1e-7,
                "{context}: boundary area {} vs slab {}",
                engine.area,
                oracle.area
            );
        }
    }
}

#[test]
fn property_level_region_pruned_equals_full_and_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(0x0001_e7e1);
    for case in 0..40 {
        let anchor = Point::new(rng.gen_range(20.0..80.0), rng.gen_range(20.0..80.0));
        let candidates = random_candidates(&mut rng, &anchor);
        let planes: Vec<HalfPlane> = candidates
            .iter()
            .filter_map(|o| HalfPlane::closer_to(&anchor, o))
            .collect();
        for k in 1..=3usize {
            let (pruned, _) = level_region_pruned(&planes, &anchor, k, &bbox(), true);
            let (full, _) = level_region_pruned(&planes, &anchor, k, &bbox(), false);
            let context = format!("case {case}, k={k}");
            assert_eq!(
                pruned.area.to_bits(),
                full.area.to_bits(),
                "{context}: level-region area bits differ"
            );
            assert_points_bitwise(&pruned.vertices, &full.vertices, &context);
            let oracle = level_region(&planes, k, &bbox());
            let scale = oracle.area.max(1.0);
            assert!(
                (pruned.area - oracle.area).abs() / scale < 1e-7,
                "{context}: {} vs oracle {}",
                pruned.area,
                oracle.area
            );
        }
    }
}

#[test]
fn property_warm_scratch_equals_fresh_arena_bitwise() {
    // The arena contract: a ClipScratch that has been through any number of
    // prior builds (warm — buffers sized by whatever came before) must
    // produce byte-identical cells, areas, vertex orders and build stats to
    // a fresh arena, for both the top-k and the level-region constructions.
    // One arena is deliberately reused across every case and k below, so
    // each build runs on buffers warmed by a *different* configuration.
    let mut rng = StdRng::seed_from_u64(0x5c4a_7c11);
    let mut warm = ClipScratch::new();
    for case in 0..60 {
        let site = Point::new(rng.gen_range(5.0..95.0), rng.gen_range(5.0..95.0));
        let candidates = random_candidates(&mut rng, &site);
        let planes: Vec<HalfPlane> = candidates
            .iter()
            .filter_map(|o| HalfPlane::closer_to(&site, o))
            .collect();
        for k in 1..=3usize {
            for prune in [true, false] {
                let context = format!("case {case}, k={k}, prune={prune}");
                let (warm_cell, warm_stats) =
                    top_k_cell_pruned_with(&mut warm, &site, &candidates, k, &bbox(), prune);
                let (fresh_cell, fresh_stats) =
                    top_k_cell_pruned(&site, &candidates, k, &bbox(), prune);
                assert_eq!(
                    warm_cell.area.to_bits(),
                    fresh_cell.area.to_bits(),
                    "{context}: cell area bits differ"
                );
                assert_points_bitwise(&warm_cell.vertices, &fresh_cell.vertices, &context);
                assert_eq!(warm_stats, fresh_stats, "{context}: build stats differ");

                let (warm_region, warm_region_stats) =
                    level_region_pruned_with(&mut warm, &planes, &site, k, &bbox(), prune);
                let (fresh_region, fresh_region_stats) =
                    level_region_pruned(&planes, &site, k, &bbox(), prune);
                assert_eq!(
                    warm_region.area.to_bits(),
                    fresh_region.area.to_bits(),
                    "{context}: level-region area bits differ"
                );
                assert_points_bitwise(&warm_region.vertices, &fresh_region.vertices, &context);
                assert_eq!(
                    warm_region_stats, fresh_region_stats,
                    "{context}: region build stats differ"
                );
            }
        }
    }
}

fn run_lr(prune: bool, cache: bool, threads: usize) -> lbs::core::Estimate {
    let mut rng = StdRng::seed_from_u64(41);
    let dataset = ScenarioBuilder::usa_pois(140).build(&mut rng);
    let region = dataset.bbox();
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let mut estimator = LrLbsAgg::new(LrLbsAggConfig {
        prune_cells: prune,
        cache_cells: cache,
        ..LrLbsAggConfig::default()
    });
    estimator
        .estimate_parallel(
            &service,
            &region,
            &Aggregate::count_all(),
            900,
            2015,
            &SampleDriver::new(threads),
        )
        .expect("estimation must produce samples")
}

#[test]
fn lr_estimates_are_byte_identical_with_and_without_engine() {
    // The engine acceptance gate: pruning and caching must not move a bit
    // of any estimate, at any thread count.
    let baseline = run_lr(false, false, 1);
    for (prune, cache) in [(true, false), (false, true), (true, true)] {
        for threads in [1, 2] {
            let engine = run_lr(prune, cache, threads);
            let label = format!("prune={prune} cache={cache} threads={threads}");
            assert_eq!(
                baseline.value.to_bits(),
                engine.value.to_bits(),
                "{label}: value differs"
            );
            assert_eq!(
                baseline.ci95.0.to_bits(),
                engine.ci95.0.to_bits(),
                "{label}"
            );
            assert_eq!(
                baseline.ci95.1.to_bits(),
                engine.ci95.1.to_bits(),
                "{label}"
            );
            assert_eq!(baseline.samples, engine.samples, "{label}: samples differ");
            assert_eq!(
                baseline.query_cost, engine.query_cost,
                "{label}: query cost differs"
            );
        }
    }
    // And the engine must actually be doing something on this workload.
    let engine = run_lr(true, true, 1);
    assert!(engine.engine.pruned > 0, "certificate never pruned");
    assert!(engine.engine.cache_hits > 0, "cell cache never hit");
}
