//! Acceptance battery of the answer cache's determinism contract: cached,
//! uncached, shared and post-checkpoint runs must be bit-identical in
//! estimates, traces and the service ledger (with metered hits, the default).
//!
//! The scenarios are generated from a seeded parameter sweep — dataset size,
//! k, budget, algorithm — so the battery covers a spread of workload shapes
//! rather than one hand-picked case.

use std::sync::Arc;

use lbs::core::{Aggregate, Estimate, LrLbsAggConfig, LrSession, SessionConfig};
use lbs::geom::Rect;
use lbs::service::{AnswerCache, CachingBackend, LbsBackend, ServiceConfig, SimulatedLbs};
use lbs_bench::{build_workload, load_scenario, Scenario, ScenarioContext, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything that must agree bitwise between two runs.
fn fingerprint(e: &Estimate) -> (u64, u64, (u64, u64), u64, u64) {
    (
        e.value.to_bits(),
        e.std_error.to_bits(),
        (e.ci95.0.to_bits(), e.ci95.1.to_bits()),
        e.samples,
        e.query_cost,
    )
}

/// Thread counts to exercise: always 1, plus 2 on multi-core machines.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1];
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        >= 2
    {
        counts.push(2);
    }
    counts
}

/// Parses (and validates) a scenario from an inline TOML string via a
/// uniquely named temp file — `load_scenario` is the only public entry point.
fn parse(name: &str, toml: &str) -> Scenario {
    let path = std::env::temp_dir().join(format!("lbs-cache-equivalence-{name}.toml"));
    std::fs::write(&path, toml).expect("scenario temp file writes");
    let scenario = load_scenario(&path).expect("scenario loads");
    let _ = std::fs::remove_file(&path);
    scenario
}

fn ctx(threads: usize) -> ScenarioContext {
    ScenarioContext {
        scale: lbs_bench::Scale::Micro,
        seed: 2015,
        threads,
        smoke: false,
    }
}

/// A seeded-random declarative scenario (no cache knobs — those are added by
/// the sweep).
fn random_scenario(rng: &mut StdRng, index: usize) -> Scenario {
    let size = 40 + rng.gen_range(0..4) * 20;
    let k = 4 + rng.gen_range(0..3) * 2;
    let budget = 100 + rng.gen_range(0..3) * 60;
    let (kind, algorithm) = if rng.gen::<f64>() < 0.5 {
        ("lr", "lr")
    } else {
        ("lnr", "lnr")
    };
    let seed = 100 + rng.gen_range(0..1000);
    parse(
        &format!("sweep-{index}"),
        &format!(
        "id = \"sweep-{index}\"\nseed = {seed}\n\n[dataset]\nmodel = \"uniform\"\nsize = {size}\n\
         bbox = [0.0, 0.0, 150.0, 150.0]\n\n[interface]\nkind = \"{kind}\"\nk = {k}\n\n\
         [aggregate]\nkind = \"count\"\n\n[estimator]\nalgorithm = \"{algorithm}\"\nbudget = {budget}\n"
        ),
    )
}

/// Runs one workload repetition over `backend` and returns its estimate plus
/// the backend's global ledger reading.
fn run_once(workload: &Workload, backend: Box<dyn LbsBackend>, threads: usize) -> (Estimate, u64) {
    let mut session = workload
        .start_session(&backend, workload.session_config(threads, 0))
        .expect("session starts");
    while !session.is_finished() {
        session.step();
    }
    let estimate = session.finalize().expect("session completes");
    let ledger = backend.queries_issued();
    (estimate, ledger)
}

#[test]
fn cache_modes_are_bit_identical_across_random_scenarios_and_threads() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for index in 0..4 {
        let scenario = random_scenario(&mut rng, index);
        for threads in thread_counts() {
            let workload = build_workload(&scenario, &ctx(threads)).expect("workload");
            // Uncached baseline.
            let uncached = workload.backend_with_budget_and_cache(workload.fresh_budget(), None);
            let (baseline, baseline_ledger) = run_once(&workload, uncached, threads);

            // Private (fresh) cache.
            let private = workload.backend_with_budget_and_cache(
                workload.fresh_budget(),
                Some(AnswerCache::unbounded()),
            );
            let (with_private, private_ledger) = run_once(&workload, private, threads);

            // Shared cache: a cold pass, then a fully warm replay.
            let shared = AnswerCache::unbounded();
            let cold = workload
                .backend_with_budget_and_cache(workload.fresh_budget(), Some(shared.share()));
            let (with_cold, cold_ledger) = run_once(&workload, cold, threads);
            let warm = workload
                .backend_with_budget_and_cache(workload.fresh_budget(), Some(shared.share()));
            let (with_warm, warm_ledger) = run_once(&workload, warm, threads);
            assert!(
                shared.stats().hits > 0,
                "scenario {index}: warm replay produced no hits"
            );

            for (label, estimate, ledger) in [
                ("private", &with_private, private_ledger),
                ("shared cold", &with_cold, cold_ledger),
                ("shared warm", &with_warm, warm_ledger),
            ] {
                assert_eq!(
                    fingerprint(&baseline),
                    fingerprint(estimate),
                    "scenario {index}, threads {threads}, {label}"
                );
                assert_eq!(
                    baseline.trace, estimate.trace,
                    "scenario {index}, threads {threads}, {label}: trace diverged"
                );
                assert_eq!(
                    baseline_ledger, ledger,
                    "scenario {index}, threads {threads}, {label}: metered hits must \
                     charge the ledger exactly like real queries"
                );
            }
        }
    }
}

#[test]
fn unmetered_hits_spare_the_ledger_without_changing_the_estimate() {
    let scenario = parse(
        "unmetered",
        "id = \"unmetered\"\nseed = 21\n\n[dataset]\nmodel = \"uniform\"\nsize = 70\n\n\
         [interface]\nkind = \"lr\"\nk = 5\n\n[backend]\ncache = \"shared\"\n\
         cache_hits_metered = false\n\n[aggregate]\nkind = \"count\"\n\n\
         [estimator]\nalgorithm = \"lr\"\nbudget = 150\n",
    );
    let workload = build_workload(&scenario, &ctx(1)).expect("workload");
    let cache = AnswerCache::unbounded();
    let cold = workload.backend_with_budget_and_cache(workload.fresh_budget(), Some(cache.share()));
    let (first, cold_ledger) = run_once(&workload, cold, 1);
    let warm = workload.backend_with_budget_and_cache(workload.fresh_budget(), Some(cache.share()));
    let (second, warm_ledger) = run_once(&workload, warm, 1);

    // The estimate, its trace and even the *reported* query cost are
    // bit-identical (samples count their queries through the per-run
    // counter, hit or not); only the global service ledger is spared.
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.trace, second.trace);
    assert!(cache.stats().hits > 0);
    assert!(
        warm_ledger < cold_ledger,
        "unmetered warm run must charge fewer real queries ({warm_ledger} vs {cold_ledger})"
    );
}

#[test]
fn checkpoint_resume_cuts_through_a_warm_cache_stay_bit_identical() {
    let region = Rect::from_bounds(0.0, 0.0, 150.0, 150.0);
    let mut rng = StdRng::seed_from_u64(71);
    let dataset = lbs::data::generators::ScenarioBuilder::usa_pois(90)
        .with_bbox(region)
        .build(&mut rng);
    let config = ServiceConfig::lr_lbs(8);
    let budget = 300;
    let seed = 2015;

    // Generic full run with an optional checkpoint/resume cut at a wave
    // boundary, over any backend.
    fn run<S: LbsBackend>(
        backend: &S,
        region: &Rect,
        budget: u64,
        seed: u64,
        cut: Option<u64>,
    ) -> (Estimate, u64) {
        let mut session = LrSession::new(
            backend,
            region,
            &Aggregate::count_all(),
            LrLbsAggConfig::default(),
            lbs::core::lr::History::new(),
            SessionConfig::new(budget, seed).with_wave_size(8),
        );
        let mut waves = 0u64;
        while !session.is_finished() {
            if cut == Some(waves) {
                let checkpoint = session.checkpoint();
                drop(session);
                session = LrSession::resume(backend, checkpoint);
            }
            session.step();
            waves += 1;
        }
        (session.finalize().expect("completes"), waves)
    }

    // Uncached baseline.
    let plain = SimulatedLbs::new(dataset.clone(), config.clone());
    let (baseline, waves) = run(&plain, &region, budget, seed, None);
    let baseline_ledger = plain.queries_issued();
    assert!(waves >= 3, "need waves to cut at");

    // Warm a shared cache with one full cached run.
    let cache = AnswerCache::unbounded();
    let warmer = CachingBackend::over_service(
        SimulatedLbs::new(dataset.clone(), config.clone()),
        cache.share(),
        true,
    );
    let (warm_run, _) = run(&warmer, &region, budget, seed, None);
    assert_eq!(fingerprint(&baseline), fingerprint(&warm_run));
    let warm_misses = cache.stats().misses;
    assert!(warm_misses > 0);

    // Checkpoint/resume at several wave boundaries, each run entirely
    // against the warm cache.
    for cut in [0, waves / 2, waves - 1] {
        let hits_before = cache.stats().hits;
        let backend = CachingBackend::over_service(
            SimulatedLbs::new(dataset.clone(), config.clone()),
            cache.share(),
            true,
        );
        let (resumed, _) = run(&backend, &region, budget, seed, Some(cut));
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&resumed),
            "cut at wave {cut}"
        );
        assert_eq!(baseline.trace, resumed.trace, "trace at cut {cut}");
        assert_eq!(
            baseline_ledger,
            backend.queries_issued(),
            "metered ledger at cut {cut}"
        );
        assert!(
            cache.stats().hits > hits_before,
            "cut {cut}: the warm cache must actually serve the run"
        );
        assert_eq!(
            cache.stats().misses,
            warm_misses,
            "cut {cut}: a warm replay must add no distinct keys"
        );
    }
}

#[test]
fn shared_caches_are_share_handles_not_copies() {
    // `share()` clones the handle, not the cache: hits observed through one
    // handle are visible through the other.
    let cache: Arc<AnswerCache> = AnswerCache::unbounded();
    let other = cache.share();
    assert_eq!(cache.stats(), other.stats());
    assert!(Arc::ptr_eq(&cache, &other));
}
