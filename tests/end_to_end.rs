//! Cross-crate integration tests: generator → spatial index → LBS simulator →
//! estimators, exercised through the public facade crate exactly the way the
//! examples use it.

use lbs::core::{Aggregate, LnrLbsAgg, LnrLbsAggConfig, LrLbsAgg, LrLbsAggConfig, Selection};
use lbs::data::{attrs, DensityGrid, ScenarioBuilder};
use lbs::geom::Rect;
use lbs::service::{LbsBackend, PassThroughFilter, ServiceConfig, SimulatedLbs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_world(seed: u64, n: usize) -> (lbs::data::Dataset, Rect) {
    let mut rng = StdRng::seed_from_u64(seed);
    let region = Rect::from_bounds(0.0, 0.0, 300.0, 300.0);
    let dataset = ScenarioBuilder::usa_pois(n)
        .with_bbox(region)
        .build(&mut rng);
    (dataset, region)
}

#[test]
fn lr_pipeline_estimates_count_within_tolerance() {
    let (dataset, region) = small_world(1, 250);
    let truth = dataset.len() as f64;
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    let estimate = estimator
        .estimate(&service, &region, &Aggregate::count_all(), 3_000, &mut rng)
        .unwrap();
    assert!(
        estimate.relative_error(truth) < 0.35,
        "estimate {} vs truth {truth}",
        estimate.value
    );
    assert!(estimate.samples > 10);
    assert!(service.queries_issued() >= 3_000);
}

#[test]
fn lnr_pipeline_estimates_count_without_locations() {
    let (dataset, region) = small_world(3, 120);
    let truth = dataset.len() as f64;
    let service = SimulatedLbs::new(dataset, ServiceConfig::lnr_lbs(10));
    let mut estimator = LnrLbsAgg::new(LnrLbsAggConfig {
        delta: 0.3,
        ..LnrLbsAggConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(4);
    let estimate = estimator
        .estimate(&service, &region, &Aggregate::count_all(), 8_000, &mut rng)
        .unwrap();
    assert!(
        estimate.relative_error(truth) < 0.5,
        "estimate {} vs truth {truth}",
        estimate.value
    );
}

#[test]
fn pass_through_filter_estimates_a_brand_count() {
    let (dataset, region) = small_world(5, 300);
    let truth = dataset.count_where(|t| t.text_eq(attrs::BRAND, "Starbucks")) as f64;
    assert!(truth > 0.0, "the generator plants Starbucks cafés");
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let filtered = service.filtered(&PassThroughFilter::equals(attrs::BRAND, "Starbucks"));
    let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
    let mut rng = StdRng::seed_from_u64(6);
    let estimate = estimator
        .estimate(&filtered, &region, &Aggregate::count_all(), 1_500, &mut rng)
        .unwrap();
    // Few matching tuples → coarse estimate, but it must be the right order
    // of magnitude and the budget must have been charged to the shared
    // accountant.
    assert!(estimate.value > 0.0);
    assert!(estimate.relative_error(truth) < 1.0);
    assert_eq!(service.queries_issued(), filtered.queries_issued());
}

#[test]
fn post_processed_selection_and_avg_ratio() {
    let (dataset, region) = small_world(7, 250);
    let agg = Aggregate::avg_where(
        attrs::RATING,
        Selection::TextEquals {
            attr: attrs::CATEGORY.into(),
            value: "restaurant".into(),
        },
    );
    let truth = agg.ground_truth(&dataset, &region);
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
    let mut rng = StdRng::seed_from_u64(8);
    let estimate = estimator
        .estimate(&service, &region, &agg, 2_000, &mut rng)
        .unwrap();
    assert!(
        estimate.relative_error(truth) < 0.2,
        "AVG estimate {} vs truth {truth}",
        estimate.value
    );
}

#[test]
fn weighted_sampling_workflow_runs_end_to_end() {
    let mut rng = StdRng::seed_from_u64(9);
    let dataset = ScenarioBuilder::usa_pois(400).build(&mut rng);
    let region = dataset.bbox();
    let truth = dataset.len() as f64;
    let grid = DensityGrid::from_dataset(&dataset, 48, 32, 0.1);
    let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(10));
    let mut estimator = LrLbsAgg::new(LrLbsAggConfig {
        weighted_sampler: Some(grid),
        ..LrLbsAggConfig::default()
    });
    let estimate = estimator
        .estimate(&service, &region, &Aggregate::count_all(), 3_000, &mut rng)
        .unwrap();
    assert!(
        estimate.relative_error(truth) < 0.35,
        "weighted estimate {} vs truth {truth}",
        estimate.value
    );
}

#[test]
fn max_radius_and_query_limit_restrictions_are_survivable() {
    let (dataset, region) = small_world(11, 150);
    let config = ServiceConfig::lr_lbs(10)
        .with_max_radius(60.0)
        .with_query_limit(1_200);
    let service = SimulatedLbs::new(dataset.clone(), config);
    let truth = dataset.len() as f64;
    let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
    let mut rng = StdRng::seed_from_u64(12);
    let estimate = estimator
        .estimate(&service, &region, &Aggregate::count_all(), 5_000, &mut rng)
        .unwrap();
    // The hard service limit kicks in before our own budget.
    assert!(service.queries_issued() <= 1_200);
    // Empty answers count as zero contributions; the estimate stays finite
    // and in a plausible range.
    assert!(estimate.value.is_finite());
    assert!(estimate.value < truth * 4.0);
}

#[test]
fn experiment_harness_is_reachable_from_integration_tests() {
    use lbs_bench::{run_experiment, Scale};
    let result = run_experiment("fig11", Scale::Tiny, 1);
    assert_eq!(result.id, "fig11");
    assert!(!result.rows.is_empty());
}
