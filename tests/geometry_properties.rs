//! Property-based tests on the geometric core, run through the facade crate.
//!
//! These complement the unit tests inside `lbs-geom` with randomized
//! invariants that tie several modules together:
//!
//! * top-k Voronoi cells of all sites tile the bounding box k times over,
//! * the exact cell area always agrees with a Monte-Carlo estimate,
//! * kNN results from the grid index agree with brute force (which is what
//!   makes the simulated service an exact kNN oracle),
//! * the density grid integrates to one over any partition of the box.
//!
//! The offline build environment has no `proptest`, so each property is
//! exercised over a deterministic batch of seeded-RNG cases; failures
//! report the seed so a case can be replayed in isolation.

use lbs::data::DensityGrid;
use lbs::geom::{top_k_cell, ConvexPolygon, Point, Rect};
use lbs::index::{BruteForceIndex, GridIndex, KdTree, SpatialIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// Random sites in the 100x100 box, rejection-sampled so that every pair is
/// at least `min_sep` apart (the tiling property assumes general position).
fn separated_points(rng: &mut StdRng, min: usize, max: usize, min_sep: f64) -> Vec<Point> {
    let n = rng.gen_range(min..max);
    let mut sites: Vec<Point> = Vec::with_capacity(n);
    while sites.len() < n {
        let cand = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
        if sites.iter().all(|s| s.distance(&cand) > min_sep) {
            sites.push(cand);
        }
    }
    sites
}

#[test]
fn topk_cells_tile_the_box_k_times() {
    let bbox = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA11CE + case);
        let sites = separated_points(&mut rng, 3, 12, 0.5);
        let k = rng.gen_range(1..3usize).min(sites.len());
        let mut total = 0.0;
        for (i, s) in sites.iter().enumerate() {
            let others: Vec<Point> = sites
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            total += top_k_cell(s, &others, k, &bbox).area;
        }
        let expected = k as f64 * bbox.area();
        assert!(
            (total - expected).abs() / expected < 1e-6,
            "case {case}: cells tile {total} instead of {expected}"
        );
    }
}

#[test]
fn exact_cell_area_matches_monte_carlo() {
    let bbox = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB0B + case);
        let sites = separated_points(&mut rng, 3, 10, 0.5);
        let site = sites[0];
        let others = &sites[1..];
        let cell = top_k_cell(&site, others, 1, &bbox);
        // Deterministic grid-sample Monte Carlo oracle.
        let n = 120usize;
        let mut inside = 0usize;
        for i in 0..n {
            for j in 0..n {
                let q = bbox.at_fraction((i as f64 + 0.5) / n as f64, (j as f64 + 0.5) / n as f64);
                let d_site = site.distance(&q);
                if others.iter().all(|o| o.distance(&q) > d_site - 1e-12) {
                    inside += 1;
                }
            }
        }
        let mc = bbox.area() * inside as f64 / (n * n) as f64;
        let tolerance =
            0.05 * bbox.area().max(1.0) * 0.1 + 0.02 * bbox.area() / sites.len() as f64 + 3.0;
        assert!(
            (cell.area - mc).abs() <= tolerance,
            "case {case}: exact {} vs MC {mc}",
            cell.area
        );
    }
}

#[test]
fn all_index_backends_agree() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE + case);
        let n = rng.gen_range(3..40usize);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let q = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
        let k = rng.gen_range(1..8usize);
        let oracle = BruteForceIndex::build(&pts);
        let grid = GridIndex::build(&pts);
        let tree = KdTree::build(&pts);
        let want: Vec<usize> = oracle.k_nearest(&q, k).iter().map(|n| n.id).collect();
        let got_grid: Vec<usize> = grid.k_nearest(&q, k).iter().map(|n| n.id).collect();
        let got_tree: Vec<usize> = tree.k_nearest(&q, k).iter().map(|n| n.id).collect();
        assert_eq!(
            want, got_grid,
            "case {case}: grid disagrees with brute force"
        );
        assert_eq!(
            want, got_tree,
            "case {case}: kd-tree disagrees with brute force"
        );
    }
}

#[test]
fn density_grid_mass_is_conserved() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD15C + case);
        let weights: Vec<f64> = (0..16).map(|_| rng.gen_range(0.0..10.0)).collect();
        let bbox = Rect::from_bounds(0.0, 0.0, 80.0, 40.0);
        let grid = DensityGrid::from_weights(bbox, 4, 4, weights);
        // Integrating over the two halves of the box sums to (almost) 1.
        let left = ConvexPolygon::from_rect(&Rect::from_bounds(0.0, 0.0, 40.0, 40.0));
        let right = ConvexPolygon::from_rect(&Rect::from_bounds(40.0, 0.0, 80.0, 40.0));
        let total = grid.integrate_convex(&left) + grid.integrate_convex(&right);
        assert!(
            (total - 1.0).abs() < 1e-9,
            "case {case}: total mass {total}"
        );
    }
}
