//! Property-based tests on the geometric core, run through the facade crate.
//!
//! These complement the unit tests inside `lbs-geom` with randomized
//! invariants that tie several modules together:
//!
//! * top-k Voronoi cells of all sites tile the bounding box k times over,
//! * the exact cell area always agrees with a Monte-Carlo estimate,
//! * kNN results from the grid index agree with brute force (which is what
//!   makes the simulated service an exact kNN oracle),
//! * the density grid integrates to one over any partition of the box.

use lbs::geom::{top_k_cell, Point, Rect};
use lbs::index::{BruteForceIndex, GridIndex, KdTree, SpatialIndex};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 3..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn topk_cells_tile_the_box_k_times(points in arb_points(12), k in 1usize..3) {
        let bbox = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        let sites: Vec<Point> = points.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        // Skip degenerate inputs with (near-)duplicate sites: the tiling
        // property assumes general position.
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                prop_assume!(sites[i].distance(&sites[j]) > 0.5);
            }
        }
        prop_assume!(k <= sites.len());
        let mut total = 0.0;
        for (i, s) in sites.iter().enumerate() {
            let others: Vec<Point> = sites
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            total += top_k_cell(s, &others, k, &bbox).area;
        }
        let expected = k as f64 * bbox.area();
        prop_assert!(
            (total - expected).abs() / expected < 1e-6,
            "cells tile {} instead of {}", total, expected
        );
    }

    #[test]
    fn exact_cell_area_matches_monte_carlo(points in arb_points(10)) {
        let bbox = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        let sites: Vec<Point> = points.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                prop_assume!(sites[i].distance(&sites[j]) > 0.5);
            }
        }
        let site = sites[0];
        let others = &sites[1..];
        let cell = top_k_cell(&site, others, 1, &bbox);
        // Deterministic grid-sample Monte Carlo oracle.
        let n = 120usize;
        let mut inside = 0usize;
        for i in 0..n {
            for j in 0..n {
                let q = bbox.at_fraction((i as f64 + 0.5) / n as f64, (j as f64 + 0.5) / n as f64);
                let d_site = site.distance(&q);
                if others.iter().all(|o| o.distance(&q) > d_site - 1e-12) {
                    inside += 1;
                }
            }
        }
        let mc = bbox.area() * inside as f64 / (n * n) as f64;
        prop_assert!(
            (cell.area - mc).abs() <= 0.05 * bbox.area().max(1.0) * 0.1 + 0.02 * bbox.area() / sites.len() as f64 + 3.0,
            "exact {} vs MC {}", cell.area, mc
        );
    }

    #[test]
    fn all_index_backends_agree(points in arb_points(40), qx in 0.0..100.0f64, qy in 0.0..100.0f64, k in 1usize..8) {
        let pts: Vec<Point> = points.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let q = Point::new(qx, qy);
        let oracle = BruteForceIndex::build(&pts);
        let grid = GridIndex::build(&pts);
        let tree = KdTree::build(&pts);
        let want: Vec<usize> = oracle.k_nearest(&q, k).iter().map(|n| n.id).collect();
        let got_grid: Vec<usize> = grid.k_nearest(&q, k).iter().map(|n| n.id).collect();
        let got_tree: Vec<usize> = tree.k_nearest(&q, k).iter().map(|n| n.id).collect();
        prop_assert_eq!(&want, &got_grid);
        prop_assert_eq!(&want, &got_tree);
    }

    #[test]
    fn density_grid_mass_is_conserved(weights in prop::collection::vec(0.0..10.0f64, 16)) {
        use lbs::data::DensityGrid;
        use lbs::geom::ConvexPolygon;
        let bbox = Rect::from_bounds(0.0, 0.0, 80.0, 40.0);
        let grid = DensityGrid::from_weights(bbox, 4, 4, weights);
        // Integrating over the two halves of the box sums to (almost) 1.
        let left = ConvexPolygon::from_rect(&Rect::from_bounds(0.0, 0.0, 40.0, 40.0));
        let right = ConvexPolygon::from_rect(&Rect::from_bounds(40.0, 0.0, 80.0, 40.0));
        let total = grid.integrate_convex(&left) + grid.integrate_convex(&right);
        prop_assert!((total - 1.0).abs() < 1e-9, "total mass {}", total);
    }
}
