//! Parallel sample driver: deterministic fan-out of estimator samples.
//!
//! Every estimator in this crate has the same outer shape — draw independent
//! query-location samples, compute one Horvitz–Thompson contribution per
//! sample, and average them with [`RunningStats`]. The samples are
//! embarrassingly parallel, and [`SampleDriver`] is the shared engine that
//! runs them across [`std::thread::scope`] workers while keeping the result
//! **bit-identical regardless of thread count**:
//!
//! * every sample has a global index `i` and its own private
//!   [`rand::rngs::StdRng`] seeded from `(root_seed, i)` via [`sample_seed`],
//!   so the random stream a sample consumes does not depend on which worker
//!   runs it;
//! * samples are grouped into fixed-size chunks of [`CHUNK_SAMPLES`]
//!   (independent of the thread count); each chunk accumulates its own
//!   [`RunningStats`] by pushing its samples in index order;
//! * after a wave completes, chunk accumulators are merged through the
//!   parallel-Welford [`RunningStats::merge`] **in chunk-index order**, so
//!   the floating-point reduction tree is the same for 1 thread and for 64;
//! * the soft query budget is enforced at deterministic wave boundaries:
//!   wave sizes are computed only from the budget and the per-sample costs
//!   observed so far, never from timing or thread count.
//!
//! Estimator state that samples want to share (the LR estimator's
//! [`crate::lr::History`]) is handled with a fork/absorb protocol: each chunk
//! forks a private copy of the master state, and the driver hands the forks
//! back for absorption in chunk order at every wave boundary — again a
//! deterministic merge.
//!
//! The one thing that cannot be made deterministic is a *hard* service
//! limit ([`lbs_service::QueryBudget::limit`]): which concurrent query hits
//! the wall depends on scheduling. When a sample aborts this way the driver
//! discards that sample and every later-indexed one from the wave, mirroring
//! the serial estimators, but run-to-run determinism is only guaranteed for
//! services without a hard limit (or with one that is never reached).
//!
//! ```
//! use lbs_core::driver::SampleDriver;
//! use lbs_core::{Aggregate, LrLbsAgg, LrLbsAggConfig};
//! use lbs_data::ScenarioBuilder;
//! use lbs_service::{ServiceConfig, SimulatedLbs};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let dataset = ScenarioBuilder::usa_pois(60).build(&mut rng);
//! let region = dataset.bbox();
//! let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(5));
//!
//! // The same root seed gives bit-identical estimates at any thread count.
//! let run = |threads| {
//!     let mut estimator = LrLbsAgg::new(LrLbsAggConfig::default());
//!     estimator
//!         .estimate_parallel(
//!             &service,
//!             &region,
//!             &Aggregate::count_all(),
//!             150,
//!             7,
//!             &SampleDriver::new(threads),
//!         )
//!         .unwrap()
//! };
//! let serial = run(1);
//! let parallel = run(2);
//! assert_eq!(serial.value, parallel.value);
//! assert_eq!(serial.ci95, parallel.ci95);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use lbs_service::QueryError;

use crate::estimate::TracePoint;
use crate::stats::RunningStats;

/// Samples per deterministic work chunk.
///
/// A chunk is the unit of scheduling *and* of floating-point accumulation:
/// its samples are always pushed in index order into one accumulator, and
/// chunk accumulators are always merged in chunk order. The value is fixed —
/// it must not depend on the thread count, or determinism across thread
/// counts would be lost.
pub const CHUNK_SAMPLES: u64 = 8;

/// Hard cap on the samples of a single wave (bounds the memory for chunk
/// results and forked states).
const MAX_WAVE_SAMPLES: u64 = 4096;

/// Derives the seed of one sample's private RNG from the run's root seed and
/// the sample's global index.
///
/// The mixing is a SplitMix64 finalizer over the pair, so neighbouring
/// indices produce uncorrelated streams. The function is pure: the same
/// `(root_seed, index)` always yields the same seed, which is the foundation
/// of the driver's determinism.
///
/// ```
/// use lbs_core::driver::sample_seed;
/// assert_eq!(sample_seed(42, 7), sample_seed(42, 7));
/// assert_ne!(sample_seed(42, 7), sample_seed(42, 8));
/// assert_ne!(sample_seed(42, 7), sample_seed(43, 7));
/// ```
pub fn sample_seed(root_seed: u64, sample_index: u64) -> u64 {
    let mut z = root_seed ^ sample_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the root seed of one stratum's child session from the stratified
/// run's root seed.
///
/// This is the *blessed* seed-derivation helper of the stratified layer:
/// every per-stratum RNG stream must descend from
/// `(root_seed, stratum_id, sample_index)` through this function and
/// [`sample_seed`], never from an ad-hoc `StdRng` construction (the
/// `stray-seed-derivation` lint enforces this). The mixing is the same
/// SplitMix64 finalizer as [`sample_seed`] under a distinct salt, so stratum
/// streams are uncorrelated with each other *and* with the unstratified
/// sample streams of the same root seed.
///
/// A single-stratum partition returns `root_seed` unchanged — a
/// `count = 1` stratified run consumes exactly the RNG stream of the
/// unstratified run, which is what makes the two bit-identical.
///
/// ```
/// use lbs_core::driver::stratum_seed;
/// assert_eq!(stratum_seed(42, 0, 1), 42);
/// assert_ne!(stratum_seed(42, 0, 4), stratum_seed(42, 1, 4));
/// assert_eq!(stratum_seed(42, 3, 4), stratum_seed(42, 3, 4));
/// ```
pub fn stratum_seed(root_seed: u64, stratum_id: u64, stratum_count: u64) -> u64 {
    if stratum_count <= 1 {
        return root_seed;
    }
    let mut z = root_seed ^ stratum_id.wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one completed sample contributes to the estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampleOutcome {
    /// Horvitz–Thompson numerator contribution of this sample.
    pub numerator: f64,
    /// Denominator contribution (used by ratio aggregates such as AVG).
    pub denominator: f64,
    /// kNN queries this sample issued, counted locally (e.g. through
    /// [`lbs_service::QueryCounter`]).
    pub queries: u64,
}

/// The merged result of a driver run.
#[derive(Clone, Debug, Default)]
pub struct DriverOutcome {
    /// Per-sample numerator contributions.
    pub numerator: RunningStats,
    /// Per-sample denominator contributions.
    pub denominator: RunningStats,
    /// Total queries issued by the completed samples.
    ///
    /// Under a *hard* service limit this can be lower than what the
    /// service's own `queries_issued()` ledger shows: queries burned by the
    /// aborted sample and by discarded later-indexed chunks are real but
    /// produced no contribution, so they are not attributed to the
    /// estimate. The service ledger stays authoritative for billing.
    pub queries: u64,
    /// One trace point per completed chunk, in index order (running
    /// estimate versus cumulative query cost).
    pub trace: Vec<TracePoint>,
    /// `true` when the run stopped because the service's hard limit was hit
    /// rather than because the soft budget was spent.
    pub exhausted: bool,
}

/// Result of one chunk of samples, produced by a worker thread.
struct ChunkResult<B> {
    chunk: u64,
    state: B,
    numerator: RunningStats,
    denominator: RunningStats,
    queries: u64,
    aborted: bool,
}

/// The resumable accumulation state of a budget-bounded sampling run.
///
/// [`SampleDriver::run`] is a thin loop over [`SampleDriver::step_wave`];
/// everything the loop carries between waves lives here, which is what makes
/// an estimation run interruptible: snapshot the `WaveState` (plus the
/// estimator's own shared state) at any wave boundary, and stepping the
/// snapshot forward is bit-identical to never having stopped — the next wave
/// is a pure function of this state, the root seed and the budget.
#[derive(Clone, Debug, Default)]
pub struct WaveState {
    /// Merged per-sample statistics, query costs and trace so far.
    pub outcome: DriverOutcome,
    /// Global index of the first sample of the next wave.
    pub next_index: u64,
    /// Waves stepped so far.
    pub waves: u64,
    /// Set once the run is over (budget spent, hard limit hit, or free
    /// samples detected); further steps are no-ops.
    pub finished: bool,
}

impl WaveState {
    /// A fresh state at sample index 0.
    pub fn new() -> Self {
        WaveState::default()
    }
}

/// Fans estimator samples out across scoped worker threads.
///
/// See the [module documentation](self) for the determinism contract. The
/// driver is cheap to construct and stateless between runs; thread count is
/// its only knob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleDriver {
    threads: usize,
}

impl Default for SampleDriver {
    fn default() -> Self {
        SampleDriver::serial()
    }
}

impl SampleDriver {
    /// A driver that runs every sample on one worker thread.
    ///
    /// Results are bit-identical to any other thread count; this is the
    /// baseline the determinism tests compare against.
    pub fn serial() -> Self {
        SampleDriver { threads: 1 }
    }

    /// A driver with the given number of worker threads.
    ///
    /// `0` means "use [`std::thread::available_parallelism`]".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        SampleDriver { threads }
    }

    /// The number of worker threads the driver fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs budget-bounded sampling and merges the results.
    ///
    /// * `query_budget` — soft budget; the driver stops scheduling new waves
    ///   once the completed samples have spent it (the wave in flight is
    ///   allowed to finish, so the actual cost can exceed the budget, exactly
    ///   like the serial estimators' in-flight sample).
    /// * `root_seed` — root of the per-sample seed derivation.
    /// * `is_ratio` — whether trace points report `num/den` instead of the
    ///   numerator mean.
    /// * `master` — shared estimator state (e.g. the LR history); workers
    ///   never touch it directly.
    /// * `fork` — clones a private per-chunk state off the master.
    /// * `sample` — runs one sample: gets the chunk state, the global sample
    ///   index and the sample's private RNG. An `Err` means the sample could
    ///   not complete (hard service limit); the driver then stops.
    /// * `absorb` — merges the per-chunk states back into the master at each
    ///   wave boundary, in chunk order.
    #[allow(clippy::too_many_arguments)] // the estimator-facing facade; each argument is one role
    pub fn run<St, B, G, F, A>(
        &self,
        query_budget: u64,
        root_seed: u64,
        is_ratio: bool,
        master: &mut St,
        fork: G,
        sample: F,
        absorb: A,
    ) -> DriverOutcome
    where
        St: Sync,
        B: Send,
        G: Fn(&St) -> B + Sync,
        F: Fn(&mut B, u64, &mut StdRng) -> Result<SampleOutcome, QueryError> + Sync,
        A: Fn(&mut St, Vec<B>),
    {
        let mut state = WaveState::new();
        while !state.finished {
            self.step_wave(
                query_budget,
                root_seed,
                is_ratio,
                None,
                &mut state,
                master,
                &fork,
                &sample,
                &absorb,
            );
        }
        state.outcome
    }

    /// Advances a resumable run by exactly one wave (or marks it finished).
    ///
    /// This is the loop body of [`SampleDriver::run`], exposed so that a
    /// [`crate::session::EstimationSession`] can interleave waves of many
    /// concurrent runs, snapshot the [`WaveState`] between them, and resume
    /// later with bit-identical results. `wave_override` replaces the
    /// adaptive wave sizing with a fixed number of samples per wave (the
    /// scenario `[session] wave_size` knob); `None` keeps the sizing the
    /// batch path uses, so a `None` session is byte-identical to
    /// [`SampleDriver::run`].
    #[allow(clippy::too_many_arguments)] // the estimator-facing loop body; each argument is one role
    pub fn step_wave<St, B, G, F, A>(
        &self,
        query_budget: u64,
        root_seed: u64,
        is_ratio: bool,
        wave_override: Option<u64>,
        state: &mut WaveState,
        master: &mut St,
        fork: &G,
        sample: &F,
        absorb: &A,
    ) where
        St: Sync,
        B: Send,
        G: Fn(&St) -> B + Sync,
        F: Fn(&mut B, u64, &mut StdRng) -> Result<SampleOutcome, QueryError> + Sync,
        A: Fn(&mut St, Vec<B>),
    {
        if state.finished {
            return;
        }
        if state.outcome.queries >= query_budget {
            state.finished = true;
            return;
        }
        let outcome = &mut state.outcome;
        let wave = match wave_override {
            Some(w) => w.clamp(1, MAX_WAVE_SAMPLES),
            None => Self::wave_size(query_budget, outcome.queries, state.next_index),
        };
        let chunks = self.run_wave(&*master, state.next_index, wave, root_seed, fork, sample);

        let mut wave_queries = 0u64;
        let mut wave_aborted = false;
        let mut states = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            outcome.numerator.merge(&chunk.numerator);
            outcome.denominator.merge(&chunk.denominator);
            wave_queries += chunk.queries;
            wave_aborted |= chunk.aborted;
            states.push(chunk.state);
            // One trace point per chunk keeps the convergence trace
            // (paper Figure 12) fine-grained even though budget checks
            // only happen at wave boundaries.
            if chunk.numerator.count() > 0 {
                let estimate = if is_ratio {
                    if outcome.denominator.mean().abs() > f64::EPSILON {
                        outcome.numerator.mean() / outcome.denominator.mean()
                    } else {
                        0.0
                    }
                } else {
                    outcome.numerator.mean()
                };
                outcome.trace.push(TracePoint {
                    query_cost: outcome.queries + wave_queries,
                    estimate,
                });
            }
        }
        outcome.queries += wave_queries;
        state.next_index += wave;
        state.waves += 1;
        absorb(master, states);

        if wave_aborted {
            outcome.exhausted = true;
            state.finished = true;
        } else if wave_queries == 0 {
            // No sample issued a query: the service answers for free and
            // the soft budget can never be spent. Bail out rather than
            // loop forever.
            state.finished = true;
        } else if outcome.queries >= query_budget {
            state.finished = true;
        }
    }

    /// Deterministic wave sizing: a function of the budget and of the costs
    /// observed so far only — never of thread count or timing.
    fn wave_size(query_budget: u64, spent: u64, samples_so_far: u64) -> u64 {
        if samples_so_far == 0 {
            // No cost information yet: open with a small probing wave that
            // still gives every worker a chunk at common thread counts.
            (query_budget / 64).clamp(CHUNK_SAMPLES, 8 * CHUNK_SAMPLES)
        } else {
            let per_sample = (spent as f64 / samples_so_far as f64).max(1.0);
            let remaining = query_budget.saturating_sub(spent);
            ((remaining as f64 / per_sample).ceil() as u64).clamp(1, MAX_WAVE_SAMPLES)
        }
    }

    /// Runs one wave of `count` samples starting at global index `start` and
    /// returns the per-chunk results sorted by chunk index, truncated after
    /// the first aborted chunk.
    fn run_wave<St, B, G, F>(
        &self,
        master: &St,
        start: u64,
        count: u64,
        root_seed: u64,
        fork: &G,
        sample: &F,
    ) -> Vec<ChunkResult<B>>
    where
        St: Sync,
        B: Send,
        G: Fn(&St) -> B + Sync,
        F: Fn(&mut B, u64, &mut StdRng) -> Result<SampleOutcome, QueryError> + Sync,
    {
        let n_chunks = count.div_ceil(CHUNK_SAMPLES);
        let cursor = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let results: Mutex<Vec<ChunkResult<B>>> = Mutex::new(Vec::with_capacity(n_chunks as usize));
        let workers = self.threads.min(n_chunks as usize).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    let lo = start + chunk * CHUNK_SAMPLES;
                    let hi = (lo + CHUNK_SAMPLES).min(start + count);
                    let mut state = fork(master);
                    let mut numerator = RunningStats::new();
                    let mut denominator = RunningStats::new();
                    let mut queries = 0u64;
                    let mut aborted = false;
                    for index in lo..hi {
                        let mut rng = StdRng::seed_from_u64(sample_seed(root_seed, index));
                        match sample(&mut state, index, &mut rng) {
                            Ok(out) => {
                                numerator.push(out.numerator);
                                denominator.push(out.denominator);
                                queries += out.queries;
                            }
                            Err(QueryError::BudgetExhausted { .. }) => {
                                aborted = true;
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    results.lock().unwrap().push(ChunkResult {
                        chunk,
                        state,
                        numerator,
                        denominator,
                        queries,
                        aborted,
                    });
                });
            }
        });

        let mut chunks = results.into_inner().unwrap();
        chunks.sort_by_key(|c| c.chunk);
        // A hard-limit abort invalidates every later chunk: the serial
        // estimators stop at the first failed sample, and keeping
        // later-indexed survivors would make the sample set depend on
        // scheduling more than it has to.
        if let Some(first_aborted) = chunks.iter().position(|c| c.aborted) {
            chunks.truncate(first_aborted + 1);
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake sample: value derived from the index, cost 3.
    fn fake_sample(index: u64) -> SampleOutcome {
        SampleOutcome {
            numerator: (index as f64).sin() * 10.0,
            denominator: 1.0,
            queries: 3,
        }
    }

    fn run_fake(threads: usize, budget: u64) -> DriverOutcome {
        SampleDriver::new(threads).run(
            budget,
            99,
            false,
            &mut (),
            |_| (),
            |_, index, _| Ok(fake_sample(index)),
            |_, _| {},
        )
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let baseline = run_fake(1, 500);
        for threads in [2, 3, 8] {
            let other = run_fake(threads, 500);
            assert_eq!(baseline.numerator, other.numerator, "threads {threads}");
            assert_eq!(baseline.denominator, other.denominator);
            assert_eq!(baseline.queries, other.queries);
            assert_eq!(baseline.trace, other.trace);
        }
    }

    #[test]
    fn budget_is_filled_but_not_wildly_overshot() {
        let out = run_fake(4, 600);
        assert!(out.queries >= 600, "soft budget must be spent");
        // Every sample costs 3 queries; the driver should land within one
        // wave of the target.
        assert!(out.queries < 600 + 3 * MAX_WAVE_SAMPLES);
        assert_eq!(out.queries, 3 * out.numerator.count());
        assert!(!out.exhausted);
    }

    #[test]
    fn zero_cost_samples_terminate() {
        let out = SampleDriver::serial().run(
            100,
            1,
            false,
            &mut (),
            |_| (),
            |_, _, _| {
                Ok(SampleOutcome {
                    numerator: 1.0,
                    denominator: 1.0,
                    queries: 0,
                })
            },
            |_, _| {},
        );
        assert!(out.numerator.count() > 0);
        assert!(!out.exhausted);
    }

    #[test]
    fn abort_truncates_later_chunks_and_reports_exhaustion() {
        // Samples past index 20 fail; everything from index 20 on must be
        // dropped regardless of thread count.
        let run = |threads: usize| {
            SampleDriver::new(threads).run(
                10_000,
                5,
                false,
                &mut (),
                |_| (),
                |_, index, _| {
                    if index >= 20 {
                        Err(QueryError::BudgetExhausted {
                            issued: 60,
                            limit: 60,
                        })
                    } else {
                        Ok(fake_sample(index))
                    }
                },
                |_, _| {},
            )
        };
        let serial = run(1);
        assert!(serial.exhausted);
        assert_eq!(serial.numerator.count(), 20);
        let parallel = run(8);
        assert!(parallel.exhausted);
        // Chunks after the first aborted one are discarded, so no sample at
        // index >= 20 can ever contribute; with the abort landing exactly on
        // a chunk boundary the counts agree bitwise too.
        assert_eq!(parallel.numerator, serial.numerator);
    }

    #[test]
    fn absorb_sees_states_in_chunk_order() {
        // Each chunk state records the first index it served; absorb must
        // receive them ordered even with many threads racing.
        let mut collected: Vec<u64> = Vec::new();
        SampleDriver::new(8).run(
            240,
            3,
            false,
            &mut collected,
            |_| u64::MAX,
            |state, index, _| {
                if *state == u64::MAX {
                    *state = index;
                }
                Ok(fake_sample(index))
            },
            |acc, states| acc.extend(states),
        );
        let mut sorted = collected.clone();
        sorted.sort_unstable();
        assert_eq!(collected, sorted, "chunk states must arrive in index order");
        assert!(!collected.is_empty());
    }

    #[test]
    fn trace_costs_are_monotone() {
        let out = run_fake(4, 2_000);
        assert!(!out.trace.is_empty());
        for window in out.trace.windows(2) {
            assert!(window[0].query_cost < window[1].query_cost);
        }
    }

    #[test]
    fn sample_seed_is_stable_and_spreads() {
        // Pin a few values so the derivation can never silently change — a
        // change would alter every reproduced number in the repository.
        assert_eq!(sample_seed(0, 0), 0);
        // lbs-lint: allow(hashmap-iter, reason = "test-only set; only its size is read, never its order")
        let mut seen = std::collections::HashSet::new();
        for root in 0..8u64 {
            for index in 0..64u64 {
                seen.insert(sample_seed(root, index));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "seed collisions in a tiny grid");
    }
}
