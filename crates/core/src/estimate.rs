//! Estimator output types.
//!
//! Every estimator reports the same thing: a point estimate, accuracy
//! book-keeping (standard error, confidence interval, sample count), the
//! query cost actually paid, and a convergence trace suitable for the
//! paper's Figure 12 ("estimate versus query cost").

use serde::{Deserialize, Serialize};

use crate::engine_stats::EngineReport;
use crate::stats::{RunningStats, Summary};

/// One point of the convergence trace: the running estimate after a given
/// number of queries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Total queries issued to the LBS when the snapshot was taken.
    pub query_cost: u64,
    /// The running estimate at that point.
    pub estimate: f64,
}

/// The result of one aggregate estimation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Estimate {
    /// Point estimate of the aggregate.
    pub value: f64,
    /// Standard error of the estimate (0 when undefined, e.g. a single
    /// sample).
    pub std_error: f64,
    /// 95 % normal-approximation confidence interval.
    pub ci95: (f64, f64),
    /// Number of independent per-query samples the estimate averages.
    pub samples: u64,
    /// Total number of kNN queries issued to the LBS.
    pub query_cost: u64,
    /// Convergence trace (running estimate after each sample).
    pub trace: Vec<TracePoint>,
    /// Summary of the per-sample estimates (for variance analysis).
    pub per_sample: Summary,
    /// Cell-engine counters of the run (cache hits, clips, pruning) — pure
    /// telemetry surfaced by the bench harness.
    pub engine: EngineReport,
}

impl Estimate {
    /// Builds an estimate from an accumulator of per-sample values.
    pub fn from_stats(stats: &RunningStats, query_cost: u64, trace: Vec<TracePoint>) -> Self {
        Estimate {
            value: stats.mean(),
            std_error: stats.std_error().unwrap_or(0.0),
            ci95: stats.confidence_interval(1.96),
            samples: stats.count(),
            query_cost,
            trace,
            per_sample: stats.into(),
            engine: EngineReport::default(),
        }
    }

    /// Builds a ratio (AVG = SUM/COUNT) estimate from separate numerator and
    /// denominator accumulators. The standard error is propagated with the
    /// first-order delta method, ignoring the covariance term (a conservative
    /// simplification; the experiments report relative error against ground
    /// truth anyway).
    pub fn ratio_from_stats(
        numerator: &RunningStats,
        denominator: &RunningStats,
        query_cost: u64,
        trace: Vec<TracePoint>,
    ) -> Self {
        let (value, std_error) = point_and_error(numerator, denominator, true);
        Estimate {
            value,
            std_error,
            ci95: (value - 1.96 * std_error, value + 1.96 * std_error),
            samples: numerator.count(),
            query_cost,
            trace,
            per_sample: numerator.into(),
            engine: EngineReport::default(),
        }
    }

    /// Relative error against a known ground truth.
    pub fn relative_error(&self, truth: f64) -> f64 {
        crate::stats::relative_error(self.value, truth)
    }
}

/// The point estimate and its standard error from the raw accumulators —
/// the single source of the arithmetic shared by [`Estimate::from_stats`],
/// [`Estimate::ratio_from_stats`] and the anytime session snapshots, so an
/// anytime read can never drift from what the finished estimate reports.
pub(crate) fn point_and_error(
    numerator: &RunningStats,
    denominator: &RunningStats,
    is_ratio: bool,
) -> (f64, f64) {
    if !is_ratio {
        return (numerator.mean(), numerator.std_error().unwrap_or(0.0));
    }
    let denom_mean = denominator.mean();
    let value = if denom_mean.abs() <= f64::EPSILON {
        0.0
    } else {
        numerator.mean() / denom_mean
    };
    let std_error = if denom_mean.abs() <= f64::EPSILON {
        0.0
    } else {
        let num_se = numerator.std_error().unwrap_or(0.0);
        let den_se = denominator.std_error().unwrap_or(0.0);
        let rel = (num_se / numerator.mean().abs().max(f64::EPSILON)).powi(2)
            + (den_se / denom_mean.abs()).powi(2);
        value.abs() * rel.sqrt()
    };
    (value, std_error)
}

/// Errors an estimation run can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum EstimateError {
    /// The query budget was exhausted before a single sample could be
    /// completed.
    NoSamples,
    /// The underlying service reported an error that makes continuing
    /// impossible.
    Service(String),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::NoSamples => {
                write!(f, "query budget exhausted before any sample completed")
            }
            EstimateError::Service(msg) => write!(f, "service error: {msg}"),
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stats_copies_summary() {
        let mut s = RunningStats::new();
        for x in [10.0, 12.0, 8.0, 10.0] {
            s.push(x);
        }
        let est = Estimate::from_stats(&s, 42, vec![]);
        assert!((est.value - 10.0).abs() < 1e-12);
        assert_eq!(est.samples, 4);
        assert_eq!(est.query_cost, 42);
        assert!(est.ci95.0 < est.value && est.value < est.ci95.1);
        assert!((est.relative_error(10.0) - 0.0).abs() < 1e-12);
        assert!((est.relative_error(8.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratio_estimate_divides_means() {
        let mut num = RunningStats::new();
        let mut den = RunningStats::new();
        for (n, d) in [(8.0, 2.0), (12.0, 2.0), (6.0, 2.0), (14.0, 2.0)] {
            num.push(n);
            den.push(d);
        }
        let est = Estimate::ratio_from_stats(&num, &den, 10, vec![]);
        assert!((est.value - 5.0).abs() < 1e-12);
        assert!(est.std_error >= 0.0);
    }

    #[test]
    fn ratio_with_zero_denominator_is_zero() {
        let mut num = RunningStats::new();
        num.push(3.0);
        let den = RunningStats::new();
        let est = Estimate::ratio_from_stats(&num, &den, 1, vec![]);
        assert_eq!(est.value, 0.0);
    }

    #[test]
    fn error_display() {
        assert!(EstimateError::NoSamples.to_string().contains("budget"));
        assert!(EstimateError::Service("boom".into())
            .to_string()
            .contains("boom"));
    }
}
