//! LR-LBS-NNO: nearest-neighbour-oracle sampling with Monte-Carlo
//! Voronoi-area estimation.

use rand::Rng;

use lbs_geom::{sort_by_distance, top_k_cell_pruned, Point, Rect};
use lbs_service::{LbsBackend, QueryError};

use crate::agg::Aggregate;
use crate::driver::SampleDriver;
use crate::engine_stats::SharedEngineCounters;
use crate::estimate::{Estimate, EstimateError};
use crate::session::{NnoSession, SessionConfig};

/// Configuration of the LR-LBS-NNO baseline.
#[derive(Clone, Debug)]
pub struct NnoConfig {
    /// Monte-Carlo points used to estimate each Voronoi-cell area.
    pub mc_points: usize,
    /// Initial probe radius as a fraction of the region diagonal.
    pub initial_radius_fraction: f64,
    /// Maximum number of radius doublings while searching for a covering
    /// square.
    pub max_doublings: usize,
    /// Record a trace point every this many samples (0 disables the trace).
    pub trace_every: u64,
    /// Answer Monte-Carlo probe points geometrically when possible: a point
    /// outside the top-1 cell of the sampled tuple with respect to the
    /// tuples already returned this sample (a superset of the true cell)
    /// provably has a different nearest neighbour, so the service query can
    /// be skipped without changing the hit/miss outcome. The paper\'s NNO
    /// locality argument, applied to the cell engine.
    pub use_engine_prefilter: bool,
    /// Restricts the *query-location draw* to a sub-rectangle of the region
    /// (a stratum). Every probability stays full-region — the covering
    /// square, the Monte-Carlo area and the `region.area()/area` inverse
    /// probability are unchanged — which is what the stratified combiner's
    /// base-design weights require. `None` (the default) draws from the
    /// whole region and is bit-identical to the pre-stratification code.
    pub draw_region: Option<Rect>,
}

impl Default for NnoConfig {
    fn default() -> Self {
        NnoConfig {
            mc_points: 12,
            initial_radius_fraction: 0.002,
            max_doublings: 12,
            trace_every: 1,
            use_engine_prefilter: true,
            draw_region: None,
        }
    }
}

/// The LR-LBS-NNO baseline estimator.
#[derive(Clone, Debug, Default)]
pub struct NnoBaseline {
    config: NnoConfig,
}

impl NnoBaseline {
    /// Creates a baseline estimator with the given configuration.
    pub fn new(config: NnoConfig) -> Self {
        NnoBaseline { config }
    }

    /// Estimates `aggregate` over `region` through the LR interface
    /// `service`, spending at most `query_budget` kNN queries.
    pub fn estimate<S: LbsBackend + ?Sized, R: Rng>(
        &mut self,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        query_budget: u64,
        rng: &mut R,
    ) -> Result<Estimate, EstimateError> {
        let mut session = NnoSession::new_serial(
            service,
            region,
            aggregate,
            self.config.clone(),
            query_budget,
        );
        while !session.is_finished() {
            session.step_serial(rng);
        }
        session.finalize()
    }

    /// Estimates `aggregate` over `region` in parallel, fanning samples out
    /// across the [`SampleDriver`]'s worker threads.
    ///
    /// Bit-identical for any thread count given the same `root_seed` (see
    /// [`crate::driver`]); the baseline's samples are fully independent, so
    /// only the wave-boundary budget enforcement differs from
    /// [`NnoBaseline::estimate`].
    pub fn estimate_parallel<S: LbsBackend + ?Sized>(
        &mut self,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        query_budget: u64,
        root_seed: u64,
        driver: &SampleDriver,
    ) -> Result<Estimate, EstimateError> {
        let cfg = SessionConfig::new(query_budget, root_seed).with_threads(driver.threads());
        let mut session = NnoSession::new(service, region, aggregate, self.config.clone(), cfg);
        while !session.is_finished() {
            session.step();
        }
        session.finalize()
    }

    /// Runs one independent baseline sample and returns its
    /// `(numerator, denominator)` contribution.
    ///
    /// Shared loop body of [`NnoBaseline::estimate`] and
    /// [`NnoBaseline::estimate_parallel`]; an `Err` means the sample hit the
    /// service's hard query limit.
    pub(crate) fn sample_once<S: LbsBackend + ?Sized, R: Rng>(
        config: &NnoConfig,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        counters: &SharedEngineCounters,
        rng: &mut R,
    ) -> Result<(f64, f64), QueryError> {
        let draw = config.draw_region.unwrap_or(*region);
        let q = draw.at_fraction(rng.gen(), rng.gen());
        let resp = service.query(&q)?;
        let Some(top) = resp.top().cloned() else {
            return Ok((0.0, 0.0));
        };
        let Some(site) = top.location else {
            return Ok((0.0, 0.0));
        };
        // Every tuple location this sample sees is free knowledge for the
        // geometric prefilter below.
        let mut known: Vec<Point> = resp.results.iter().filter_map(|r| r.location).collect();

        // Step 1: find a square that (heuristically) covers the cell.
        let mut radius = (region.diagonal() * config.initial_radius_fraction)
            .max(q.distance(&site))
            .max(1e-6);
        let mut doublings = 0;
        loop {
            let mut all_escaped = true;
            for dir in [
                Point::new(1.0, 0.0),
                Point::new(-1.0, 0.0),
                Point::new(0.0, 1.0),
                Point::new(0.0, -1.0),
            ] {
                let probe = region.clamp(&(site + dir * radius));
                let r = service.query(&probe)?;
                if r.top().map(|t| t.id) == Some(top.id) {
                    all_escaped = false;
                }
                known.extend(r.results.iter().filter_map(|t| t.location));
            }
            if all_escaped || doublings >= config.max_doublings {
                break;
            }
            radius *= 2.0;
            doublings += 1;
        }

        // Step 2: Monte-Carlo the cell area inside the square.
        let square = Rect::centered(site, radius)
            .intersection(region)
            .unwrap_or(*region);
        // The top-1 cell of the sampled tuple with respect to the tuples
        // seen so far is a superset of its true Voronoi cell: a probe point
        // outside it provably has a different nearest neighbour, so its
        // service query can be skipped without changing the outcome.
        let superset_cell = if config.use_engine_prefilter {
            sort_by_distance(&site, &mut known);
            // The doubling rounds largely re-return the same tuples; exact
            // duplicates sort adjacent, and dropping them costs nothing
            // geometrically (a repeated half-plane clip is the identity)
            // while keeping the clip counters honest.
            known.dedup();
            let (cell, build) = top_k_cell_pruned(&site, &known, 1, &square, true);
            counters.record_build(&build);
            cell.convex
        } else {
            None
        };
        let mut hits = 0usize;
        for _ in 0..config.mc_points {
            let p = square.at_fraction(rng.gen(), rng.gen());
            if let Some(cell) = &superset_cell {
                if !cell.contains(&p) {
                    counters.record_mc_certified();
                    continue;
                }
            }
            let r = service.query(&p)?;
            if r.top().map(|t| t.id) == Some(top.id) {
                hits += 1;
            }
        }
        // Continuity correction: a zero-hit estimate would blow the
        // contribution up to infinity.
        let fraction = (hits.max(1) as f64) / config.mc_points as f64;
        let area = fraction * square.area();
        let inverse_p = region.area() / area;

        let num = aggregate.numerator(&top, Some(&site)).unwrap_or(0.0);
        let den = aggregate.denominator(&top, Some(&site)).unwrap_or(0.0);
        Ok((num * inverse_p, den * inverse_p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_data::{Dataset, ScenarioBuilder};
    use lbs_service::{ServiceConfig, SimulatedLbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 200.0, 200.0)
    }

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        ScenarioBuilder::usa_pois(n)
            .with_bbox(region())
            .build(&mut rng)
    }

    #[test]
    fn baseline_produces_a_ballpark_count() {
        let d = dataset(150, 1);
        let truth = d.len() as f64;
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
        let mut est = NnoBaseline::new(NnoConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let out = est
            .estimate(
                &service,
                &region(),
                &Aggregate::count_all(),
                3_000,
                &mut rng,
            )
            .unwrap();
        // The baseline is noisy and biased; only require the right order of
        // magnitude (the comparison experiments quantify the gap).
        assert!(
            out.value > truth * 0.2 && out.value < truth * 5.0,
            "estimate {} vs truth {truth}",
            out.value
        );
        assert!(out.samples > 5);
    }

    #[test]
    fn baseline_is_noisier_than_lr_lbs_agg() {
        use crate::lr::{LrLbsAgg, LrLbsAggConfig};
        let d = dataset(120, 3);
        let truth = d.len() as f64;
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
        let budget = 2_500;

        let mut rng = StdRng::seed_from_u64(4);
        let mut ours = LrLbsAgg::new(LrLbsAggConfig::default());
        let ours_out = ours
            .estimate(
                &service,
                &region(),
                &Aggregate::count_all(),
                budget,
                &mut rng,
            )
            .unwrap();
        let mut baseline = NnoBaseline::new(NnoConfig::default());
        let base_out = baseline
            .estimate(
                &service,
                &region(),
                &Aggregate::count_all(),
                budget,
                &mut rng,
            )
            .unwrap();
        // With the same budget the paper's estimator should be at least as
        // accurate (almost always strictly better).
        assert!(
            ours_out.relative_error(truth) <= base_out.relative_error(truth) + 0.15,
            "ours {} vs baseline {} (truth {truth})",
            ours_out.value,
            base_out.value
        );
    }

    #[test]
    #[should_panic(expected = "location-returned")]
    fn rejects_rank_only_interfaces() {
        let d = dataset(20, 5);
        let service = SimulatedLbs::new(d, ServiceConfig::lnr_lbs(5));
        let mut est = NnoBaseline::new(NnoConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let _ = est.estimate(&service, &region(), &Aggregate::count_all(), 100, &mut rng);
    }

    #[test]
    fn empty_answers_contribute_zero() {
        // A max-radius so small that most queries return nothing.
        let d = dataset(10, 7);
        let cfg = ServiceConfig::lr_lbs(5).with_max_radius(1.0);
        let service = SimulatedLbs::new(d, cfg);
        let mut est = NnoBaseline::new(NnoConfig::default());
        let mut rng = StdRng::seed_from_u64(8);
        let out = est
            .estimate(&service, &region(), &Aggregate::count_all(), 300, &mut rng)
            .unwrap();
        assert!(out.value.is_finite());
    }
}
