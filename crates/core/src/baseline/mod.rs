//! The prior-art baseline LR-LBS-NNO (Dalvi et al., "Sampling hidden objects
//! using nearest-neighbor oracles", SIGKDD 2011), re-implemented from its
//! description for the comparison experiments.
//!
//! The baseline, like LR-LBS-AGG, draws random query locations and corrects
//! for sampling bias with the area of the returned tuple's Voronoi cell — but
//! it only ever uses the **top-1** tuple, and it **estimates** the cell area
//! with a Monte-Carlo procedure instead of computing it exactly:
//!
//! 1. find a square around the tuple that (hopefully) covers its Voronoi cell
//!    by doubling a probe radius until probes in the four axis directions no
//!    longer return the tuple,
//! 2. sample a fixed number of locations uniformly in that square and count
//!    the fraction whose nearest neighbour is the tuple,
//! 3. take `fraction × square area` as the cell area.
//!
//! Both steps consume queries, the area estimate is noisy, and the truncation
//! of the square introduces a bias the method cannot quantify — which is
//! exactly the behaviour the paper contrasts its unbiased estimator against
//! (high variance, slow convergence in Figures 12 and 14–17).

mod nno;

pub use nno::{NnoBaseline, NnoConfig};
