//! Stratified estimation: disjoint strata, per-stratum child sessions, and
//! a stratified Horvitz–Thompson combiner.
//!
//! A [`StratifiedSession`] splits the query region into the disjoint
//! rectangles of a [`lbs_data::Stratifier`] partition and runs one
//! independent child session per stratum. Each child draws its query
//! locations *inside* its stratum but keeps every Horvitz–Thompson
//! probability **full-region** (the base design): a tuple returned inside
//! stratum `h` contributes `v(t)/π(t)` with the same `π(t)` the
//! unstratified estimator would use. Writing `w_h` for the base-design mass
//! of stratum `h` (its area fraction under uniform sampling, its density
//! mass under weighted sampling), the combiner reports
//!
//! ```text
//! value     = Σ_h w_h · mean_h
//! variance  = Σ_h w_h² · se_h²
//! ```
//!
//! which telescopes to the same expectation as the unstratified estimator —
//! stratification removes the between-strata component of the variance
//! without touching the bias. With proportional allocation the combined
//! variance is, in expectation, never worse than the unstratified design at
//! equal budget; Neyman allocation (pilot half, then budget ∝ `w_h·sd_h`)
//! improves further on skewed data.
//!
//! # Determinism contract
//!
//! Every allocation decision is a pure function of session state at a wave
//! boundary:
//!
//! * stratum `h` of an `n`-way split seeds its RNG stream from
//!   [`crate::driver::stratum_seed`]`(root_seed, h, n)` — never from
//!   wall-clock time or thread identity;
//! * the initial split of the budget uses largest-remainder rounding over
//!   the stratum weights (ties broken by stratum id);
//! * the Neyman re-allocation happens at exactly one point — the wave
//!   boundary where the last pilot child finishes — and reads only the
//!   children's accumulated sample variances.
//!
//! Results are therefore bit-identical at every thread count and across any
//! checkpoint/resume cut, exactly like the flat sessions. A single-stratum
//! partition is special-cased to a verbatim passthrough: `count = 1` is
//! **bitwise equal** to the unstratified session with the same
//! configuration.

use std::sync::Arc;

use lbs_data::Stratum;
use lbs_geom::{ConvexPolygon, Rect};
use lbs_service::LbsBackend;

use crate::agg::Aggregate;
use crate::baseline::NnoConfig;
use crate::driver::stratum_seed;
use crate::engine_stats::EngineReport;
use crate::estimate::{Estimate, EstimateError};
use crate::lnr::LnrLbsAggConfig;
use crate::lr::LrLbsAggConfig;
use crate::session::{
    elapsed_ms, AnytimeSnapshot, LnrSession, LnrSessionState, LrSession, LrSessionState,
    NnoSession, NnoSessionState, SessionConfig, StopReason,
};
use crate::stats::Summary;

/// Which estimator runs inside every stratum.
#[derive(Clone, Debug)]
pub enum StratumEstimator {
    /// LR-LBS-AGG with this configuration.
    Lr(LrLbsAggConfig),
    /// LNR-LBS-AGG with this configuration.
    Lnr(LnrLbsAggConfig),
    /// The LR-LBS-NNO baseline with this configuration.
    Nno(NnoConfig),
}

/// How the query budget is split across strata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Budget proportional to the stratum weights, fixed up front.
    Proportional,
    /// Half the budget proportionally as a pilot, then the remainder
    /// proportional to `w_h · sd_h` (the Neyman-optimal shares) using the
    /// per-stratum sample standard deviations the pilot observed.
    Neyman,
}

/// The base-design mass of `rect` within `region` for the given estimator:
/// the density mass when the estimator samples from a weighted grid, the
/// area fraction otherwise. This is the Horvitz–Thompson stratum weight —
/// it must match the design the *probabilities* use, not the partitioning
/// heuristic.
fn stratum_weight(estimator: &StratumEstimator, region: &Rect, rect: &Rect) -> f64 {
    let grid = match estimator {
        StratumEstimator::Lr(c) => c.weighted_sampler.as_ref(),
        // The LNR sampler only honours the weighted grid at h == 1 (the
        // same condition `LnrSession::with_mode` applies).
        StratumEstimator::Lnr(c) if c.h == 1 => c.weighted_sampler.as_ref(),
        _ => None,
    };
    match grid {
        Some(g) => g.integrate_convex(&ConvexPolygon::from_rect(rect)),
        None => rect.area() / region.area(),
    }
}

/// One stratum's child session. A flat enum (rather than a nested
/// [`crate::session::EstimationSession`]) keeps the monomorphization finite:
/// children always run over `Arc<S>`, never over another stratified layer.
#[derive(Debug)]
enum StratumChild<S: LbsBackend> {
    Lr(Box<LrSession<Arc<S>>>),
    Lnr(Box<LnrSession<Arc<S>>>),
    Nno(Box<NnoSession<Arc<S>>>),
}

impl<S: LbsBackend> StratumChild<S> {
    fn step(&mut self) {
        match self {
            StratumChild::Lr(s) => s.step(),
            StratumChild::Lnr(s) => s.step(),
            StratumChild::Nno(s) => s.step(),
        }
    }

    fn is_finished(&self) -> bool {
        match self {
            StratumChild::Lr(s) => s.is_finished(),
            StratumChild::Lnr(s) => s.is_finished(),
            StratumChild::Nno(s) => s.is_finished(),
        }
    }

    fn snapshot(&self) -> AnytimeSnapshot {
        match self {
            StratumChild::Lr(s) => s.snapshot(),
            StratumChild::Lnr(s) => s.snapshot(),
            StratumChild::Nno(s) => s.snapshot(),
        }
    }

    fn finalize(&self) -> Result<Estimate, EstimateError> {
        match self {
            StratumChild::Lr(s) => s.finalize(),
            StratumChild::Lnr(s) => s.finalize(),
            StratumChild::Nno(s) => s.finalize(),
        }
    }

    fn cancel(&mut self) {
        match self {
            StratumChild::Lr(s) => s.cancel(),
            StratumChild::Lnr(s) => s.cancel(),
            StratumChild::Nno(s) => s.cancel(),
        }
    }

    fn queries_spent(&self) -> u64 {
        match self {
            StratumChild::Lr(s) => s.queries_spent(),
            StratumChild::Lnr(s) => s.queries_spent(),
            StratumChild::Nno(s) => s.queries_spent(),
        }
    }

    fn outcome(&self) -> &crate::driver::DriverOutcome {
        match self {
            StratumChild::Lr(s) => s.outcome(),
            StratumChild::Lnr(s) => s.outcome(),
            StratumChild::Nno(s) => s.outcome(),
        }
    }

    fn extend_budget(&mut self, new_budget: u64) {
        match self {
            StratumChild::Lr(s) => s.extend_budget(new_budget),
            StratumChild::Lnr(s) => s.extend_budget(new_budget),
            StratumChild::Nno(s) => s.extend_budget(new_budget),
        }
    }

    fn stop_reason(&self) -> Option<StopReason> {
        match self {
            StratumChild::Lr(s) => s.stop_reason(),
            StratumChild::Lnr(s) => s.stop_reason(),
            StratumChild::Nno(s) => s.stop_reason(),
        }
    }

    fn checkpoint(&self) -> StratumCheckpoint {
        match self {
            StratumChild::Lr(s) => StratumCheckpoint::Lr(Box::new(s.checkpoint())),
            StratumChild::Lnr(s) => StratumCheckpoint::Lnr(Box::new(s.checkpoint())),
            StratumChild::Nno(s) => StratumCheckpoint::Nno(Box::new(s.checkpoint())),
        }
    }
}

/// Checkpoint of one stratum child (see [`StratifiedSessionState`]).
#[derive(Clone, Debug)]
pub enum StratumCheckpoint {
    /// Checkpoint of an LR child.
    Lr(Box<LrSessionState>),
    /// Checkpoint of an LNR child.
    Lnr(Box<LnrSessionState>),
    /// Checkpoint of an NNO child.
    Nno(Box<NnoSessionState>),
}

/// Where a stratified session is in its budget-allocation protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// `count == 1`: a verbatim passthrough to one unstratified child.
    Single,
    /// Neyman pilot: children run on half the budget, proportionally split.
    Pilot,
    /// Final allocation granted; children run to completion.
    Final,
}

/// The combiner-owned state shared across strata.
#[derive(Clone, Debug)]
struct SharedState {
    region: Rect,
    is_ratio: bool,
    strata: Vec<Stratum>,
    weights: Vec<f64>,
    budgets: Vec<u64>,
    allocation: AllocationPolicy,
    cfg: SessionConfig,
    phase: Phase,
    /// Next stratum the round-robin scheduler will step.
    cursor: usize,
    elapsed_ms: u64,
    stop: Option<StopReason>,
    finished: bool,
}

/// The owned state of a stratified session: what
/// [`StratifiedSession::checkpoint`] snapshots and
/// [`StratifiedSession::resume`] restores.
#[derive(Clone, Debug)]
pub struct StratifiedSessionState {
    children: Vec<StratumCheckpoint>,
    shared: SharedState,
}

/// A resumable stratified estimation run: independent per-stratum child
/// sessions under one budget, merged by a stratified Horvitz–Thompson
/// combiner (module docs have the estimator and the determinism contract).
#[derive(Debug)]
pub struct StratifiedSession<S: LbsBackend> {
    children: Vec<StratumChild<S>>,
    shared: SharedState,
}

impl<S: LbsBackend> StratifiedSession<S> {
    /// Starts a stratified wave-mode session over the disjoint `strata`
    /// (produced by a [`lbs_data::Stratifier`]). `cfg` carries the *total*
    /// budget, the root seed, and the early-stop rules; children receive
    /// deterministic budget shares and derived seeds.
    ///
    /// # Panics
    ///
    /// Panics when `strata` is empty.
    pub fn new(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        estimator: StratumEstimator,
        strata: Vec<Stratum>,
        allocation: AllocationPolicy,
        cfg: SessionConfig,
    ) -> Self {
        assert!(
            !strata.is_empty(),
            "a stratified session needs at least one stratum"
        );
        let service = Arc::new(service);
        let count = strata.len();
        let weights: Vec<f64> = strata
            .iter()
            .map(|s| stratum_weight(&estimator, region, &s.rect))
            .collect();

        let (phase, budgets) = if count == 1 {
            (Phase::Single, vec![cfg.query_budget])
        } else {
            match allocation {
                AllocationPolicy::Proportional => {
                    (Phase::Final, largest_remainder(cfg.query_budget, &weights))
                }
                AllocationPolicy::Neyman => (
                    Phase::Pilot,
                    largest_remainder(cfg.query_budget / 2, &weights),
                ),
            }
        };

        let children = strata
            .iter()
            .zip(&budgets)
            .map(|(stratum, &budget)| {
                // The single-stratum passthrough keeps the caller's config —
                // including early-stop rules — verbatim; the child then IS
                // the unstratified session, bit for bit.
                let child_cfg = if count == 1 {
                    cfg.clone()
                } else {
                    SessionConfig {
                        query_budget: budget,
                        root_seed: stratum_seed(cfg.root_seed, stratum.id as u64, count as u64),
                        threads: cfg.threads,
                        wave_size: cfg.wave_size,
                        // Early-stop rules act on the *combined* estimate,
                        // enforced by the combiner, not per child.
                        target_ci_halfwidth: None,
                        max_wall_ms: None,
                    }
                };
                match &estimator {
                    StratumEstimator::Lr(c) => StratumChild::Lr(Box::new(LrSession::new_stratum(
                        Arc::clone(&service),
                        region,
                        stratum.rect,
                        aggregate,
                        c.clone(),
                        child_cfg,
                    ))),
                    StratumEstimator::Lnr(c) => {
                        StratumChild::Lnr(Box::new(LnrSession::new_stratum(
                            Arc::clone(&service),
                            region,
                            stratum.rect,
                            aggregate,
                            c.clone(),
                            child_cfg,
                        )))
                    }
                    StratumEstimator::Nno(c) => {
                        StratumChild::Nno(Box::new(NnoSession::new_stratum(
                            Arc::clone(&service),
                            region,
                            stratum.rect,
                            aggregate,
                            c.clone(),
                            child_cfg,
                        )))
                    }
                }
            })
            .collect();

        StratifiedSession {
            children,
            shared: SharedState {
                region: *region,
                is_ratio: aggregate.is_ratio(),
                strata,
                weights,
                budgets,
                allocation,
                cfg,
                phase,
                cursor: 0,
                elapsed_ms: 0,
                stop: None,
                finished: false,
            },
        }
    }

    /// The strata this session runs over.
    pub fn strata(&self) -> &[Stratum] {
        &self.shared.strata
    }

    /// The base-design weight of each stratum (module docs).
    pub fn weights(&self) -> &[f64] {
        &self.shared.weights
    }

    /// The per-stratum budget shares as currently granted.
    pub fn budgets(&self) -> &[u64] {
        &self.shared.budgets
    }

    /// `true` once the session will not advance further.
    pub fn is_finished(&self) -> bool {
        match self.shared.phase {
            Phase::Single => self.children[0].is_finished(),
            _ => self.shared.finished,
        }
    }

    /// Advances the session by one child wave: the round-robin cursor picks
    /// the next unfinished stratum and steps it once. When the last Neyman
    /// pilot child finishes, the final allocation is granted at that same
    /// wave boundary.
    pub fn step(&mut self) {
        if self.shared.phase == Phase::Single {
            self.children[0].step();
            return;
        }
        if self.shared.finished {
            return;
        }
        // lbs-lint: allow(ambient-time, reason = "wall-clock early-stop picks when to stop; the estimate at any stop point stays bit-identical (session_checkpoint tests)")
        let started = std::time::Instant::now();
        let n = self.children.len();
        for offset in 0..n {
            let idx = (self.shared.cursor + offset) % n;
            if !self.children[idx].is_finished() {
                self.children[idx].step();
                self.shared.cursor = (idx + 1) % n;
                break;
            }
        }
        if self.shared.phase == Phase::Pilot && self.children.iter().all(|c| c.is_finished()) {
            self.grant_final_allocation();
        }
        self.apply_stop_rules(elapsed_ms(started));
    }

    /// Grants the post-pilot (Neyman) budget: the unspent half of the total
    /// goes to strata proportional to `w_h · sd_h` from the pilot samples,
    /// falling back to the plain weights when every observed deviation is
    /// zero or non-finite. Deterministic: reads only accumulated child
    /// state, rounds by largest remainder with ties to the lower stratum id.
    fn grant_final_allocation(&mut self) {
        self.shared.phase = Phase::Final;
        let planned: u64 = self.shared.budgets.iter().sum();
        let remainder = self.shared.cfg.query_budget.saturating_sub(planned);
        if remainder == 0 {
            return;
        }
        let scores: Vec<f64> = self
            .shared
            .weights
            .iter()
            .zip(&self.children)
            .map(|(w, child)| {
                let sd = child
                    .outcome()
                    .numerator
                    .sample_variance()
                    .unwrap_or(0.0)
                    .sqrt();
                w * sd
            })
            .collect();
        let degenerate = scores.iter().any(|s| !s.is_finite()) || scores.iter().sum::<f64>() <= 0.0;
        let grants = if degenerate {
            largest_remainder(remainder, &self.shared.weights)
        } else {
            largest_remainder(remainder, &scores)
        };
        for (idx, &grant) in grants.iter().enumerate() {
            if grant > 0 {
                self.shared.budgets[idx] += grant;
                self.children[idx].extend_budget(self.shared.budgets[idx]);
            }
        }
    }

    /// Combined stop rules, mirroring the flat sessions': all children done
    /// → a derived terminal reason; otherwise the combined-estimate target
    /// precision, then the wall-clock cap.
    fn apply_stop_rules(&mut self, wall_ms: u64) {
        self.shared.elapsed_ms = self.shared.elapsed_ms.saturating_add(wall_ms);
        if self.children.iter().all(|c| c.is_finished()) {
            self.shared.finished = true;
            if self.shared.stop.is_none() {
                let any = |reason: StopReason| {
                    self.children
                        .iter()
                        .any(|c| c.stop_reason() == Some(reason))
                };
                self.shared.stop = Some(if any(StopReason::ServiceExhausted) {
                    StopReason::ServiceExhausted
                } else if any(StopReason::BudgetSpent) {
                    StopReason::BudgetSpent
                } else {
                    StopReason::NoProgress
                });
            }
            return;
        }
        if let Some(target) = self.shared.cfg.target_ci_halfwidth {
            let (_, std_error, samples) = self.combined();
            if samples >= 2 && std_error > 0.0 && 1.96 * std_error <= target {
                for child in &mut self.children {
                    child.cancel();
                }
                self.shared.finished = true;
                self.shared.stop = Some(StopReason::TargetPrecision);
                return;
            }
        }
        if let Some(cap) = self.shared.cfg.max_wall_ms {
            if self.shared.elapsed_ms >= cap {
                for child in &mut self.children {
                    child.cancel();
                }
                self.shared.finished = true;
                self.shared.stop = Some(StopReason::WallClock);
            }
        }
    }

    /// The stratified Horvitz–Thompson combination:
    /// `(value, std_error, samples)` from the per-stratum accumulators
    /// (module docs derive the formulas; the ratio branch mirrors
    /// `point_and_error`'s delta method over the combined moments).
    fn combined(&self) -> (f64, f64, u64) {
        let mut num_mean = 0.0;
        let mut num_var = 0.0;
        let mut den_mean = 0.0;
        let mut den_var = 0.0;
        let mut samples = 0u64;
        for (weight, child) in self.shared.weights.iter().zip(&self.children) {
            let outcome = child.outcome();
            samples += outcome.numerator.count();
            num_mean += weight * outcome.numerator.mean();
            let num_se = outcome.numerator.std_error().unwrap_or(0.0);
            num_var += weight * weight * num_se * num_se;
            den_mean += weight * outcome.denominator.mean();
            let den_se = outcome.denominator.std_error().unwrap_or(0.0);
            den_var += weight * weight * den_se * den_se;
        }
        if !self.shared.is_ratio {
            return (num_mean, num_var.sqrt(), samples);
        }
        let num_se = num_var.sqrt();
        let den_se = den_var.sqrt();
        if den_mean.abs() <= f64::EPSILON {
            return (0.0, 0.0, samples);
        }
        let value = num_mean / den_mean;
        let rel =
            (num_se / num_mean.abs().max(f64::EPSILON)).powi(2) + (den_se / den_mean.abs()).powi(2);
        (value, value.abs() * rel.sqrt(), samples)
    }

    /// Total queries spent across all strata.
    pub fn queries_spent(&self) -> u64 {
        self.children.iter().map(|c| c.queries_spent()).sum()
    }

    /// The anytime state of the combined run. `queries` and `waves` sum
    /// over strata; the engine counters fold across children.
    pub fn snapshot(&self) -> AnytimeSnapshot {
        if self.shared.phase == Phase::Single {
            return self.children[0].snapshot();
        }
        let (value, std_error, samples) = self.combined();
        let mut engine = EngineReport::default();
        let mut queries = 0u64;
        let mut waves = 0u64;
        for child in &self.children {
            let snap = child.snapshot();
            engine.add(&snap.engine);
            queries += snap.queries;
            waves += snap.waves;
        }
        AnytimeSnapshot {
            value,
            std_error,
            ci95: (value - 1.96 * std_error, value + 1.96 * std_error),
            samples,
            queries,
            waves,
            finished: self.shared.finished,
            stop: self.shared.stop,
            engine,
        }
    }

    /// The final (or current — the session is anytime) combined
    /// [`Estimate`].
    ///
    /// The convergence trace is empty: per-stratum traces are metered
    /// against disjoint budgets and do not interleave into one meaningful
    /// full-run trace. `per_sample` summarizes the *combined* estimator
    /// (its `std_dev` is back-derived from the combined standard error), not
    /// any single stratum's raw contributions.
    pub fn finalize(&self) -> Result<Estimate, EstimateError> {
        if self.shared.phase == Phase::Single {
            return self.children[0].finalize();
        }
        let (value, std_error, samples) = self.combined();
        if samples == 0 {
            return Err(EstimateError::NoSamples);
        }
        let mut engine = EngineReport::default();
        for child in &self.children {
            engine.add(&child.snapshot().engine);
        }
        Ok(Estimate {
            value,
            std_error,
            ci95: (value - 1.96 * std_error, value + 1.96 * std_error),
            samples,
            query_cost: self.queries_spent(),
            trace: Vec::new(),
            per_sample: Summary {
                count: samples,
                mean: value,
                std_dev: std_error * (samples as f64).sqrt(),
                std_error,
            },
            engine,
        })
    }

    /// Stops the session (and every child) without finishing its budget.
    pub fn cancel(&mut self) {
        for child in &mut self.children {
            child.cancel();
        }
        if self.shared.phase == Phase::Single {
            return;
        }
        if !self.shared.finished {
            self.shared.finished = true;
            self.shared.stop = Some(StopReason::Cancelled);
        }
    }

    /// Snapshots the entire owned state (every child plus the combiner).
    /// Resuming and stepping is bit-identical to never having
    /// checkpointed, at every thread count.
    pub fn checkpoint(&self) -> StratifiedSessionState {
        StratifiedSessionState {
            children: self.children.iter().map(|c| c.checkpoint()).collect(),
            shared: self.shared.clone(),
        }
    }

    /// Rebuilds a session from a checkpoint and a service handle.
    pub fn resume(service: S, state: StratifiedSessionState) -> Self {
        let service = Arc::new(service);
        let children = state
            .children
            .into_iter()
            .map(|child| match child {
                StratumCheckpoint::Lr(s) => {
                    StratumChild::Lr(Box::new(LrSession::resume(Arc::clone(&service), *s)))
                }
                StratumCheckpoint::Lnr(s) => {
                    StratumChild::Lnr(Box::new(LnrSession::resume(Arc::clone(&service), *s)))
                }
                StratumCheckpoint::Nno(s) => {
                    StratumChild::Nno(Box::new(NnoSession::resume(Arc::clone(&service), *s)))
                }
            })
            .collect();
        StratifiedSession {
            children,
            shared: state.shared,
        }
    }

    /// The query region the combined estimate covers.
    pub fn region(&self) -> Rect {
        self.shared.region
    }

    /// The allocation policy in force.
    pub fn allocation(&self) -> AllocationPolicy {
        self.shared.allocation
    }
}

/// Splits `total` into integer shares proportional to `shares` by the
/// largest-remainder method. Non-finite and non-positive shares get 0; an
/// all-degenerate share vector falls back to an equal split. Ties in the
/// fractional remainders break toward the lower index, so the result is a
/// pure function of its arguments.
fn largest_remainder(total: u64, shares: &[f64]) -> Vec<u64> {
    let n = shares.len();
    if n == 0 {
        return Vec::new();
    }
    let clean: Vec<f64> = shares
        .iter()
        .map(|&s| if s.is_finite() && s > 0.0 { s } else { 0.0 })
        .collect();
    let sum: f64 = clean.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        let base = total / n as u64;
        let extra = (total % n as u64) as usize;
        return (0..n).map(|i| base + u64::from(i < extra)).collect();
    }
    let quotas: Vec<f64> = clean.iter().map(|s| total as f64 * s / sum).collect();
    let mut out: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
    let assigned: u64 = out.iter().sum();
    let mut leftover = total.saturating_sub(assigned);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let frac_a = quotas[a] - quotas[a].floor();
        let frac_b = quotas[b] - quotas[b].floor();
        frac_b.total_cmp(&frac_a).then(a.cmp(&b))
    });
    for idx in order {
        if leftover == 0 {
            break;
        }
        out[idx] += 1;
        leftover -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_remainder_conserves_the_total() {
        for total in [0u64, 1, 7, 100, 999] {
            for shares in [
                vec![1.0, 1.0, 1.0],
                vec![0.5, 0.3, 0.2],
                vec![0.9, 0.05, 0.05],
                vec![1e-9, 1.0],
            ] {
                let out = largest_remainder(total, &shares);
                assert_eq!(out.iter().sum::<u64>(), total, "{total} over {shares:?}");
            }
        }
    }

    #[test]
    fn largest_remainder_is_proportional() {
        let out = largest_remainder(100, &[0.5, 0.3, 0.2]);
        assert_eq!(out, vec![50, 30, 20]);
    }

    #[test]
    fn largest_remainder_degenerate_shares_split_equally() {
        assert_eq!(largest_remainder(10, &[0.0, 0.0, 0.0]), vec![4, 3, 3]);
        assert_eq!(largest_remainder(9, &[f64::NAN, -1.0, 0.0]), vec![3, 3, 3]);
    }

    #[test]
    fn largest_remainder_zeroes_bad_shares() {
        let out = largest_remainder(10, &[f64::INFINITY, 1.0, 1.0]);
        // The infinite share is dropped; the rest split the total.
        assert_eq!(out.iter().sum::<u64>(), 10);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn largest_remainder_remainders_go_to_largest_fractions() {
        // Quotas 3.4 / 3.3 / 3.3: the leftover unit goes to index 0.
        let out = largest_remainder(10, &[0.34, 0.33, 0.33]);
        assert_eq!(out, vec![4, 3, 3]);
    }
}
