//! LR-LBS-AGG: unbiased aggregate estimation over location-returned
//! interfaces (paper §3).
//!
//! The estimator draws random query locations, and for every returned tuple
//! computes its (top-h) Voronoi cell **exactly** from the locations of the
//! tuples discovered along the way (Theorem 1). The exact cell volume turns
//! into an exact selection probability, which makes the inverse-probability
//! estimator of equation (1) completely unbiased — the key improvement over
//! the approximate-volume baseline of Dalvi et al.
//!
//! Four error-reduction techniques from §3.2 are implemented and can be
//! toggled independently (the Figure 20 ablation exercises exactly that):
//!
//! 1. **Faster initialization** ([`explorer`]): fake corner tuples shrink the
//!    initial tentative cell, saving the first few bounding-box-sized rounds.
//! 2. **Leveraging history** ([`history`]): tuples discovered while computing
//!    earlier cells seed later computations, again shrinking initial cells.
//! 3. **Variance reduction with larger k** ([`variance`]): an adaptive choice
//!    of how many of the k returned tuples to use per query, driven by
//!    history-derived upper bounds on their cell volumes.
//! 4. **Monte-Carlo upper/lower bounds** ([`explorer`]): when pinning down
//!    the last edges of a cell would cost many queries, an unbiased
//!    Monte-Carlo escape finishes the sample early, helped by a
//!    disk-union lower bound that answers some trial points without queries.

mod estimator;
pub mod explorer;
pub mod history;
pub mod variance;

pub use estimator::{LrLbsAgg, LrLbsAggConfig};
pub use explorer::{CellEstimate, ExploreConfig, ExploreOutcome};
pub use history::History;
pub use variance::HSelection;
