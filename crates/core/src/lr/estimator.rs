//! Algorithm LR-LBS-AGG (paper Algorithm 5).
//!
//! Per sample: draw a query location from the sampling design, issue one kNN
//! query, and for each returned tuple whose rank fits the chosen top-h level
//! compute its exact top-h Voronoi cell and add `Q(t) / p(t)` to the sample's
//! contribution, where `p(t)` is the exact probability of drawing a location
//! inside that cell. The sample contributions are independent and unbiased;
//! their mean is the estimate, and their sample variance yields the
//! confidence interval.

use rand::Rng;

use lbs_geom::Rect;
use lbs_service::{LbsBackend, QueryError, ReturnMode};

use crate::agg::Aggregate;
use crate::driver::SampleDriver;
use crate::estimate::{Estimate, EstimateError};
use crate::sampling::QuerySampler;
use crate::session::{LrSession, SessionConfig};

use super::explorer::{explore_cell, CellEstimate, ExploreConfig};
use super::history::History;
use super::variance::HSelection;

/// Configuration of the LR-LBS-AGG estimator.
#[derive(Clone, Debug)]
pub struct LrLbsAggConfig {
    /// How many of the k returned tuples to use per query (§3.2.3).
    pub h_selection: HSelection,
    /// Faster initialization with fake corner tuples (§3.2.1).
    pub use_fast_init: bool,
    /// Seed cell computations from history (§3.2.2).
    pub use_history: bool,
    /// Allow the unbiased Monte-Carlo escape (§3.2.4).
    pub use_mc_bounds: bool,
    /// Use a density-weighted sampling design instead of uniform (§5.2).
    ///
    /// Weighted sampling integrates the density over the cell polygon, which
    /// is exact only for convex (top-1) cells, so enabling it forces
    /// `h = 1` and disables the Monte-Carlo escape.
    pub weighted_sampler: Option<lbs_data::DensityGrid>,
    /// Record a trace point every this many samples (0 disables the trace).
    pub trace_every: u64,
    /// How many known tuples seed each cell computation.
    pub history_neighbor_limit: usize,
    /// Explicit half-width of the fast-initialization box, if any.
    pub fast_init_half_width: Option<f64>,
    /// Cap on Theorem-1 rounds per cell before the Monte-Carlo escape.
    pub max_explore_rounds: usize,
    /// Escape when more than this many untested vertices remain.
    pub mc_vertex_threshold: usize,
    /// Escape when a round shrinks the cell by less than this fraction.
    pub mc_min_shrink: f64,
    /// Stop each cell construction at the security-radius certificate
    /// instead of clipping against every known tuple. Byte-identical
    /// estimates either way (see [`lbs_geom::cell_engine`]); off only for
    /// the equivalence tests and benchmarks.
    pub prune_cells: bool,
    /// Replay finished exact cell explorations from the shared
    /// [`History`] cell cache. A replay issues the same queries as a fresh
    /// exploration, so estimates are byte-identical either way.
    pub cache_cells: bool,
}

impl Default for LrLbsAggConfig {
    fn default() -> Self {
        LrLbsAggConfig {
            h_selection: HSelection::default(),
            use_fast_init: true,
            use_history: true,
            use_mc_bounds: true,
            weighted_sampler: None,
            trace_every: 1,
            history_neighbor_limit: 32,
            fast_init_half_width: None,
            max_explore_rounds: 64,
            mc_vertex_threshold: 14,
            mc_min_shrink: 0.02,
            prune_cells: true,
            cache_cells: true,
        }
    }
}

impl LrLbsAggConfig {
    /// The ablation ladder of the paper's Figure 20: level 0 disables every
    /// error-reduction technique, each following level adds one more in the
    /// order the paper presents them, and level 4 equals the full default.
    ///
    /// | level | fast init | history | adaptive h | MC bounds |
    /// |-------|-----------|---------|------------|-----------|
    /// | 0     | –         | –       | –          | –         |
    /// | 1     | ✓         | –       | –          | –         |
    /// | 2     | ✓         | ✓       | –          | –         |
    /// | 3     | ✓         | ✓       | ✓          | –         |
    /// | 4     | ✓         | ✓       | ✓          | ✓         |
    pub fn ablation_level(level: usize) -> Self {
        let mut cfg = LrLbsAggConfig {
            h_selection: HSelection::Top1,
            use_fast_init: false,
            use_history: false,
            use_mc_bounds: false,
            ..LrLbsAggConfig::default()
        };
        if level >= 1 {
            cfg.use_fast_init = true;
        }
        if level >= 2 {
            cfg.use_history = true;
        }
        if level >= 3 {
            cfg.h_selection = HSelection::default();
        }
        if level >= 4 {
            cfg.use_mc_bounds = true;
        }
        cfg
    }

    /// Configuration using a fixed top-h level for every returned tuple
    /// (the non-adaptive variants of Figure 19).
    pub fn fixed_h(h: usize) -> Self {
        LrLbsAggConfig {
            h_selection: HSelection::Fixed(h),
            ..LrLbsAggConfig::default()
        }
    }

    fn explore_config(&self) -> ExploreConfig {
        ExploreConfig {
            use_fast_init: self.use_fast_init,
            use_history: self.use_history,
            use_mc_bounds: self.use_mc_bounds && self.weighted_sampler.is_none(),
            fast_init_half_width: self.fast_init_half_width,
            history_neighbor_limit: self.history_neighbor_limit,
            max_rounds: self.max_explore_rounds,
            mc_vertex_threshold: self.mc_vertex_threshold,
            mc_min_shrink: self.mc_min_shrink,
            max_mc_trials: 4_000,
            use_pruned_cells: self.prune_cells,
            use_cell_cache: self.cache_cells,
        }
    }
}

/// The LR-LBS-AGG estimator. Holds the cross-sample history so that repeated
/// [`LrLbsAgg::estimate`] calls on the same service keep benefiting from it.
#[derive(Clone, Debug, Default)]
pub struct LrLbsAgg {
    config: LrLbsAggConfig,
    history: History,
}

impl LrLbsAgg {
    /// Creates an estimator with the given configuration.
    pub fn new(config: LrLbsAggConfig) -> Self {
        LrLbsAgg {
            config,
            history: History::new(),
        }
    }

    /// The accumulated history (for inspection by experiments).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Clears the accumulated history.
    pub fn reset_history(&mut self) {
        self.history = History::new();
    }

    /// Estimates `aggregate` over `region` through the LR interface
    /// `service`, spending at most `query_budget` kNN queries.
    ///
    /// The estimator stops starting new samples once the budget is spent; the
    /// sample in flight is allowed to finish, so the actual cost can slightly
    /// exceed the budget (mirroring how one would use a daily API quota).
    pub fn estimate<S: LbsBackend + ?Sized, R: Rng>(
        &mut self,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        query_budget: u64,
        rng: &mut R,
    ) -> Result<Estimate, EstimateError> {
        // Assert before taking the history so a panic on a rank-only
        // interface cannot wipe the accumulated state.
        assert_eq!(
            service.config().return_mode,
            ReturnMode::LocationReturned,
            "LR-LBS-AGG requires a location-returned interface; use LnrLbsAgg for rank-only ones"
        );
        let history = std::mem::take(&mut self.history);
        let mut session = LrSession::new_serial(
            service,
            region,
            aggregate,
            self.config.clone(),
            history,
            query_budget,
        );
        while !session.is_finished() {
            session.step_serial(rng);
        }
        let result = session.finalize();
        self.history = session.into_history();
        // The delta log only matters on forked histories; on this long-lived
        // one it would just grow forever.
        self.history.discard_delta_log();
        result
    }

    /// Estimates `aggregate` over `region` in parallel, fanning samples out
    /// across the [`SampleDriver`]'s worker threads.
    ///
    /// The result is **bit-identical for any thread count** given the same
    /// `root_seed` (see the [`crate::driver`] module docs for the exact
    /// contract): every sample draws its own `StdRng` seeded from
    /// `(root_seed, sample_index)`, and per-chunk statistics are merged in a
    /// fixed order.
    ///
    /// Semantics differ from [`LrLbsAgg::estimate`] in two documented ways:
    /// the soft budget is enforced at wave boundaries instead of per sample
    /// (so the overshoot can be a few samples rather than one), and the
    /// §3.2.2 history is shared between concurrent samples only at those
    /// boundaries — each worker chunk forks the history and the driver
    /// absorbs the forks back deterministically, trading a little per-query
    /// efficiency for wall-clock speed without giving up unbiasedness.
    ///
    /// Under a *hard* service limit, `query_cost` counts only the queries of
    /// completed samples (see [`crate::driver::DriverOutcome::queries`]);
    /// the service's own `queries_issued()` ledger remains authoritative.
    pub fn estimate_parallel<S: LbsBackend + ?Sized>(
        &mut self,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        query_budget: u64,
        root_seed: u64,
        driver: &SampleDriver,
    ) -> Result<Estimate, EstimateError> {
        assert_eq!(
            service.config().return_mode,
            ReturnMode::LocationReturned,
            "LR-LBS-AGG requires a location-returned interface; use LnrLbsAgg for rank-only ones"
        );
        let history = std::mem::take(&mut self.history);
        let cfg = SessionConfig::new(query_budget, root_seed).with_threads(driver.threads());
        let mut session = LrSession::new(
            service,
            region,
            aggregate,
            self.config.clone(),
            history,
            cfg,
        );
        while !session.is_finished() {
            session.step();
        }
        let result = session.finalize();
        self.history = session.into_history();
        self.history.discard_delta_log();
        result
    }

    /// Runs one independent sample: draws a query location, issues its kNN
    /// query, explores the qualifying top-h cells, and returns the sample's
    /// Horvitz–Thompson `(numerator, denominator)` contribution.
    ///
    /// This is the per-sample loop body shared by the serial
    /// [`LrLbsAgg::estimate`] and the [`SampleDriver`]-based
    /// [`LrLbsAgg::estimate_parallel`]. An `Err` means the sample hit the
    /// service's hard query limit and no partial contribution exists.
    #[allow(clippy::too_many_arguments)] // shared loop body; mirrors Algorithm 5's state
    pub(crate) fn sample_once<S: LbsBackend + ?Sized, R: Rng>(
        config: &LrLbsAggConfig,
        sampler: &QuerySampler,
        k: usize,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        history: &mut History,
        rng: &mut R,
    ) -> Result<(f64, f64), QueryError> {
        let q = sampler.sample(rng);
        let resp = service.query(&q)?;

        let mut num_contrib = 0.0;
        let mut den_contrib = 0.0;

        // Decide the top-h level of every returned tuple *before* any
        // exploration of this sample. Deciding lazily would let the history
        // gathered while exploring the rank-1 tuple influence the inclusion
        // of the rank-2.. tuples of the same answer, which introduces a
        // positive bias (the inclusion indicator would correlate with the
        // current query).
        let chosen_h: Vec<usize> = resp
            .results
            .iter()
            .map(
                |returned| match (&config.weighted_sampler, returned.location) {
                    (Some(_), _) | (_, None) => 1,
                    (None, Some(location)) => config.h_selection.choose(
                        returned.id,
                        &location,
                        k,
                        region,
                        history,
                        config.history_neighbor_limit,
                        config.cache_cells,
                    ),
                },
            )
            .collect();

        for (returned, &h) in resp.results.iter().zip(chosen_h.iter()) {
            let Some(location) = returned.location else {
                continue;
            };
            // Only tuples whose rank fits within their chosen h contribute
            // (the query point is inside their top-h cell exactly when
            // rank <= h).
            if returned.rank > h {
                continue;
            }
            let outcome = explore_cell(
                service,
                returned.id,
                location,
                h,
                region,
                history,
                &config.explore_config(),
                rng,
            )?;

            // Probabilities are always computed against the *base* design
            // over the full region — under stratified sampling the draw is
            // restricted to a stratum, but the Horvitz–Thompson weight stays
            // 1/π(t) for the full-region design (the stratified combiner
            // multiplies each stratum by its base-design mass, which
            // telescopes back to the unstratified estimator).
            let inverse_p = match (&outcome.estimate, sampler.base()) {
                (CellEstimate::Exact { cell }, s) => match s.cell_probability(cell) {
                    Some(p) if p > 0.0 => 1.0 / p,
                    _ => 0.0,
                },
                (mc @ CellEstimate::MonteCarlo { .. }, QuerySampler::Uniform { .. }) => {
                    mc.inverse_probability_uniform(region)
                }
                // Weighted sampling disables the MC escape, so this arm is
                // unreachable in practice; contribute nothing rather than
                // something biased if it ever happens.
                (CellEstimate::MonteCarlo { .. }, QuerySampler::Weighted { .. }) => 0.0,
                // `base()` never returns a stratified design.
                (CellEstimate::MonteCarlo { .. }, QuerySampler::Stratified { .. }) => 0.0,
            };

            let num = aggregate
                .numerator(returned, Some(&location))
                .unwrap_or(0.0);
            let den = aggregate
                .denominator(returned, Some(&location))
                .unwrap_or(0.0);
            num_contrib += num * inverse_p;
            den_contrib += den * inverse_p;
        }

        Ok((num_contrib, den_contrib))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Selection;
    use crate::stats::RunningStats;
    use lbs_data::{attrs, Dataset, ScenarioBuilder};
    use lbs_service::{ServiceConfig, SimulatedLbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 200.0, 200.0)
    }

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        ScenarioBuilder::usa_pois(n)
            .with_bbox(region())
            .build(&mut rng)
    }

    #[test]
    fn count_all_converges_to_truth() {
        let d = dataset(200, 1);
        let truth = d.len() as f64;
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let out = est
            .estimate(
                &service,
                &region(),
                &Aggregate::count_all(),
                2_500,
                &mut rng,
            )
            .unwrap();
        assert!(out.samples > 5);
        assert!(out.query_cost >= 2_500);
        let rel = out.relative_error(truth);
        assert!(
            rel < 0.35,
            "relative error {rel} (estimate {} truth {truth})",
            out.value
        );
    }

    #[test]
    fn count_with_selection_converges() {
        let d = dataset(200, 3);
        let truth = Aggregate::count_restaurants().ground_truth(&d, &region());
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let out = est
            .estimate(
                &service,
                &region(),
                &Aggregate::count_restaurants(),
                2_500,
                &mut rng,
            )
            .unwrap();
        let rel = out.relative_error(truth);
        assert!(rel < 0.45, "relative error {rel}");
    }

    #[test]
    fn sum_and_avg_estimates_work() {
        let d = dataset(150, 5);
        let sum_truth = Aggregate::sum_school_enrollment().ground_truth(&d, &region());
        let avg_agg = Aggregate::avg_where(
            attrs::RATING,
            Selection::TextEquals {
                attr: attrs::CATEGORY.into(),
                value: "restaurant".into(),
            },
        );
        let avg_truth = avg_agg.ground_truth(&d, &region());
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
        let mut rng = StdRng::seed_from_u64(6);

        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        // SUM(enrollment) has heavy-tailed Horvitz–Thompson contributions
        // (one school in a tiny Voronoi cell can dominate a sample), so it
        // needs a larger budget than COUNT before a single fixed-seed run is
        // reliably within tolerance.
        let sum_out = est
            .estimate(
                &service,
                &region(),
                &Aggregate::sum_school_enrollment(),
                8_000,
                &mut rng,
            )
            .unwrap();
        assert!(
            sum_out.relative_error(sum_truth) < 0.6,
            "SUM rel err too high: {} vs truth {sum_truth}",
            sum_out.value
        );

        let avg_out = est
            .estimate(&service, &region(), &avg_agg, 2_000, &mut rng)
            .unwrap();
        // AVG is a ratio of two correlated estimates and converges fast.
        assert!(
            avg_out.relative_error(avg_truth) < 0.25,
            "AVG {} vs truth {avg_truth}",
            avg_out.value
        );
    }

    #[test]
    fn unbiasedness_over_repetitions() {
        // The mean of many independent low-budget estimates must approach the
        // truth much more closely than a single estimate's typical error.
        let d = dataset(60, 7);
        let truth = d.len() as f64;
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(6));
        let mut means = RunningStats::new();
        for seed in 0..30 {
            let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let out = est
                .estimate(&service, &region(), &Aggregate::count_all(), 400, &mut rng)
                .unwrap();
            means.push(out.value);
        }
        let rel_bias = (means.mean() - truth).abs() / truth;
        assert!(rel_bias < 0.12, "empirical bias {rel_bias} too large");
    }

    #[test]
    fn trace_is_recorded_and_monotone_in_cost() {
        let d = dataset(100, 9);
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(5));
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        let mut rng = StdRng::seed_from_u64(10);
        let out = est
            .estimate(&service, &region(), &Aggregate::count_all(), 800, &mut rng)
            .unwrap();
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[0].query_cost <= w[1].query_cost);
        }
    }

    #[test]
    fn ablation_levels_monotonically_enable_features() {
        let l0 = LrLbsAggConfig::ablation_level(0);
        assert!(!l0.use_fast_init && !l0.use_history && !l0.use_mc_bounds);
        assert_eq!(l0.h_selection, HSelection::Top1);
        let l2 = LrLbsAggConfig::ablation_level(2);
        assert!(l2.use_fast_init && l2.use_history && !l2.use_mc_bounds);
        let l4 = LrLbsAggConfig::ablation_level(4);
        assert!(l4.use_fast_init && l4.use_history && l4.use_mc_bounds);
        assert_eq!(l4.h_selection, HSelection::default());
    }

    #[test]
    fn weighted_sampling_reduces_variance_on_clustered_data() {
        // Clustered data with uniform sampling → rural tuples dominate the
        // variance; census-style weighted sampling should cut the per-sample
        // standard deviation substantially for COUNT.
        let mut rng = StdRng::seed_from_u64(11);
        let d = ScenarioBuilder::usa_pois(250).build(&mut rng);
        let bbox = d.bbox();
        let grid = lbs_data::DensityGrid::from_dataset(&d, 24, 16, 0.2);
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));

        let mut uniform_est = LrLbsAgg::new(LrLbsAggConfig::default());
        let uniform_out = uniform_est
            .estimate(&service, &bbox, &Aggregate::count_all(), 3_000, &mut rng)
            .unwrap();
        let mut weighted_est = LrLbsAgg::new(LrLbsAggConfig {
            weighted_sampler: Some(grid),
            ..LrLbsAggConfig::default()
        });
        let weighted_out = weighted_est
            .estimate(&service, &bbox, &Aggregate::count_all(), 3_000, &mut rng)
            .unwrap();
        assert!(
            weighted_out.per_sample.std_dev < uniform_out.per_sample.std_dev,
            "weighted std dev {} should beat uniform {}",
            weighted_out.per_sample.std_dev,
            uniform_out.per_sample.std_dev
        );
    }

    #[test]
    #[should_panic(expected = "LR-LBS-AGG requires a location-returned interface")]
    fn rejects_lnr_interfaces() {
        let d = dataset(20, 13);
        let service = SimulatedLbs::new(d, ServiceConfig::lnr_lbs(5));
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        let mut rng = StdRng::seed_from_u64(14);
        let _ = est.estimate(&service, &region(), &Aggregate::count_all(), 100, &mut rng);
    }

    #[test]
    fn hard_service_limit_yields_no_samples_error() {
        let d = dataset(50, 15);
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(5).with_query_limit(1));
        let mut est = LrLbsAgg::new(LrLbsAggConfig::default());
        let mut rng = StdRng::seed_from_u64(16);
        let res = est.estimate(&service, &region(), &Aggregate::count_all(), 100, &mut rng);
        assert!(matches!(res, Err(EstimateError::NoSamples)));
    }
}
