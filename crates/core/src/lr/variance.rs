//! Adaptive choice of how many returned tuples to use per query (§3.2.3).
//!
//! A query with k > 1 returns k tuples; using the top-h Voronoi cell of each
//! (rather than only the top-1) gives k contributions per query and usually a
//! lower per-sample variance — but larger h means more complex cells and more
//! queries to pin them down. The paper's rule: for each returned tuple,
//! compute `λ_h`, a history-derived **upper bound** on the volume of its
//! top-h cell, and pick the largest `h ∈ [2, k]` with `λ_h ≤ λ_0`; fall back
//! to `h = 1` when none qualifies. Tuples whose top-1 cell is already large
//! contribute little variance, so spending queries to enlarge their h would
//! be wasted.

use lbs_data::TupleId;
use lbs_geom::{Point, Rect};

use super::history::History;

/// Policy for choosing the `h` of the top-h Voronoi cell per returned tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum HSelection {
    /// Always use the top-1 cell (ignore the other k − 1 returned tuples).
    Top1,
    /// Use a fixed `h` for every tuple (capped at the interface's k).
    Fixed(usize),
    /// The adaptive rule of §3.2.3 with threshold `λ_0`; `None` derives the
    /// threshold from the running mean of cell volumes seen so far (twice the
    /// mean), falling back to 0.5 % of the region area before any history
    /// exists.
    Adaptive {
        /// Explicit volume threshold `λ_0`, if any.
        lambda0: Option<f64>,
    },
}

impl Default for HSelection {
    fn default() -> Self {
        HSelection::Adaptive { lambda0: None }
    }
}

impl HSelection {
    /// Chooses the `h` to use for the tuple `site_id` located at `site`,
    /// given the interface's top-k limit and the current history.
    ///
    /// The adaptive rule computes its λ_h volume bounds through the pruned
    /// cell engine and memoises them in the history's λ cache keyed by
    /// `(site_id, h)` — the bound only depends on the neighbour list it was
    /// computed from, so a cache hit returns the exact same value a
    /// recomputation would.
    #[allow(clippy::too_many_arguments)] // the paper's rule inputs plus the cache switch
    pub fn choose(
        &self,
        site_id: TupleId,
        site: &Point,
        k: usize,
        region: &Rect,
        history: &mut History,
        neighbor_limit: usize,
        use_lambda_cache: bool,
    ) -> usize {
        match self {
            HSelection::Top1 => 1,
            HSelection::Fixed(h) => (*h).clamp(1, k.max(1)),
            HSelection::Adaptive { lambda0 } => {
                if k <= 1 {
                    return 1;
                }
                // Larger h is only worthwhile where the database is locally
                // dense (small cells); beyond a handful of levels the extra
                // cell complexity costs more queries than the variance it
                // saves, so the adaptive policy caps itself.
                let k = k.min(3);
                let threshold = lambda0.unwrap_or_else(|| {
                    history
                        .mean_cell_volume()
                        .map(|v| 0.5 * v)
                        .unwrap_or(region.area() * 0.005)
                });
                // Already in ascending distance order — exactly the
                // candidate view the pruned construction wants.
                let neighbors = history.neighbors_of(site, neighbor_limit);
                if neighbors.is_empty() {
                    // No knowledge at all: be conservative, use the top-1 cell.
                    return 1;
                }
                // λ_h computed from history is an upper bound on the true
                // top-h cell volume because the history set is a subset of
                // the database. Volumes grow with h, so scan from the largest
                // h downwards and stop at the first that fits.
                for h in (2..=k).rev() {
                    let cached = if use_lambda_cache {
                        history.lambda_cache_get(site_id, site, h, region, &neighbors)
                    } else {
                        None
                    };
                    let lambda_h = match cached {
                        Some(area) => area,
                        None => {
                            // prune = true is what makes the λ prefix
                            // certificate sound: a certified-far extra seed is
                            // cut off by the security radius before it can
                            // participate, so the bound — and its bits — match
                            // a recomputation over the grown list.
                            let cell = history.build_topk_cell(site, &neighbors, h, region, true);
                            if use_lambda_cache {
                                let cert_radius = cell
                                    .vertices
                                    .iter()
                                    .map(|v| v.distance(site))
                                    .fold(0.0_f64, f64::max);
                                history.lambda_cache_put(
                                    site_id,
                                    h,
                                    *region,
                                    neighbors.clone(),
                                    cert_radius,
                                    cell.area,
                                );
                            }
                            cell.area
                        }
                    };
                    if lambda_h <= threshold {
                        return h;
                    }
                }
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn dense_history_around(site: Point, spacing: f64) -> History {
        let mut h = History::new();
        let mut id = 1000u64;
        for i in -3i32..=3 {
            for j in -3i32..=3 {
                if i == 0 && j == 0 {
                    continue;
                }
                h.insert(
                    id,
                    Point::new(site.x + i as f64 * spacing, site.y + j as f64 * spacing),
                );
                id += 1;
            }
        }
        h
    }

    #[test]
    fn top1_and_fixed_policies() {
        let mut h = History::new();
        let site = Point::new(50.0, 50.0);
        assert_eq!(
            HSelection::Top1.choose(0, &site, 10, &region(), &mut h, 32, true),
            1
        );
        assert_eq!(
            HSelection::Fixed(3).choose(0, &site, 10, &region(), &mut h, 32, true),
            3
        );
        // Fixed h is capped at k.
        assert_eq!(
            HSelection::Fixed(8).choose(0, &site, 5, &region(), &mut h, 32, true),
            5
        );
        assert_eq!(
            HSelection::Fixed(0).choose(0, &site, 5, &region(), &mut h, 32, true),
            1
        );
    }

    #[test]
    fn adaptive_with_no_history_is_conservative() {
        let mut h = History::new();
        let policy = HSelection::default();
        assert_eq!(
            policy.choose(0, &Point::new(50.0, 50.0), 10, &region(), &mut h, 32, true),
            1
        );
    }

    #[test]
    fn adaptive_uses_larger_h_in_dense_areas() {
        let site = Point::new(50.0, 50.0);
        // Dense neighbourhood: even the top-3 cell stays small.
        let mut dense = dense_history_around(site, 2.0);
        let policy = HSelection::Adaptive {
            lambda0: Some(200.0),
        };
        let h_dense = policy.choose(0, &site, 3, &region(), &mut dense, 64, true);
        assert!(
            h_dense >= 2,
            "dense area should allow h >= 2, got {h_dense}"
        );
        // Sparse neighbourhood: even the top-2 cell exceeds the threshold.
        let mut sparse = dense_history_around(site, 40.0);
        let h_sparse = policy.choose(0, &site, 3, &region(), &mut sparse, 64, true);
        assert_eq!(h_sparse, 1);
    }

    #[test]
    fn adaptive_threshold_from_history_mean() {
        let site = Point::new(50.0, 50.0);
        let mut hist = dense_history_around(site, 2.0);
        // Record small cell volumes so the derived threshold 2×mean is small.
        for _ in 0..5 {
            hist.record_cell_volume(1.0);
        }
        let policy = HSelection::Adaptive { lambda0: None };
        // Threshold = 2.0; the top-2 cell around a 2 km lattice is larger
        // than 2 km², so the policy falls back to 1.
        assert_eq!(
            policy.choose(0, &site, 3, &region(), &mut hist, 64, true),
            1
        );
        // With a generous recorded mean the same neighbourhood allows h >= 2.
        let mut hist2 = dense_history_around(site, 2.0);
        for _ in 0..5 {
            hist2.record_cell_volume(100.0);
        }
        assert!(policy.choose(0, &site, 3, &region(), &mut hist2, 64, true) >= 2);
    }

    #[test]
    fn adaptive_with_k1_is_always_one() {
        let mut hist = dense_history_around(Point::new(50.0, 50.0), 2.0);
        let policy = HSelection::default();
        assert_eq!(
            policy.choose(
                0,
                &Point::new(50.0, 50.0),
                1,
                &region(),
                &mut hist,
                64,
                true
            ),
            1
        );
    }
}
