//! History of discovered tuples (paper §3.2.2).
//!
//! LBS databases such as Google Maps are static over the course of an
//! estimation run, so every tuple location discovered while computing one
//! Voronoi cell is free information for all later cells: starting the next
//! computation from the bisectors of already-known nearby tuples yields a
//! much tighter initial cell at zero query cost.
//!
//! [`History`] stores every `(tuple id, location)` pair ever returned by the
//! LR interface plus the volumes of the cells computed so far (the latter
//! feed the adaptive top-h selection threshold of §3.2.3).
//!
//! Locations live in a `BTreeMap` rather than a `HashMap` on purpose: the
//! neighbour lists handed to the geometry code are built by iterating this
//! map, and estimation results must be bit-identical across runs and across
//! [`crate::driver::SampleDriver`] thread counts — which rules out the
//! randomised iteration order of `HashMap`.
//!
//! For the parallel sample driver, [`History::fork`] hands each worker block
//! a private snapshot and [`History::absorb`] merges what the block learned
//! back into the master copy in a deterministic order.

use std::collections::BTreeMap;

use lbs_data::TupleId;
use lbs_geom::Point;

use crate::stats::RunningStats;

/// Accumulated knowledge about the hidden database.
#[derive(Clone, Debug, Default)]
pub struct History {
    locations: BTreeMap<TupleId, Point>,
    cell_volumes: RunningStats,
    /// Cell volumes recorded since this history was created or forked; the
    /// delta log that [`History::absorb`] replays into the master copy.
    fresh_volumes: Vec<f64>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Number of distinct tuples whose locations are known.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` when no tuple has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Records a tuple location (idempotent).
    pub fn insert(&mut self, id: TupleId, location: Point) {
        self.locations.entry(id).or_insert(location);
    }

    /// The known location of a tuple, if any.
    pub fn location_of(&self, id: TupleId) -> Option<Point> {
        self.locations.get(&id).copied()
    }

    /// `true` when the tuple has been seen before.
    pub fn contains(&self, id: TupleId) -> bool {
        self.locations.contains_key(&id)
    }

    /// The locations of the `limit` known tuples nearest to `site`,
    /// excluding any tuple at (essentially) the same location as `site`
    /// itself.
    ///
    /// These are the "historic tuples" fed into the initial cell of a new
    /// computation (Algorithm 3). Limiting the count keeps the geometry work
    /// bounded: faraway tuples cannot contribute edges to the cell anyway.
    pub fn neighbors_of(&self, site: &Point, limit: usize) -> Vec<Point> {
        let mut pts: Vec<Point> = self
            .locations
            .values()
            .copied()
            .filter(|p| !p.approx_eq(site))
            .collect();
        pts.sort_by(|a, b| {
            a.distance_sq(site)
                .partial_cmp(&b.distance_sq(site))
                .unwrap()
        });
        pts.truncate(limit);
        pts
    }

    /// Distance from `site` to the nearest known tuple (other than itself).
    pub fn nearest_distance(&self, site: &Point) -> Option<f64> {
        self.locations
            .values()
            .filter(|p| !p.approx_eq(site))
            .map(|p| p.distance(site))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Records the volume of a cell computed during this run.
    pub fn record_cell_volume(&mut self, volume: f64) {
        self.cell_volumes.push(volume);
        self.fresh_volumes.push(volume);
    }

    /// Snapshot for a parallel worker block: identical knowledge, empty
    /// delta log, so that [`History::absorb`] later merges back exactly what
    /// the block discovered.
    pub fn fork(&self) -> History {
        // Built by hand rather than `clone()` so the (potentially long)
        // delta log of the parent is never copied just to be thrown away.
        History {
            locations: self.locations.clone(),
            cell_volumes: self.cell_volumes.clone(),
            fresh_volumes: Vec::new(),
        }
    }

    /// Empties the delta log.
    ///
    /// Estimators call this on their long-lived top-level history at the end
    /// of a run: that history is only ever forked *from*, never absorbed
    /// into another one, so keeping the log would grow memory without bound
    /// across repeated `estimate`/`estimate_parallel` calls.
    pub fn discard_delta_log(&mut self) {
        self.fresh_volumes.clear();
    }

    /// Merges the knowledge a forked worker history gained back into `self`.
    ///
    /// Locations are inserted idempotently (a tuple's location never
    /// changes), and only the cell volumes recorded *after* the fork are
    /// replayed, so snapshot volumes are never double counted. Absorbing
    /// blocks in a fixed order keeps the merged state — and therefore every
    /// estimate derived from it — bit-identical across thread counts.
    pub fn absorb(&mut self, forked: &History) {
        for (id, location) in &forked.locations {
            self.locations.entry(*id).or_insert(*location);
        }
        for &volume in &forked.fresh_volumes {
            self.cell_volumes.push(volume);
            self.fresh_volumes.push(volume);
        }
    }

    /// Mean volume of the cells computed so far, if any.
    pub fn mean_cell_volume(&self) -> Option<f64> {
        if self.cell_volumes.count() == 0 {
            None
        } else {
            Some(self.cell_volumes.mean())
        }
    }

    /// Number of cell volumes recorded.
    pub fn cells_recorded(&self) -> u64 {
        self.cell_volumes.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent_and_lookup_works() {
        let mut h = History::new();
        assert!(h.is_empty());
        h.insert(3, Point::new(1.0, 1.0));
        h.insert(3, Point::new(9.0, 9.0)); // ignored: already known
        h.insert(5, Point::new(2.0, 2.0));
        assert_eq!(h.len(), 2);
        assert!(h.contains(3));
        assert!(!h.contains(4));
        assert_eq!(h.location_of(3), Some(Point::new(1.0, 1.0)));
        assert_eq!(h.location_of(99), None);
    }

    #[test]
    fn neighbors_are_sorted_and_limited() {
        let mut h = History::new();
        for i in 0..10u64 {
            h.insert(i, Point::new(i as f64 * 10.0, 0.0));
        }
        let site = Point::new(0.0, 0.0);
        let n = h.neighbors_of(&site, 3);
        assert_eq!(n.len(), 3);
        // The site itself (tuple 0 at the same location) is excluded.
        assert!(n.iter().all(|p| !p.approx_eq(&site)));
        assert!(n[0].distance(&site) <= n[1].distance(&site));
        assert!(n[1].distance(&site) <= n[2].distance(&site));
        assert!((n[0].x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_distance_excludes_self() {
        let mut h = History::new();
        let site = Point::new(5.0, 5.0);
        h.insert(1, site);
        assert!(h.nearest_distance(&site).is_none());
        h.insert(2, Point::new(8.0, 9.0));
        assert!((h.nearest_distance(&site).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fork_and_absorb_merge_only_fresh_knowledge() {
        let mut master = History::new();
        master.insert(1, Point::new(1.0, 0.0));
        master.record_cell_volume(10.0);

        // Two workers fork, learn different things, and are absorbed in
        // order.
        let mut a = master.fork();
        a.insert(2, Point::new(2.0, 0.0));
        a.record_cell_volume(20.0);
        let mut b = master.fork();
        b.insert(3, Point::new(3.0, 0.0));
        b.insert(1, Point::new(99.0, 99.0)); // ignored: already known
        b.record_cell_volume(30.0);

        master.absorb(&a);
        master.absorb(&b);
        assert_eq!(master.len(), 3);
        assert_eq!(master.location_of(1), Some(Point::new(1.0, 0.0)));
        assert_eq!(master.location_of(3), Some(Point::new(3.0, 0.0)));
        // Volumes: the snapshot volume 10 counted once, plus the two fresh
        // ones — never the forked copies of 10.
        assert_eq!(master.cells_recorded(), 3);
        assert!((master.mean_cell_volume().unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_is_transitive_through_chained_forks() {
        let mut master = History::new();
        master.record_cell_volume(1.0);
        let mut mid = master.fork();
        mid.record_cell_volume(2.0);
        let mut leaf = mid.fork();
        leaf.record_cell_volume(3.0);
        mid.absorb(&leaf);
        master.absorb(&mid);
        assert_eq!(master.cells_recorded(), 3);
        assert!((master.mean_cell_volume().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cell_volume_statistics() {
        let mut h = History::new();
        assert!(h.mean_cell_volume().is_none());
        h.record_cell_volume(10.0);
        h.record_cell_volume(30.0);
        assert_eq!(h.cells_recorded(), 2);
        assert!((h.mean_cell_volume().unwrap() - 20.0).abs() < 1e-12);
    }
}
