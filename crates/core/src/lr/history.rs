//! History of discovered tuples (paper §3.2.2) plus the shared cell cache.
//!
//! LBS databases such as Google Maps are static over the course of an
//! estimation run, so every tuple location discovered while computing one
//! Voronoi cell is free information for all later cells: starting the next
//! computation from the bisectors of already-known nearby tuples yields a
//! much tighter initial cell at zero query cost.
//!
//! [`History`] stores every `(tuple id, location)` pair ever returned by the
//! LR interface plus the volumes of the cells computed so far (the latter
//! feed the adaptive top-h selection threshold of §3.2.3).
//!
//! On top of the paper's history, this implementation keeps a **cell cache**
//! shared across samples: repeated samples frequently land in the cell of a
//! tuple whose exact top-h cell was already pinned down. An exact
//! (Theorem-1) exploration is a deterministic function of the site, the
//! level `h`, the region, and what the history knew when it started — the
//! seed-neighbour list and the nearest known distance — so a cache entry
//! stores that *seed fingerprint* together with the finished cell and the
//! exact sequence of vertex queries the exploration issued. A lookup whose
//! fingerprint matches can replay the stored queries (keeping the service
//! ledger, the history side-effects and therefore every downstream estimate
//! bit-identical to an uncached run) while skipping all of the geometry.
//! A fingerprint mismatch — the history learned a nearer tuple since the
//! entry was stored — simply falls through to a fresh exploration, which is
//! how entries are invalidated; [`History::version`] is bumped on every
//! genuinely new tuple as a cheap change signal for diagnostics and tests.
//!
//! ## The prefix certificate
//!
//! Requiring the seed list to match *exactly* turned out to discard almost
//! every stored entry: the history keeps learning tuples, so by the time a
//! sample lands on a cached site the neighbour list has usually grown — even
//! though every newly learned tuple is so far away that it could not have
//! touched the stored cell. The cache therefore also accepts a **certified
//! prefix** match: the stored seeds must be a proper prefix of the current
//! (ascending-distance) list, and every extra seed must lie farther than
//! `2 · cert_radius + CERT_SLACK` from the site, where
//! [`CellCacheEntry::cert_radius`] is the largest site-to-vertex distance any
//! round of the stored exploration ever exhibited. That is exactly the
//! security-radius certificate of [`lbs_geom::cell_engine`]: a fresh
//! exploration seeded with those extra tuples would prune (or identity-clip)
//! each of them in every round, reproducing the stored queries, cell and
//! history side-effects bit for bit. Misses are classified into
//! new-site / other-h / stale counters so `repro` can report *why* the cache
//! missed, not just how often.
//!
//! The history also owns the [`ClipScratch`] arena threaded through every
//! cell construction performed on its behalf ([`History::build_topk_cell`]),
//! so the per-sample hot loop reuses one set of buffers instead of
//! reallocating them per cell. The arena carries no state between builds
//! (and `ClipScratch::clone` is empty), so forks stay bit-identical.
//!
//! The adaptive-h rule of §3.2.3 computes history-only volume bounds `λ_h`
//! for every returned tuple of every sample; those are cached the same way
//! (fingerprint = the neighbour list the bound was computed from) in a
//! second map, without any query log since no queries are involved.
//!
//! Locations live in a `BTreeMap` rather than a `HashMap` on purpose: the
//! neighbour lists handed to the geometry code are built by iterating this
//! map, and estimation results must be bit-identical across runs and across
//! [`crate::driver::SampleDriver`] thread counts — which rules out the
//! randomised iteration order of `HashMap`.
//!
//! For the parallel sample driver, [`History::fork`] hands each worker block
//! a private snapshot and [`History::absorb`] merges what the block learned
//! back into the master copy in a deterministic order. Cache entries ride
//! along: forks share the stored entries cheaply through `Arc`, and absorbed
//! entries overwrite in chunk order. Which entries a fork happens to hold
//! can vary with the thread count, but that can never change an estimate —
//! a hit replays exactly what the corresponding miss would have computed.

use std::collections::BTreeMap;
use std::sync::Arc;

use lbs_data::TupleId;
use lbs_geom::{
    sort_by_distance, top_k_cell_pruned_with, ClipScratch, Point, Rect, TopKCell, CERT_SLACK,
};

use crate::engine_stats::EngineReport;
use crate::stats::RunningStats;

/// A finished exact cell exploration, keyed by `(site id, h)` and validated
/// by the seed fingerprint captured when the exploration started.
#[derive(Clone, Debug)]
pub struct CellCacheEntry {
    /// Region the exploration was clipped to.
    pub region: Rect,
    /// The history neighbours that seeded the exploration (empty when the
    /// §3.2.2 history seeding was disabled).
    pub seeds: Vec<Point>,
    /// Nearest known distance at exploration start (drives the §3.2.1
    /// fast-initialization box; `None` when fast-init was disabled).
    pub nearest: Option<f64>,
    /// Largest site-to-vertex distance any round of the exploration
    /// exhibited. Seeds farther than `2 · cert_radius + CERT_SLACK` are
    /// certified unable to alter the exploration (see the module docs), which
    /// is what lets a grown seed list still hit this entry.
    pub cert_radius: f64,
    /// The exact top-h cell the exploration produced.
    pub cell: TopKCell,
    /// Every vertex query the exploration issued, in order. Replayed on a
    /// hit so the service ledger and history stay bit-identical.
    pub queries: Vec<Point>,
    /// Theorem-1 rounds the exploration ran.
    pub rounds: usize,
}

/// A cached adaptive-h volume bound λ_h.
#[derive(Clone, Debug)]
struct LambdaEntry {
    region: Rect,
    seeds: Vec<Point>,
    /// Largest site-to-vertex distance of the λ cell (the bound is a single
    /// pruned construction, so one round's radius is the whole certificate).
    cert_radius: f64,
    area: f64,
}

/// Accumulated knowledge about the hidden database.
#[derive(Clone, Debug, Default)]
pub struct History {
    locations: BTreeMap<TupleId, Point>,
    cell_volumes: RunningStats,
    /// Cell volumes recorded since this history was created or forked; the
    /// delta log that [`History::absorb`] replays into the master copy.
    fresh_volumes: Vec<f64>,
    /// Bumped whenever a genuinely new tuple location is inserted.
    version: u64,
    cells: BTreeMap<(TupleId, usize), Arc<CellCacheEntry>>,
    lambdas: BTreeMap<(TupleId, usize), Arc<LambdaEntry>>,
    stats: EngineReport,
    /// Reusable buffers for every cell construction performed through this
    /// history ([`History::build_topk_cell`]). Plain workspace: carries no
    /// state between builds, and its `Clone` is deliberately empty, so the
    /// derived `History::clone` (checkpointing) stays cheap and forks stay
    /// bit-identical to fresh-allocation runs.
    scratch: ClipScratch,
}

/// `true` when `stored` is a non-empty proper prefix of `current` and every
/// extra seed is certified too far from `site` to have participated in the
/// stored construction: farther than `2 · cert_radius + CERT_SLACK`, the same
/// security-radius test [`lbs_geom::cell_engine`] prunes candidates with.
///
/// The empty stored list is excluded because an exploration that started with
/// *no* seeds enabled the §3.2.1 fake-corner round, which a seeded
/// exploration skips — their query logs genuinely differ.
fn prefix_certified(site: &Point, stored: &[Point], current: &[Point], cert_radius: f64) -> bool {
    if stored.is_empty() || current.len() <= stored.len() || current[..stored.len()] != stored[..] {
        return false;
    }
    current[stored.len()..]
        .iter()
        .all(|p| p.distance(site) > 2.0 * cert_radius + CERT_SLACK)
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Number of distinct tuples whose locations are known.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` when no tuple has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Known-set version: bumped once per genuinely new tuple location.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Records a tuple location (idempotent).
    pub fn insert(&mut self, id: TupleId, location: Point) {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.locations.entry(id) {
            slot.insert(location);
            self.version += 1;
        }
    }

    /// The known location of a tuple, if any.
    pub fn location_of(&self, id: TupleId) -> Option<Point> {
        self.locations.get(&id).copied()
    }

    /// `true` when the tuple has been seen before.
    pub fn contains(&self, id: TupleId) -> bool {
        self.locations.contains_key(&id)
    }

    /// The locations of the `limit` known tuples nearest to `site`,
    /// excluding any tuple at (essentially) the same location as `site`
    /// itself, in ascending distance order with a deterministic tie-break.
    ///
    /// These are the "historic tuples" fed into the initial cell of a new
    /// computation (Algorithm 3). Limiting the count keeps the geometry work
    /// bounded: faraway tuples cannot contribute edges to the cell anyway —
    /// and the ascending order is exactly what the pruned cell construction
    /// of [`lbs_geom::cell_engine`] needs.
    pub fn neighbors_of(&self, site: &Point, limit: usize) -> Vec<Point> {
        let mut pts: Vec<Point> = self
            .locations
            .values()
            .copied()
            .filter(|p| !p.approx_eq(site))
            .collect();
        sort_by_distance(site, &mut pts);
        pts.truncate(limit);
        pts
    }

    /// Distance from `site` to the nearest known tuple (other than itself).
    pub fn nearest_distance(&self, site: &Point) -> Option<f64> {
        self.locations
            .values()
            .filter(|p| !p.approx_eq(site))
            .map(|p| p.distance(site))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Records the volume of a cell computed during this run.
    pub fn record_cell_volume(&mut self, volume: f64) {
        self.cell_volumes.push(volume);
        self.fresh_volumes.push(volume);
    }

    /// Looks up a cached exact exploration of `(site_id, h)` whose seed
    /// fingerprint matches the current history state — exactly, or up to
    /// certified-far extra seeds (see [`prefix_certified`]) — counting the
    /// hit or miss and, on a miss, its cause.
    pub(crate) fn cell_cache_get(
        &mut self,
        site_id: TupleId,
        site: &Point,
        h: usize,
        region: &Rect,
        seeds: &[Point],
        nearest: Option<f64>,
    ) -> Option<Arc<CellCacheEntry>> {
        if let Some(entry) = self.cells.get(&(site_id, h)) {
            if entry.region == *region && entry.nearest == nearest {
                if entry.seeds == seeds {
                    self.stats.cache_hits += 1;
                    return Some(Arc::clone(entry));
                }
                if prefix_certified(site, &entry.seeds, seeds, entry.cert_radius) {
                    self.stats.cache_hits += 1;
                    self.stats.cache_prefix_hits += 1;
                    return Some(Arc::clone(entry));
                }
            }
            self.stats.cache_misses += 1;
            self.stats.cache_miss_stale += 1;
            return None;
        }
        self.stats.cache_misses += 1;
        // Distinguish "never explored this site" from "explored it, but at a
        // different h": the latter is a capacity/keying question, the former
        // is an inevitable cold miss.
        let mut levels = self.cells.range((site_id, 0)..=(site_id, usize::MAX));
        if levels.next().is_some() {
            self.stats.cache_miss_other_h += 1;
        } else {
            self.stats.cache_miss_new_site += 1;
        }
        None
    }

    /// Stores a finished exact exploration for later replay.
    pub(crate) fn cell_cache_put(&mut self, site_id: TupleId, h: usize, entry: CellCacheEntry) {
        self.cells.insert((site_id, h), Arc::new(entry));
    }

    /// Number of stored cell explorations (for tests and diagnostics).
    pub fn cached_cells(&self) -> usize {
        self.cells.len()
    }

    /// Looks up a cached λ_h volume bound — exact seed match or certified
    /// prefix, like [`History::cell_cache_get`] — counting the hit or miss.
    pub(crate) fn lambda_cache_get(
        &mut self,
        site_id: TupleId,
        site: &Point,
        h: usize,
        region: &Rect,
        seeds: &[Point],
    ) -> Option<f64> {
        if let Some(entry) = self.lambdas.get(&(site_id, h)) {
            if entry.region == *region {
                if entry.seeds == seeds {
                    self.stats.lambda_hits += 1;
                    return Some(entry.area);
                }
                if prefix_certified(site, &entry.seeds, seeds, entry.cert_radius) {
                    self.stats.lambda_hits += 1;
                    self.stats.lambda_prefix_hits += 1;
                    return Some(entry.area);
                }
            }
        }
        self.stats.lambda_misses += 1;
        None
    }

    /// Stores a λ_h volume bound with its certificate radius.
    pub(crate) fn lambda_cache_put(
        &mut self,
        site_id: TupleId,
        h: usize,
        region: Rect,
        seeds: Vec<Point>,
        cert_radius: f64,
        area: f64,
    ) {
        self.lambdas.insert(
            (site_id, h),
            Arc::new(LambdaEntry {
                region,
                seeds,
                cert_radius,
                area,
            }),
        );
    }

    /// Builds a top-h cell through the pruned engine using this history's
    /// scratch arena and records the build counters.
    ///
    /// `ordered_others` must be in ascending distance from `site` (what
    /// [`History::neighbors_of`] and [`lbs_geom::sort_by_distance`] produce).
    /// Bit-identical to a fresh-allocation [`lbs_geom::top_k_cell_pruned`]
    /// call; the arena only removes the per-build heap traffic.
    pub fn build_topk_cell(
        &mut self,
        site: &Point,
        ordered_others: &[Point],
        h: usize,
        region: &Rect,
        prune: bool,
    ) -> TopKCell {
        let (cell, build) =
            top_k_cell_pruned_with(&mut self.scratch, site, ordered_others, h, region, prune);
        self.stats.record_build(&build);
        cell
    }

    /// The engine counters accumulated on this history.
    pub fn engine_report(&self) -> EngineReport {
        self.stats
    }

    /// Mutable access to the engine counters (for the explorer).
    pub(crate) fn engine_mut(&mut self) -> &mut EngineReport {
        &mut self.stats
    }

    /// Snapshot for a parallel worker block: identical knowledge, empty
    /// delta log and zeroed counters, so that [`History::absorb`] later
    /// merges back exactly what the block discovered.
    pub fn fork(&self) -> History {
        // Built by hand rather than `clone()` so the (potentially long)
        // delta log of the parent is never copied just to be thrown away.
        History {
            locations: self.locations.clone(),
            cell_volumes: self.cell_volumes.clone(),
            fresh_volumes: Vec::new(),
            version: self.version,
            cells: self.cells.clone(),
            lambdas: self.lambdas.clone(),
            stats: EngineReport::default(),
            // Each fork gets its own (cold) arena: warmed capacity must not
            // cross thread boundaries, and the buffers hold no state anyway.
            scratch: ClipScratch::new(),
        }
    }

    /// Empties the delta log.
    ///
    /// Estimators call this on their long-lived top-level history at the end
    /// of a run: that history is only ever forked *from*, never absorbed
    /// into another one, so keeping the log would grow memory without bound
    /// across repeated `estimate`/`estimate_parallel` calls.
    pub fn discard_delta_log(&mut self) {
        self.fresh_volumes.clear();
    }

    /// Merges the knowledge a forked worker history gained back into `self`.
    ///
    /// Locations are inserted idempotently (a tuple's location never
    /// changes), and only the cell volumes recorded *after* the fork are
    /// replayed, so snapshot volumes are never double counted. Absorbing
    /// blocks in a fixed order keeps the merged state — and therefore every
    /// estimate derived from it — bit-identical across thread counts. Cache
    /// entries overwrite (later blocks explored with fresher knowledge);
    /// entry contents can depend on scheduling, but a hit always replays
    /// exactly what the miss would have computed, so estimates cannot.
    pub fn absorb(&mut self, forked: &History) {
        for (id, location) in &forked.locations {
            self.insert(*id, *location);
        }
        for &volume in &forked.fresh_volumes {
            self.cell_volumes.push(volume);
            self.fresh_volumes.push(volume);
        }
        for (key, entry) in &forked.cells {
            self.cells.insert(*key, Arc::clone(entry));
        }
        for (key, entry) in &forked.lambdas {
            self.lambdas.insert(*key, Arc::clone(entry));
        }
        self.stats.add(&forked.stats);
    }

    /// Mean volume of the cells computed so far, if any.
    pub fn mean_cell_volume(&self) -> Option<f64> {
        if self.cell_volumes.count() == 0 {
            None
        } else {
            Some(self.cell_volumes.mean())
        }
    }

    /// Number of cell volumes recorded.
    pub fn cells_recorded(&self) -> u64 {
        self.cell_volumes.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent_and_lookup_works() {
        let mut h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.version(), 0);
        h.insert(3, Point::new(1.0, 1.0));
        h.insert(3, Point::new(9.0, 9.0)); // ignored: already known
        h.insert(5, Point::new(2.0, 2.0));
        assert_eq!(h.len(), 2);
        assert_eq!(h.version(), 2, "only genuinely new tuples bump the version");
        assert!(h.contains(3));
        assert!(!h.contains(4));
        assert_eq!(h.location_of(3), Some(Point::new(1.0, 1.0)));
        assert_eq!(h.location_of(99), None);
    }

    #[test]
    fn neighbors_are_sorted_and_limited() {
        let mut h = History::new();
        for i in 0..10u64 {
            h.insert(i, Point::new(i as f64 * 10.0, 0.0));
        }
        let site = Point::new(0.0, 0.0);
        let n = h.neighbors_of(&site, 3);
        assert_eq!(n.len(), 3);
        // The site itself (tuple 0 at the same location) is excluded.
        assert!(n.iter().all(|p| !p.approx_eq(&site)));
        assert!(n[0].distance(&site) <= n[1].distance(&site));
        assert!(n[1].distance(&site) <= n[2].distance(&site));
        assert!((n[0].x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_distance_excludes_self() {
        let mut h = History::new();
        let site = Point::new(5.0, 5.0);
        h.insert(1, site);
        assert!(h.nearest_distance(&site).is_none());
        h.insert(2, Point::new(8.0, 9.0));
        assert!((h.nearest_distance(&site).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fork_and_absorb_merge_only_fresh_knowledge() {
        let mut master = History::new();
        master.insert(1, Point::new(1.0, 0.0));
        master.record_cell_volume(10.0);

        // Two workers fork, learn different things, and are absorbed in
        // order.
        let mut a = master.fork();
        a.insert(2, Point::new(2.0, 0.0));
        a.record_cell_volume(20.0);
        let mut b = master.fork();
        b.insert(3, Point::new(3.0, 0.0));
        b.insert(1, Point::new(99.0, 99.0)); // ignored: already known
        b.record_cell_volume(30.0);

        master.absorb(&a);
        master.absorb(&b);
        assert_eq!(master.len(), 3);
        assert_eq!(master.location_of(1), Some(Point::new(1.0, 0.0)));
        assert_eq!(master.location_of(3), Some(Point::new(3.0, 0.0)));
        // Volumes: the snapshot volume 10 counted once, plus the two fresh
        // ones — never the forked copies of 10.
        assert_eq!(master.cells_recorded(), 3);
        assert!((master.mean_cell_volume().unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_is_transitive_through_chained_forks() {
        let mut master = History::new();
        master.record_cell_volume(1.0);
        let mut mid = master.fork();
        mid.record_cell_volume(2.0);
        let mut leaf = mid.fork();
        leaf.record_cell_volume(3.0);
        mid.absorb(&leaf);
        master.absorb(&mid);
        assert_eq!(master.cells_recorded(), 3);
        assert!((master.mean_cell_volume().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cell_volume_statistics() {
        let mut h = History::new();
        assert!(h.mean_cell_volume().is_none());
        h.record_cell_volume(10.0);
        h.record_cell_volume(30.0);
        assert_eq!(h.cells_recorded(), 2);
        assert!((h.mean_cell_volume().unwrap() - 20.0).abs() < 1e-12);
    }

    fn dummy_cell(region: &Rect) -> TopKCell {
        lbs_geom::top_k_cell(&Point::new(5.0, 5.0), &[Point::new(7.0, 5.0)], 1, region)
    }

    #[test]
    fn cell_cache_hits_only_on_matching_fingerprint() {
        let region = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let site = Point::new(5.0, 5.0);
        let mut h = History::new();
        let seeds = vec![Point::new(7.0, 5.0)];
        h.cell_cache_put(
            42,
            1,
            CellCacheEntry {
                region,
                seeds: seeds.clone(),
                nearest: Some(2.0),
                cert_radius: 8.0,
                cell: dummy_cell(&region),
                queries: vec![Point::new(1.0, 1.0)],
                rounds: 2,
            },
        );
        assert_eq!(h.cached_cells(), 1);
        // Exact fingerprint → hit.
        assert!(h
            .cell_cache_get(42, &site, 1, &region, &seeds, Some(2.0))
            .is_some());
        // Any deviation → miss (stale entries are bypassed, not returned).
        assert!(h
            .cell_cache_get(42, &site, 2, &region, &seeds, Some(2.0))
            .is_none());
        assert!(h
            .cell_cache_get(42, &site, 1, &region, &[], Some(2.0))
            .is_none());
        assert!(h
            .cell_cache_get(42, &site, 1, &region, &seeds, None)
            .is_none());
        let other = Rect::from_bounds(0.0, 0.0, 5.0, 5.0);
        assert!(h
            .cell_cache_get(42, &site, 1, &other, &seeds, Some(2.0))
            .is_none());
        let report = h.engine_report();
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cache_misses, 4);
        // Cause breakdown: the h = 2 lookup found the site stored only at
        // other levels; the three fingerprint deviations are stale.
        assert_eq!(report.cache_miss_other_h, 1);
        assert_eq!(report.cache_miss_stale, 3);
        assert_eq!(report.cache_miss_new_site, 0);
        assert_eq!(report.cache_prefix_hits, 0);
    }

    #[test]
    fn cell_cache_miss_causes_distinguish_new_sites() {
        let region = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let site = Point::new(5.0, 5.0);
        let mut h = History::new();
        assert!(h.cell_cache_get(99, &site, 1, &region, &[], None).is_none());
        let report = h.engine_report();
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_miss_new_site, 1);
        assert_eq!(report.cache_miss_other_h + report.cache_miss_stale, 0);
    }

    #[test]
    fn cell_cache_accepts_certified_prefix_extensions() {
        let region = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        let site = Point::new(5.0, 5.0);
        let mut h = History::new();
        let seeds = vec![Point::new(7.0, 5.0), Point::new(5.0, 9.0)];
        h.cell_cache_put(
            42,
            1,
            CellCacheEntry {
                region,
                seeds: seeds.clone(),
                nearest: Some(2.0),
                cert_radius: 10.0,
                cell: dummy_cell(&region),
                queries: vec![],
                rounds: 1,
            },
        );
        // Extra seed at distance 60 > 2 · 10 + slack: certified, still a hit.
        let mut grown = seeds.clone();
        grown.push(Point::new(65.0, 5.0));
        assert!(h
            .cell_cache_get(42, &site, 1, &region, &grown, Some(2.0))
            .is_some());
        // Extra seed at distance 15 < 2 · 10: could have touched the stored
        // exploration — stale miss.
        let mut near = seeds.clone();
        near.push(Point::new(20.0, 5.0));
        assert!(h
            .cell_cache_get(42, &site, 1, &region, &near, Some(2.0))
            .is_none());
        // Reordered (not a prefix) → stale miss even if far.
        let reordered = vec![seeds[1], seeds[0], Point::new(65.0, 5.0)];
        assert!(h
            .cell_cache_get(42, &site, 1, &region, &reordered, Some(2.0))
            .is_none());
        let report = h.engine_report();
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cache_prefix_hits, 1);
        assert_eq!(report.cache_miss_stale, 2);
    }

    #[test]
    fn cell_cache_empty_seed_entries_require_exact_match() {
        // An exploration that started with no seeds ran the fake-corner
        // round; a seeded lookup must never replay it, however far the seeds.
        let region = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        let site = Point::new(5.0, 5.0);
        let mut h = History::new();
        h.cell_cache_put(
            42,
            1,
            CellCacheEntry {
                region,
                seeds: vec![],
                nearest: None,
                cert_radius: 1.0,
                cell: dummy_cell(&region),
                queries: vec![],
                rounds: 1,
            },
        );
        let far = vec![Point::new(95.0, 95.0)];
        assert!(h
            .cell_cache_get(42, &site, 1, &region, &far, None)
            .is_none());
        assert!(h.cell_cache_get(42, &site, 1, &region, &[], None).is_some());
    }

    #[test]
    fn lambda_cache_round_trip() {
        let region = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let site = Point::new(0.0, 0.0);
        let mut h = History::new();
        let seeds = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        assert!(h.lambda_cache_get(7, &site, 2, &region, &seeds).is_none());
        h.lambda_cache_put(7, 2, region, seeds.clone(), 3.0, 12.5);
        assert_eq!(h.lambda_cache_get(7, &site, 2, &region, &seeds), Some(12.5));
        // Seed shrink invalidates (stored is not a prefix of current).
        assert!(h
            .lambda_cache_get(7, &site, 2, &region, &seeds[..1])
            .is_none());
        // Certified-far extension still hits.
        let mut grown = seeds.clone();
        grown.push(Point::new(9.0, 9.0)); // distance ~12.7 > 2 · 3 + slack
        assert_eq!(h.lambda_cache_get(7, &site, 2, &region, &grown), Some(12.5));
        let report = h.engine_report();
        assert_eq!(report.lambda_hits, 2);
        assert_eq!(report.lambda_prefix_hits, 1);
        assert_eq!(report.lambda_misses, 2);
    }

    #[test]
    fn fork_shares_cache_and_zeroes_stats() {
        let region = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let mut master = History::new();
        master.cell_cache_put(
            1,
            1,
            CellCacheEntry {
                region,
                seeds: vec![],
                nearest: None,
                cert_radius: 1.0,
                cell: dummy_cell(&region),
                queries: vec![],
                rounds: 1,
            },
        );
        master.engine_mut().cells_built = 5;
        let mut fork = master.fork();
        assert_eq!(fork.cached_cells(), 1);
        assert_eq!(fork.engine_report().cells_built, 0);
        fork.engine_mut().cells_built = 2;
        fork.cell_cache_put(
            2,
            1,
            CellCacheEntry {
                region,
                seeds: vec![],
                nearest: None,
                cert_radius: 1.0,
                cell: dummy_cell(&region),
                queries: vec![],
                rounds: 1,
            },
        );
        master.absorb(&fork);
        assert_eq!(master.cached_cells(), 2);
        assert_eq!(master.engine_report().cells_built, 7);
    }
}
