//! History of discovered tuples (paper §3.2.2).
//!
//! LBS databases such as Google Maps are static over the course of an
//! estimation run, so every tuple location discovered while computing one
//! Voronoi cell is free information for all later cells: starting the next
//! computation from the bisectors of already-known nearby tuples yields a
//! much tighter initial cell at zero query cost.
//!
//! [`History`] stores every `(tuple id, location)` pair ever returned by the
//! LR interface plus the volumes of the cells computed so far (the latter
//! feed the adaptive top-h selection threshold of §3.2.3).

use std::collections::HashMap;

use lbs_data::TupleId;
use lbs_geom::Point;

use crate::stats::RunningStats;

/// Accumulated knowledge about the hidden database.
#[derive(Clone, Debug, Default)]
pub struct History {
    locations: HashMap<TupleId, Point>,
    cell_volumes: RunningStats,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Number of distinct tuples whose locations are known.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` when no tuple has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Records a tuple location (idempotent).
    pub fn insert(&mut self, id: TupleId, location: Point) {
        self.locations.entry(id).or_insert(location);
    }

    /// The known location of a tuple, if any.
    pub fn location_of(&self, id: TupleId) -> Option<Point> {
        self.locations.get(&id).copied()
    }

    /// `true` when the tuple has been seen before.
    pub fn contains(&self, id: TupleId) -> bool {
        self.locations.contains_key(&id)
    }

    /// The locations of the `limit` known tuples nearest to `site`,
    /// excluding any tuple at (essentially) the same location as `site`
    /// itself.
    ///
    /// These are the "historic tuples" fed into the initial cell of a new
    /// computation (Algorithm 3). Limiting the count keeps the geometry work
    /// bounded: faraway tuples cannot contribute edges to the cell anyway.
    pub fn neighbors_of(&self, site: &Point, limit: usize) -> Vec<Point> {
        let mut pts: Vec<Point> = self
            .locations
            .values()
            .copied()
            .filter(|p| !p.approx_eq(site))
            .collect();
        pts.sort_by(|a, b| {
            a.distance_sq(site)
                .partial_cmp(&b.distance_sq(site))
                .unwrap()
        });
        pts.truncate(limit);
        pts
    }

    /// Distance from `site` to the nearest known tuple (other than itself).
    pub fn nearest_distance(&self, site: &Point) -> Option<f64> {
        self.locations
            .values()
            .filter(|p| !p.approx_eq(site))
            .map(|p| p.distance(site))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Records the volume of a cell computed during this run.
    pub fn record_cell_volume(&mut self, volume: f64) {
        self.cell_volumes.push(volume);
    }

    /// Mean volume of the cells computed so far, if any.
    pub fn mean_cell_volume(&self) -> Option<f64> {
        if self.cell_volumes.count() == 0 {
            None
        } else {
            Some(self.cell_volumes.mean())
        }
    }

    /// Number of cell volumes recorded.
    pub fn cells_recorded(&self) -> u64 {
        self.cell_volumes.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent_and_lookup_works() {
        let mut h = History::new();
        assert!(h.is_empty());
        h.insert(3, Point::new(1.0, 1.0));
        h.insert(3, Point::new(9.0, 9.0)); // ignored: already known
        h.insert(5, Point::new(2.0, 2.0));
        assert_eq!(h.len(), 2);
        assert!(h.contains(3));
        assert!(!h.contains(4));
        assert_eq!(h.location_of(3), Some(Point::new(1.0, 1.0)));
        assert_eq!(h.location_of(99), None);
    }

    #[test]
    fn neighbors_are_sorted_and_limited() {
        let mut h = History::new();
        for i in 0..10u64 {
            h.insert(i, Point::new(i as f64 * 10.0, 0.0));
        }
        let site = Point::new(0.0, 0.0);
        let n = h.neighbors_of(&site, 3);
        assert_eq!(n.len(), 3);
        // The site itself (tuple 0 at the same location) is excluded.
        assert!(n.iter().all(|p| !p.approx_eq(&site)));
        assert!(n[0].distance(&site) <= n[1].distance(&site));
        assert!(n[1].distance(&site) <= n[2].distance(&site));
        assert!((n[0].x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_distance_excludes_self() {
        let mut h = History::new();
        let site = Point::new(5.0, 5.0);
        h.insert(1, site);
        assert!(h.nearest_distance(&site).is_none());
        h.insert(2, Point::new(8.0, 9.0));
        assert!((h.nearest_distance(&site).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cell_volume_statistics() {
        let mut h = History::new();
        assert!(h.mean_cell_volume().is_none());
        h.record_cell_volume(10.0);
        h.record_cell_volume(30.0);
        assert_eq!(h.cells_recorded(), 2);
        assert!((h.mean_cell_volume().unwrap() - 20.0).abs() < 1e-12);
    }
}
