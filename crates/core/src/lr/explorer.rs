//! Exact (top-h) Voronoi-cell computation through the LR-LBS interface.
//!
//! This module implements the Theorem-1 loop of paper §3.1 together with the
//! error-reduction machinery of §3.2:
//!
//! * start from the tuples already known (history, §3.2.2) plus optional fake
//!   corner tuples (faster initialization, §3.2.1),
//! * repeatedly compute the tentative top-h cell of the target tuple from the
//!   known locations and issue one kNN query per untested vertex,
//! * every query either confirms a vertex (no unseen tuple returned) or
//!   reveals new tuples that shrink the tentative cell,
//! * stop when every vertex is confirmed — the tentative cell then *is* the
//!   true cell (Theorem 1) — or escape early with the unbiased Monte-Carlo
//!   device of §3.2.4 when the remaining edges would be too expensive to pin
//!   down, optionally skipping trial queries that a disk-union lower bound
//!   already answers.

use std::collections::{BTreeMap, HashSet};

use rand::Rng;

use lbs_data::TupleId;
use lbs_geom::{disk_covered_by_union, sort_by_distance, Circle, Point, Rect, TopKCell};
use lbs_service::{LbsBackend, QueryError};

use super::history::{CellCacheEntry, History};

/// Configuration of one cell exploration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Use fake corner tuples for the first round (§3.2.1).
    pub use_fast_init: bool,
    /// Seed the known set from history (§3.2.2).
    pub use_history: bool,
    /// Allow the Monte-Carlo escape (§3.2.4).
    pub use_mc_bounds: bool,
    /// Half-width of the fake-tuple box around the target; `None` derives it
    /// from history (three times the nearest known distance) or falls back to
    /// 2 % of the bounding-box diagonal.
    pub fast_init_half_width: Option<f64>,
    /// How many known tuples (nearest first) seed the computation.
    pub history_neighbor_limit: usize,
    /// Hard cap on Theorem-1 rounds before forcing the Monte-Carlo escape.
    pub max_rounds: usize,
    /// Trigger the Monte-Carlo escape when more than this many untested
    /// vertices remain after the second round.
    pub mc_vertex_threshold: usize,
    /// Trigger the escape when a full round shrinks the cell volume by less
    /// than this factor (e.g. 0.02 = less than 2 %).
    pub mc_min_shrink: f64,
    /// Safety cap on Monte-Carlo trials.
    pub max_mc_trials: u64,
    /// Stop each cell construction at the security-radius certificate
    /// instead of clipping against every known tuple. Pruned and unpruned
    /// constructions are byte-identical (see [`lbs_geom::cell_engine`]);
    /// the flag exists so the equivalence is testable end to end.
    pub use_pruned_cells: bool,
    /// Replay finished exact explorations from the [`History`] cell cache.
    /// A replay issues the same queries and leaves the same state as a
    /// fresh exploration, so estimates are byte-identical either way.
    pub use_cell_cache: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            use_fast_init: true,
            use_history: true,
            use_mc_bounds: true,
            fast_init_half_width: None,
            history_neighbor_limit: 32,
            max_rounds: 64,
            mc_vertex_threshold: 14,
            mc_min_shrink: 0.02,
            max_mc_trials: 4_000,
            use_pruned_cells: true,
            use_cell_cache: true,
        }
    }
}

impl ExploreConfig {
    /// A configuration with every error-reduction technique disabled — the
    /// plain Algorithm-1 baseline used by the Figure 20 ablation.
    pub fn plain() -> Self {
        ExploreConfig {
            use_fast_init: false,
            use_history: false,
            use_mc_bounds: false,
            ..ExploreConfig::default()
        }
    }
}

/// How the cell volume was established.
#[derive(Clone, Debug)]
pub enum CellEstimate {
    /// The cell was computed exactly: every vertex passed the Theorem-1 test.
    Exact {
        /// The exact top-h cell.
        cell: TopKCell,
    },
    /// The exploration escaped early: `bounding_cell` is a superset of the
    /// true cell and `trials` is the number of uniform trials inside it that
    /// were needed to hit the true cell (an unbiased estimator of the volume
    /// ratio, §3.2.4).
    MonteCarlo {
        /// The bounding (superset) cell at the time of the escape.
        bounding_cell: TopKCell,
        /// Number of Monte-Carlo trials until a hit.
        trials: u64,
    },
}

impl CellEstimate {
    /// For the uniform sampling design, the unbiased estimate of the inverse
    /// selection probability `|V_0| / |V_h(t)|`.
    pub fn inverse_probability_uniform(&self, region: &Rect) -> f64 {
        match self {
            CellEstimate::Exact { cell } => {
                if cell.area <= f64::EPSILON {
                    0.0
                } else {
                    region.area() / cell.area
                }
            }
            CellEstimate::MonteCarlo {
                bounding_cell,
                trials,
            } => {
                if bounding_cell.area <= f64::EPSILON {
                    0.0
                } else {
                    *trials as f64 * region.area() / bounding_cell.area
                }
            }
        }
    }

    /// The exact cell when available.
    pub fn exact_cell(&self) -> Option<&TopKCell> {
        match self {
            CellEstimate::Exact { cell } => Some(cell),
            CellEstimate::MonteCarlo { .. } => None,
        }
    }
}

/// Result of one cell exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// The volume estimate (exact or Monte-Carlo).
    pub estimate: CellEstimate,
    /// kNN queries spent on this exploration.
    pub queries_used: u64,
    /// Theorem-1 rounds executed.
    pub rounds: usize,
    /// Number of Monte-Carlo trial points answered by the lower bound
    /// without issuing a query.
    pub lower_bound_hits: u64,
}

/// Key for deduplicating query locations (vertices are often shared between
/// rounds up to floating point noise).
fn quantize(p: &Point) -> (i64, i64) {
    ((p.x * 1e6).round() as i64, (p.y * 1e6).round() as i64)
}

/// Explores the top-`h` Voronoi cell of tuple `site_id` located at `site`
/// through the LR interface `service`, clipped to `region`.
///
/// Every tuple returned by any query issued here is recorded into `history`.
/// The function returns the volume estimate plus the query cost; it never
/// returns a biased volume — when it cannot afford exactness it switches to
/// the unbiased Monte-Carlo escape instead.
#[allow(clippy::too_many_arguments)] // the paper's Algorithm 2 signature: site, level, region, state
pub fn explore_cell<S: LbsBackend + ?Sized, R: Rng>(
    service: &S,
    site_id: TupleId,
    site: Point,
    h: usize,
    region: &Rect,
    history: &mut History,
    config: &ExploreConfig,
    rng: &mut R,
) -> Result<ExploreOutcome, QueryError> {
    let mut queries_used: u64 = 0;

    // Seed fingerprint: everything the exploration reads from the history.
    // An exact exploration is a deterministic function of (site, h, region,
    // seeds, nearest), which is what makes the cell cache replay sound.
    let seeds: Vec<Point> = if config.use_history {
        history.neighbors_of(&site, config.history_neighbor_limit)
    } else {
        Vec::new()
    };
    let nearest = if config.use_fast_init {
        history.nearest_distance(&site)
    } else {
        None
    };

    if config.use_cell_cache {
        if let Some(entry) = history.cell_cache_get(site_id, &site, h, region, &seeds, nearest) {
            // Replay: issue the recorded queries so the service ledger, the
            // budget accounting and the history side-effects stay
            // bit-identical to a fresh exploration, then hand back the
            // stored cell without redoing any geometry.
            history.insert(site_id, site);
            for q in entry.queries.iter() {
                let resp = service.query(q)?;
                queries_used += 1;
                for r in resp.results.iter() {
                    if let Some(loc) = r.location {
                        history.insert(r.id, loc);
                    }
                }
            }
            history.engine_mut().replayed_queries += queries_used;
            history.record_cell_volume(entry.cell.area);
            return Ok(ExploreOutcome {
                estimate: CellEstimate::Exact {
                    cell: entry.cell.clone(),
                },
                queries_used,
                rounds: entry.rounds,
                lower_bound_hits: 0,
            });
        }
    }

    // BTreeMap, not HashMap: `others` below is built by iterating this map
    // and feeds the geometry, so the iteration order must be deterministic
    // for estimates to be bit-identical across runs and thread counts.
    let mut known: BTreeMap<TupleId, Point> = BTreeMap::new();
    known.insert(site_id, site);
    history.insert(site_id, site);

    if config.use_history {
        for p in seeds.iter() {
            // Ids are irrelevant for geometry; use a synthetic negative key
            // space to avoid colliding with real ids (real ids are re-added
            // when the tuples are returned by queries).
            let key = u64::MAX - known.len() as u64;
            known.insert(key, *p);
        }
    }

    // lbs-lint: allow(hashmap-iter, reason = "dedup membership set (contains/insert); never iterated")
    let mut queried: HashSet<(i64, i64)> = HashSet::new();
    let mut query_log: Vec<Point> = Vec::new();
    let mut confirmed_vertices: Vec<Point> = Vec::new();
    let mut prev_volume = f64::INFINITY;
    let mut rounds = 0usize;
    let mut fakes: Vec<Point> = Vec::new();
    // Largest site-to-vertex distance any round exhibits: the certificate
    // radius stored with the finished entry (see the history module docs).
    let mut cert_radius = 0.0_f64;
    // Per-round workspaces, hoisted so the round loop reuses their capacity.
    let mut others: Vec<Point> = Vec::new();
    let mut pending: Vec<Point> = Vec::new();

    if config.use_fast_init && known.len() <= 1 {
        let half = config
            .fast_init_half_width
            .unwrap_or_else(|| nearest.map(|d| 3.0 * d).unwrap_or(region.diagonal() * 0.02));
        fakes = Rect::centered(site, half.max(1e-6)).corners().to_vec();
    }

    loop {
        rounds += 1;
        let use_fakes = !fakes.is_empty() && rounds == 1;
        // Deduplicate by location: history seeds use synthetic ids, so a
        // tuple re-discovered through a vertex query would otherwise appear
        // twice. Duplicates are harmless for h = 1 but double-count the
        // depth of top-h cells for h > 1, silently shrinking them.
        others.clear();
        for (id, p) in known.iter() {
            if *id == site_id {
                continue;
            }
            if !others.iter().any(|o: &Point| o.approx_eq_eps(p, 1e-7)) {
                others.push(*p);
            }
        }
        if use_fakes {
            others.extend_from_slice(&fakes);
        }
        // Ascending distance order: what the pruned construction needs, and
        // deterministic regardless of the map iteration above.
        sort_by_distance(&site, &mut others);
        let cell = history.build_topk_cell(&site, &others, h, region, config.use_pruned_cells);
        for v in cell.vertices.iter() {
            cert_radius = cert_radius.max(v.distance(&site));
        }

        // Which vertices still need testing?
        pending.clear();
        pending.extend(
            cell.vertices
                .iter()
                .copied()
                .filter(|v| !queried.contains(&quantize(v))),
        );

        if pending.is_empty() && !use_fakes {
            // Theorem 1: every vertex of the cell computed from the known
            // tuples has been queried and returned nothing new — the cell is
            // exact.
            history.record_cell_volume(cell.area);
            if config.use_cell_cache {
                history.cell_cache_put(
                    site_id,
                    h,
                    CellCacheEntry {
                        region: *region,
                        seeds,
                        nearest,
                        cert_radius,
                        cell: cell.clone(),
                        queries: query_log,
                        rounds,
                    },
                );
            }
            return Ok(ExploreOutcome {
                estimate: CellEstimate::Exact { cell },
                queries_used,
                rounds,
                lower_bound_hits: 0,
            });
        }

        // Decide whether to escape to the Monte-Carlo device instead of
        // paying for the remaining vertices.
        let shrink = if prev_volume.is_finite() && prev_volume > 0.0 {
            (prev_volume - cell.area) / prev_volume
        } else {
            1.0
        };
        let should_escape = config.use_mc_bounds
            && !use_fakes
            && rounds >= 3
            && (pending.len() > config.mc_vertex_threshold
                || shrink < config.mc_min_shrink
                || rounds > config.max_rounds);
        let forced_escape = rounds > config.max_rounds && !use_fakes;
        if should_escape || forced_escape {
            let (trials, lb_hits, extra_queries) = monte_carlo_escape(
                service,
                site_id,
                &site,
                h,
                &cell,
                &others,
                &confirmed_vertices,
                config.max_mc_trials,
                history,
                rng,
            )?;
            queries_used += extra_queries;
            history.record_cell_volume(cell.area / trials.max(1) as f64);
            return Ok(ExploreOutcome {
                estimate: CellEstimate::MonteCarlo {
                    bounding_cell: cell,
                    trials,
                },
                queries_used,
                rounds,
                lower_bound_hits: lb_hits,
            });
        }
        prev_volume = cell.area;

        // Issue the pending vertex queries.
        let mut new_tuple_found = false;
        for &v in pending.iter() {
            queried.insert(quantize(&v));
            query_log.push(v);
            let resp = service.query(&v)?;
            queries_used += 1;
            let mut site_in_top_h = false;
            for r in resp.results.iter() {
                if let Some(loc) = r.location {
                    if !known.contains_key(&r.id) {
                        new_tuple_found = true;
                    }
                    known.insert(r.id, loc);
                    history.insert(r.id, loc);
                }
                if r.id == site_id && r.rank <= h {
                    site_in_top_h = true;
                }
            }
            if site_in_top_h {
                confirmed_vertices.push(v);
            }
        }

        // Fast-init bookkeeping: after the first round the fakes are dropped
        // regardless of the outcome. If they produced no real tuples we have
        // "wasted at most four queries" (paper §3.2.1) and the next round
        // starts from the real bounding box.
        if use_fakes {
            fakes.clear();
        }

        let _ = new_tuple_found; // Termination is driven by the vertex test above.
    }
}

/// The unbiased Monte-Carlo escape of §3.2.4.
///
/// Samples locations uniformly from the bounding cell until one of them lies
/// in the true top-h cell of the target (i.e. a kNN query there returns the
/// target within the top h). The number of trials is an unbiased estimator of
/// `|V'| / |V|`. Trial points whose disk `C(q, t)` is covered by the union of
/// the confirmed-vertex disks `C(v, t)` are known to be inside the true cell
/// without asking the service (the lower-bound optimisation).
#[allow(clippy::too_many_arguments)]
fn monte_carlo_escape<S: LbsBackend + ?Sized, R: Rng>(
    service: &S,
    site_id: TupleId,
    site: &Point,
    h: usize,
    bounding_cell: &TopKCell,
    others: &[Point],
    confirmed_vertices: &[Point],
    max_trials: u64,
    history: &mut History,
    rng: &mut R,
) -> Result<(u64, u64, u64), QueryError> {
    let lower_bound_disks: Vec<Circle> = confirmed_vertices
        .iter()
        .map(|v| Circle::through(*v, *site))
        .collect();
    let sample_bbox = Rect::bounding(bounding_cell.vertices.iter().copied())
        .unwrap_or(bounding_cell.bbox)
        .intersection(&bounding_cell.bbox)
        .unwrap_or(bounding_cell.bbox);

    let mut trials: u64 = 0;
    let mut lower_bound_hits: u64 = 0;
    let mut queries: u64 = 0;

    loop {
        // Draw a point uniformly from the bounding cell by rejection from its
        // bounding rectangle (rejections cost no LBS queries).
        let q = loop {
            let candidate = sample_bbox.at_fraction(rng.gen(), rng.gen());
            if bounding_cell.contains(&candidate, others) {
                break candidate;
            }
        };
        trials += 1;

        // Lower bound: if C(q, t) is covered by the union of confirmed-vertex
        // disks, no tuple can be closer to q than t — q is in the true cell.
        if !lower_bound_disks.is_empty() {
            let target_disk = Circle::through(q, *site);
            if disk_covered_by_union(&target_disk, &lower_bound_disks) {
                lower_bound_hits += 1;
                return Ok((trials, lower_bound_hits, queries));
            }
        }

        let resp = service.query(&q)?;
        queries += 1;
        let mut hit = false;
        for r in resp.results.iter() {
            if let Some(loc) = r.location {
                history.insert(r.id, loc);
            }
            if r.id == site_id && r.rank <= h {
                hit = true;
            }
        }
        if hit {
            return Ok((trials, lower_bound_hits, queries));
        }
        if trials >= max_trials {
            // Pathological safety valve: give up and treat the bounding cell
            // as the answer. This can only happen when the true cell is an
            // astronomically small fraction of the bounding cell, in which
            // case the contribution is negligible anyway.
            return Ok((trials, lower_bound_hits, queries));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_data::{Dataset, ScenarioBuilder, Tuple};
    use lbs_geom::{top_k_cell, voronoi_diagram};
    use lbs_service::{ServiceConfig, SimulatedLbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn make_service(points: &[(f64, f64)], k: usize) -> SimulatedLbs {
        let tuples: Vec<Tuple> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Tuple::new(i as u64, Point::new(*x, *y)))
            .collect();
        SimulatedLbs::new(Dataset::new(tuples, region()), ServiceConfig::lr_lbs(k))
    }

    #[test]
    fn exact_cell_matches_full_voronoi_diagram() {
        let pts = vec![
            (20.0, 30.0),
            (70.0, 20.0),
            (50.0, 80.0),
            (85.0, 65.0),
            (35.0, 55.0),
            (10.0, 80.0),
            (60.0, 45.0),
        ];
        let service = make_service(&pts, 5);
        let sites: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let diagram = voronoi_diagram(&sites, &region());
        let mut rng = StdRng::seed_from_u64(7);

        for (i, site) in sites.iter().enumerate() {
            let mut history = History::new();
            let out = explore_cell(
                &service,
                i as u64,
                *site,
                1,
                &region(),
                &mut history,
                &ExploreConfig::plain(),
                &mut rng,
            )
            .unwrap();
            let cell = out.estimate.exact_cell().expect("plain config is exact");
            let expected = diagram.cells[i].area();
            assert!(
                (cell.area - expected).abs() / expected < 1e-6,
                "site {i}: explored {} vs diagram {}",
                cell.area,
                expected
            );
            assert!(out.queries_used > 0);
        }
    }

    #[test]
    fn exact_cells_with_all_techniques_still_match() {
        let pts = vec![
            (20.0, 30.0),
            (70.0, 20.0),
            (50.0, 80.0),
            (85.0, 65.0),
            (35.0, 55.0),
        ];
        let service = make_service(&pts, 5);
        let sites: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let diagram = voronoi_diagram(&sites, &region());
        let mut rng = StdRng::seed_from_u64(3);
        // Shared history across explorations — that is the point of §3.2.2.
        let mut history = History::new();
        // Disable the MC escape so the outcome stays exactly comparable.
        let config = ExploreConfig {
            use_mc_bounds: false,
            ..ExploreConfig::default()
        };
        for (i, site) in sites.iter().enumerate() {
            let out = explore_cell(
                &service,
                i as u64,
                *site,
                1,
                &region(),
                &mut history,
                &config,
                &mut rng,
            )
            .unwrap();
            let cell = out.estimate.exact_cell().unwrap();
            let expected = diagram.cells[i].area();
            assert!(
                (cell.area - expected).abs() / expected < 1e-6,
                "site {i}: {} vs {}",
                cell.area,
                expected
            );
        }
        assert!(history.len() >= sites.len());
    }

    #[test]
    fn history_reduces_query_cost() {
        let mut rng = StdRng::seed_from_u64(11);
        let dataset = ScenarioBuilder::uniform_points(150, region()).build(&mut rng);
        let service = SimulatedLbs::new(dataset.clone(), ServiceConfig::lr_lbs(10));
        let sites: Vec<Point> = dataset.locations().collect();

        // Explore 12 cells without history, then the same cells with history.
        let mut cost_plain = 0u64;
        for (i, site) in sites.iter().enumerate().take(12) {
            let mut h = History::new();
            let out = explore_cell(
                &service,
                i as u64,
                *site,
                1,
                &region(),
                &mut h,
                &ExploreConfig::plain(),
                &mut rng,
            )
            .unwrap();
            cost_plain += out.queries_used;
        }
        let mut cost_hist = 0u64;
        let mut shared = History::new();
        let cfg = ExploreConfig {
            use_mc_bounds: false,
            ..ExploreConfig::default()
        };
        for (i, site) in sites.iter().enumerate().take(12) {
            let out = explore_cell(
                &service,
                i as u64,
                *site,
                1,
                &region(),
                &mut shared,
                &cfg,
                &mut rng,
            )
            .unwrap();
            cost_hist += out.queries_used;
        }
        assert!(
            cost_hist < cost_plain,
            "history should reduce cost: {cost_hist} vs {cost_plain}"
        );
    }

    #[test]
    fn top2_cell_exploration_is_exact() {
        let pts = vec![
            (50.0, 50.0),
            (10.0, 50.0),
            (90.0, 50.0),
            (50.0, 10.0),
            (50.0, 90.0),
        ];
        let service = make_service(&pts, 5);
        let mut rng = StdRng::seed_from_u64(13);
        let mut history = History::new();
        let out = explore_cell(
            &service,
            0,
            Point::new(50.0, 50.0),
            2,
            &region(),
            &mut history,
            &ExploreConfig::plain(),
            &mut rng,
        )
        .unwrap();
        let cell = out.estimate.exact_cell().unwrap();
        // Oracle: exact top-2 cell computed from the full site set.
        let others: Vec<Point> = pts[1..].iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let oracle = top_k_cell(&Point::new(50.0, 50.0), &others, 2, &region());
        assert!(
            (cell.area - oracle.area).abs() / oracle.area < 1e-6,
            "{} vs {}",
            cell.area,
            oracle.area
        );
    }

    #[test]
    fn monte_carlo_escape_is_close_on_average() {
        // A denser database where the MC escape is forced very early; the
        // average of the MC inverse-probability estimates must approximate
        // the exact one (unbiasedness of the escape).
        let mut rng = StdRng::seed_from_u64(17);
        let dataset = ScenarioBuilder::uniform_points(120, region()).build(&mut rng);
        let service = SimulatedLbs::new(dataset.clone(), ServiceConfig::lr_lbs(8));
        let site = dataset.tuples()[7].location;

        // Exact reference.
        let mut h = History::new();
        let exact = explore_cell(
            &service,
            7,
            site,
            1,
            &region(),
            &mut h,
            &ExploreConfig::plain(),
            &mut rng,
        )
        .unwrap();
        let exact_inv = exact.estimate.inverse_probability_uniform(&region());

        // Aggressive escape configuration.
        let cfg = ExploreConfig {
            mc_vertex_threshold: 0,
            mc_min_shrink: 10.0, // always triggers once rounds >= 3
            ..ExploreConfig::default()
        };
        let mut sum = 0.0;
        let n = 60;
        for seed in 0..n {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mut h = History::new();
            let out =
                explore_cell(&service, 7, site, 1, &region(), &mut h, &cfg, &mut rng).unwrap();
            sum += out.estimate.inverse_probability_uniform(&region());
        }
        let mean = sum / n as f64;
        assert!(
            (mean - exact_inv).abs() / exact_inv < 0.35,
            "MC mean {mean} vs exact {exact_inv}"
        );
    }

    #[test]
    fn fast_init_failure_wastes_at_most_one_round() {
        // A single-tuple database: the fake box returns only the site itself,
        // the algorithm must fall back to the real bounding box and finish
        // with the whole region as the cell.
        let service = make_service(&[(50.0, 50.0)], 5);
        let mut rng = StdRng::seed_from_u64(23);
        let mut history = History::new();
        let out = explore_cell(
            &service,
            0,
            Point::new(50.0, 50.0),
            1,
            &region(),
            &mut history,
            &ExploreConfig {
                use_mc_bounds: false,
                ..ExploreConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let cell = out.estimate.exact_cell().unwrap();
        assert!((cell.area - region().area()).abs() < 1e-6);
    }

    #[test]
    fn inverse_probability_formulas() {
        let cell = top_k_cell(
            &Point::new(25.0, 50.0),
            &[Point::new(75.0, 50.0)],
            1,
            &region(),
        );
        let exact = CellEstimate::Exact { cell: cell.clone() };
        assert!((exact.inverse_probability_uniform(&region()) - 2.0).abs() < 1e-9);
        let mc = CellEstimate::MonteCarlo {
            bounding_cell: cell,
            trials: 3,
        };
        assert!((mc.inverse_probability_uniform(&region()) - 6.0).abs() < 1e-9);
    }
}
