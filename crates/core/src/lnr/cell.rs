//! Voronoi-cell construction from ranks alone (paper §4.1–§4.2).
//!
//! Starting from a seed location known to return the target within the top h,
//! the explorer finds the four edges crossed by axis-aligned rays from the
//! seed, forms the tentative cell as the level region of the discovered
//! edge half-planes, and then runs the Theorem-1 vertex test: every vertex of
//! the tentative cell is queried; a vertex where the target drops out of the
//! top h triggers another edge search in that direction. For `h > 1` the cell
//! may be concave, so after the vertex loop converges a concavity-repair pass
//! (Lemma 1 / §4.2) looks for co-appearing tuples whose bisector with the
//! target has not been discovered although the tested vertices prove it must
//! cut the cell, and searches those edges too.

use std::collections::{HashMap, HashSet};

use lbs_data::TupleId;
use lbs_geom::{level_region_pruned_with, ClipScratch, HalfPlane, LevelRegion, Point, Rect};

use crate::engine_stats::EngineReport;
use lbs_service::QueryError;

use super::binary_search::{find_bisector, find_edge, EdgeEstimate, RankOracle};

/// The outcome of a rank-only cell exploration.
#[derive(Clone, Debug)]
pub struct LnrCellOutcome {
    /// The recovered cell (level region of the discovered edge half-planes).
    pub region: LevelRegion,
    /// The discovered edges as oriented half-planes ("inside" = the target's
    /// side).
    pub halfplanes: Vec<HalfPlane>,
    /// The raw edge estimates, for position inference.
    pub edges: Vec<EdgeEstimate>,
    /// Vertices that were queried and confirmed to contain the target in
    /// their top-h answer, together with that answer.
    pub confirmed_vertices: Vec<(Point, Vec<TupleId>)>,
    /// A location strictly inside the recovered cell (the seed).
    pub interior_point: Point,
    /// Cell-engine counters of this exploration (level regions built,
    /// half-planes incorporated versus certified away).
    pub engine: EngineReport,
}

/// Configuration knobs of the rank-only exploration.
#[derive(Clone, Debug)]
pub struct LnrExploreConfig {
    /// Bracket width δ of the binary search (same units as coordinates).
    pub delta: f64,
    /// Lateral offset δ′ of the secondary binary searches.
    pub delta_prime: f64,
    /// Hard cap on discovered edges (a safety valve; real cells have few).
    pub max_edges: usize,
    /// Hard cap on vertex-test iterations.
    pub max_rounds: usize,
}

impl Default for LnrExploreConfig {
    fn default() -> Self {
        LnrExploreConfig {
            delta: 0.05,
            delta_prime: 0.5,
            max_edges: 40,
            max_rounds: 24,
        }
    }
}

fn quantize(p: &Point) -> (i64, i64) {
    ((p.x * 1e6).round() as i64, (p.y * 1e6).round() as i64)
}

/// Explores the top-h cell of `target` through a rank-only oracle, starting
/// from `seed` (a location whose top-h answer contains `target`).
///
/// Convenience wrapper over [`explore_cell_with`] with a private scratch
/// arena; the estimator hot loop passes a reused one instead.
pub fn explore_cell<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    seed: Point,
    bbox: &Rect,
    config: &LnrExploreConfig,
) -> Result<LnrCellOutcome, QueryError> {
    let mut scratch = ClipScratch::new();
    explore_cell_with(oracle, target, seed, bbox, config, &mut scratch)
}

/// [`explore_cell`] with a caller-owned [`ClipScratch`], so the per-round
/// level-region constructions reuse one set of buffers across the whole
/// exploration (and, when the caller loops over samples, across samples).
/// Bit-identical to the wrapper: the arena carries no state between builds.
pub fn explore_cell_with<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    seed: Point,
    bbox: &Rect,
    config: &LnrExploreConfig,
    scratch: &mut ClipScratch,
) -> Result<LnrCellOutcome, QueryError> {
    let h = oracle.h();
    let mut halfplanes: Vec<HalfPlane> = Vec::new();
    let mut edges: Vec<EdgeEstimate> = Vec::new();
    // lbs-lint: allow(hashmap-iter, reason = "keyed lookups (contains_key/entry) only; never iterated")
    let mut edge_for_tuple: HashMap<TupleId, usize> = HashMap::new();
    let mut confirmed: Vec<(Point, Vec<TupleId>)> = Vec::new();
    // lbs-lint: allow(hashmap-iter, reason = "membership test for visited vertices; never iterated")
    let mut tested: HashSet<(i64, i64)> = HashSet::new();
    let mut vertex_answers: Vec<(Point, Vec<TupleId>, bool)> = Vec::new();
    let mut engine = EngineReport::default();

    let add_edge = |edge: EdgeEstimate,
                    halfplanes: &mut Vec<HalfPlane>,
                    edges: &mut Vec<EdgeEstimate>,
                    // lbs-lint: allow(hashmap-iter, reason = "closure borrows the lookup-only edge map; never iterated")
                    edge_for_tuple: &mut HashMap<TupleId, usize>|
     -> bool {
        // Orient the half-plane so that the point just inside the cell is on
        // its "inside".
        let Some(hp) = HalfPlane::with_inside(edge.line, &edge.inside_point) else {
            return false;
        };
        // Every neighbouring tuple contributes exactly one bisector with the
        // target, so a second (noisier) estimate of the same edge must not be
        // added: near-duplicate half-planes would double-count violations and
        // silently shrink the level region.
        if let Some(t) = edge.crossing_tuple {
            if edge_for_tuple.contains_key(&t) {
                return false;
            }
        }
        let duplicate = halfplanes.iter().any(|existing| {
            (existing.boundary.a - hp.boundary.a).abs() < 2e-2
                && (existing.boundary.b - hp.boundary.b).abs() < 2e-2
                && (existing.boundary.c - hp.boundary.c).abs() < 0.5
        });
        if duplicate {
            return false;
        }
        if let Some(t) = edge.crossing_tuple {
            edge_for_tuple.entry(t).or_insert(edges.len());
        }
        halfplanes.push(hp);
        edges.push(edge);
        true
    };

    // Initial four directions from the seed (paper §4.1).
    for dir in [
        Point::new(1.0, 0.0),
        Point::new(-1.0, 0.0),
        Point::new(0.0, 1.0),
        Point::new(0.0, -1.0),
    ] {
        if let Some(edge) = find_edge(
            oracle,
            target,
            seed,
            dir,
            bbox,
            config.delta,
            config.delta_prime,
        )? {
            add_edge(edge, &mut halfplanes, &mut edges, &mut edge_for_tuple);
        }
    }

    // Vertex-testing loop (Theorem 1 adapted to rank-only answers).
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let (region, build) = level_region_pruned_with(scratch, &halfplanes, &seed, h, bbox, true);
        engine.record_build(&build);
        let pending: Vec<Point> = region
            .vertices
            .iter()
            .copied()
            .filter(|v| !tested.contains(&quantize(v)))
            .collect();

        let mut progressed = false;
        if !pending.is_empty() && edges.len() < config.max_edges && rounds <= config.max_rounds {
            for v in pending {
                tested.insert(quantize(&v));
                let ids = oracle.top_ids(&v)?;
                let inside = ids.contains(&target);
                vertex_answers.push((v, ids.clone(), inside));
                if inside {
                    confirmed.push((v, ids));
                    continue;
                }
                // The vertex fell outside the true cell. The tuples ranked
                // above the target there whose bisector is still unknown are
                // exactly the edges cutting the vertex off: pin each of them
                // down with the pairwise-rank search (robust near concave
                // corners where several edges meet).
                let mut found_specific = false;
                for t_prime in ids.iter().copied().filter(|id| *id != target) {
                    if edge_for_tuple.contains_key(&t_prime) {
                        continue;
                    }
                    if let Some(edge) = find_bisector(
                        oracle,
                        target,
                        t_prime,
                        seed,
                        v,
                        bbox,
                        config.delta,
                        config.delta_prime,
                    )? {
                        if add_edge(edge, &mut halfplanes, &mut edges, &mut edge_for_tuple) {
                            progressed = true;
                            found_specific = true;
                        }
                    }
                }
                if !found_specific {
                    // Fall back to the membership-predicate search along the
                    // direction seed → v (e.g. when the displacing tuple was
                    // pushed out of the answer entirely).
                    let dir = v - seed;
                    if let Some(edge) = find_edge(
                        oracle,
                        target,
                        seed,
                        dir,
                        bbox,
                        config.delta,
                        config.delta_prime,
                    )? {
                        if add_edge(edge, &mut halfplanes, &mut edges, &mut edge_for_tuple) {
                            progressed = true;
                        }
                    }
                }
            }
        }

        if progressed {
            continue;
        }

        // Concavity repair (§4.2), relevant only for h > 1: a co-appearing
        // tuple t' without a discovered edge, such that some tested vertices
        // contain t' in their answer and some do not, indicates the bisector
        // of (target, t') cuts the current polygon — an inward vertex may be
        // missing. Search that edge from a vertex that is inside the cell
        // towards one that differs on t'.
        let mut repaired = false;
        if h > 1 && edges.len() < config.max_edges && rounds <= config.max_rounds {
            let companions: Vec<TupleId> = oracle
                .companions()
                .keys()
                .copied()
                .filter(|id| *id != target && !edge_for_tuple.contains_key(id))
                .collect();
            'repair: for t_prime in companions {
                let with: Vec<&(Point, Vec<TupleId>, bool)> = vertex_answers
                    .iter()
                    .filter(|(_, ids, _)| ids.contains(&t_prime))
                    .collect();
                let without: Vec<&(Point, Vec<TupleId>, bool)> = vertex_answers
                    .iter()
                    .filter(|(_, ids, _)| !ids.contains(&t_prime))
                    .collect();
                if with.is_empty() || without.is_empty() {
                    continue;
                }
                // Search the (target, t') bisector directly between the seed
                // (where the target wins the pairwise comparison) and a
                // vertex whose answer contains t'.
                let toward = with[0].0;
                if let Some(edge) = find_bisector(
                    oracle,
                    target,
                    t_prime,
                    seed,
                    toward,
                    bbox,
                    config.delta,
                    config.delta_prime,
                )? {
                    if add_edge(edge, &mut halfplanes, &mut edges, &mut edge_for_tuple) {
                        repaired = true;
                        break 'repair;
                    }
                }
            }
        }
        if repaired {
            continue;
        }

        let (region, build) = level_region_pruned_with(scratch, &halfplanes, &seed, h, bbox, true);
        engine.record_build(&build);
        return Ok(LnrCellOutcome {
            region,
            halfplanes,
            edges,
            confirmed_vertices: confirmed,
            interior_point: seed,
            engine,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_data::{Dataset, ScenarioBuilder, Tuple};
    use lbs_geom::{top_k_cell, voronoi_diagram};
    use lbs_service::{LbsBackend, ServiceConfig, SimulatedLbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn service(points: &[(f64, f64)], k: usize) -> SimulatedLbs {
        let tuples: Vec<Tuple> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Tuple::new(i as u64, Point::new(*x, *y)))
            .collect();
        SimulatedLbs::new(Dataset::new(tuples, region()), ServiceConfig::lnr_lbs(k))
    }

    #[test]
    fn recovers_top1_cells_without_locations() {
        let pts = vec![
            (20.0, 30.0),
            (70.0, 20.0),
            (50.0, 80.0),
            (85.0, 65.0),
            (35.0, 55.0),
        ];
        let svc = service(&pts, 5);
        let sites: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let diagram = voronoi_diagram(&sites, &region());
        for (i, site) in sites.iter().enumerate() {
            let mut oracle = RankOracle::new(&svc, 1);
            let out = explore_cell(
                &mut oracle,
                i as u64,
                *site,
                &region(),
                &LnrExploreConfig::default(),
            )
            .unwrap();
            let expected = diagram.cells[i].area();
            let got = out.region.area;
            assert!(
                (got - expected).abs() / expected < 0.05,
                "site {i}: recovered {got} vs true {expected}"
            );
        }
    }

    #[test]
    fn recovered_cell_error_shrinks_with_delta() {
        let pts = vec![(30.0, 40.0), (70.0, 60.0), (50.0, 15.0), (20.0, 80.0)];
        let svc = service(&pts, 4);
        let sites: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let truth = voronoi_diagram(&sites, &region()).cells[0].area();
        let mut errors = Vec::new();
        for delta in [2.0, 0.05] {
            let mut oracle = RankOracle::new(&svc, 1);
            let out = explore_cell(
                &mut oracle,
                0,
                sites[0],
                &region(),
                &LnrExploreConfig {
                    delta,
                    ..LnrExploreConfig::default()
                },
            )
            .unwrap();
            errors.push((out.region.area - truth).abs() / truth);
        }
        assert!(
            errors[1] <= errors[0] + 1e-9,
            "finer delta should not be worse: {errors:?}"
        );
        assert!(
            errors[1] < 0.04,
            "fine-delta error too large: {}",
            errors[1]
        );
    }

    #[test]
    fn single_tuple_cell_is_the_whole_box() {
        let svc = service(&[(50.0, 50.0)], 1);
        let mut oracle = RankOracle::new(&svc, 1);
        let out = explore_cell(
            &mut oracle,
            0,
            Point::new(50.0, 50.0),
            &region(),
            &LnrExploreConfig::default(),
        )
        .unwrap();
        assert!((out.region.area - region().area()).abs() < 1e-6);
        assert!(out.halfplanes.is_empty());
    }

    #[test]
    fn top2_cell_of_cross_configuration() {
        // The concave top-2 cell of the centre tuple in the cross layout;
        // compare against the exact geometric construction.
        let pts = vec![
            (50.0, 50.0),
            (10.0, 50.0),
            (90.0, 50.0),
            (50.0, 10.0),
            (50.0, 90.0),
        ];
        let svc = service(&pts, 5);
        let mut oracle = RankOracle::new(&svc, 2);
        let out = explore_cell(
            &mut oracle,
            0,
            Point::new(50.0, 50.0),
            &region(),
            &LnrExploreConfig::default(),
        )
        .unwrap();
        let others: Vec<Point> = pts[1..].iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let truth = top_k_cell(&Point::new(50.0, 50.0), &others, 2, &region()).area;
        assert!(
            (out.region.area - truth).abs() / truth < 0.10,
            "top-2 area {} vs {}",
            out.region.area,
            truth
        );
    }

    #[test]
    fn cost_is_logarithmic_not_linear_in_precision() {
        let mut rng = StdRng::seed_from_u64(5);
        let dataset = ScenarioBuilder::uniform_points(60, region()).build(&mut rng);
        let seed = dataset.tuples()[10].location;
        let svc = SimulatedLbs::new(dataset, ServiceConfig::lnr_lbs(5));
        let mut oracle = RankOracle::new(&svc, 1);
        let _ = explore_cell(
            &mut oracle,
            10,
            seed,
            &region(),
            &LnrExploreConfig::default(),
        )
        .unwrap();
        // An m-edge cell costs O(m log(b/delta)); with ~6 edges and
        // log2(2000) ≈ 11 this lands in the low hundreds. Just pin a sane
        // upper bound so regressions that make it linear get caught.
        assert!(
            svc.queries_issued() < 800,
            "cell exploration used {} queries",
            svc.queries_issued()
        );
    }
}
