//! Algorithm LNR-LBS-AGG (paper Algorithm 6).
//!
//! Per sample: draw a query location, issue one kNN query, and for each tuple
//! returned within the configured top-h level recover its top-h Voronoi cell
//! through the rank-only binary-search machinery, then add `Q(t) / p(t)` to
//! the sample contribution with `p(t)` the probability of sampling a location
//! inside the recovered cell. The recovered cell differs from the true one by
//! at most the edge error, so the estimate carries a bias bounded by the
//! paper's Theorem 2 — arbitrarily small for a logarithmic extra query cost.

use rand::Rng;

use lbs_geom::{ClipScratch, ConvexPolygon, Rect};
use lbs_service::{LbsBackend, QueryError, ReturnMode};

use crate::agg::Aggregate;
use crate::driver::SampleDriver;
use crate::engine_stats::SharedEngineCounters;
use crate::estimate::{Estimate, EstimateError};
use crate::sampling::QuerySampler;
use crate::session::{LnrSession, SessionConfig};

use super::binary_search::RankOracle;
use super::cell::{explore_cell_with, LnrExploreConfig};
use super::locate::{infer_position, LocateConfig};

/// Configuration of the LNR-LBS-AGG estimator.
#[derive(Clone, Debug)]
pub struct LnrLbsAggConfig {
    /// How many of the returned tuples to use per query (their top-h cells
    /// are recovered; `1` is the default because each extra tuple costs a
    /// full cell exploration through binary searches).
    pub h: usize,
    /// Bracket width δ of the edge binary searches (coordinate units). The
    /// estimation bias shrinks with δ (Theorem 2) at `O(log(1/δ))` extra
    /// queries per edge.
    pub delta: f64,
    /// Lateral offset δ′ of the secondary binary searches.
    pub delta_prime: f64,
    /// Density-weighted sampling (§5.2). Exact probability integration over
    /// the recovered cell requires a convex cell, so this is honoured only
    /// when `h = 1`.
    pub weighted_sampler: Option<lbs_data::DensityGrid>,
    /// Record a trace point every this many samples (0 disables the trace).
    pub trace_every: u64,
    /// Safety cap on edges per cell.
    pub max_edges: usize,
}

impl Default for LnrLbsAggConfig {
    fn default() -> Self {
        LnrLbsAggConfig {
            h: 1,
            delta: 0.05,
            delta_prime: 0.5,
            weighted_sampler: None,
            trace_every: 1,
            max_edges: 40,
        }
    }
}

/// The LNR-LBS-AGG estimator.
#[derive(Clone, Debug, Default)]
pub struct LnrLbsAgg {
    config: LnrLbsAggConfig,
}

impl LnrLbsAgg {
    /// Creates an estimator with the given configuration.
    pub fn new(config: LnrLbsAggConfig) -> Self {
        LnrLbsAgg { config }
    }

    pub(crate) fn explore_config(&self) -> LnrExploreConfig {
        LnrExploreConfig {
            delta: self.config.delta,
            delta_prime: self.config.delta_prime,
            max_edges: self.config.max_edges,
            max_rounds: 24,
        }
    }

    /// Estimates `aggregate` over `region` through the rank-only interface
    /// `service`, spending at most `query_budget` kNN queries.
    ///
    /// Also works against LR interfaces (ignoring the returned locations),
    /// which is how the paper's localization experiment treats Google Places
    /// as an LNR service.
    pub fn estimate<S: LbsBackend + ?Sized, R: Rng>(
        &mut self,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        query_budget: u64,
        rng: &mut R,
    ) -> Result<Estimate, EstimateError> {
        let mut session = LnrSession::new_serial(
            service,
            region,
            aggregate,
            self.config.clone(),
            query_budget,
        );
        while !session.is_finished() {
            session.step_serial(rng);
        }
        session.finalize()
    }

    /// Estimates `aggregate` over `region` in parallel, fanning samples out
    /// across the [`SampleDriver`]'s worker threads.
    ///
    /// Bit-identical for any thread count given the same `root_seed` (see
    /// [`crate::driver`]). LNR samples carry no cross-sample state — each one
    /// builds its own [`RankOracle`] — so unlike the LR estimator there is no
    /// fork/absorb tradeoff; only the wave-boundary budget enforcement
    /// differs from [`LnrLbsAgg::estimate`].
    pub fn estimate_parallel<S: LbsBackend + ?Sized>(
        &mut self,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        query_budget: u64,
        root_seed: u64,
        driver: &SampleDriver,
    ) -> Result<Estimate, EstimateError> {
        let cfg = SessionConfig::new(query_budget, root_seed).with_threads(driver.threads());
        let mut session = LnrSession::new(service, region, aggregate, self.config.clone(), cfg);
        while !session.is_finished() {
            session.step();
        }
        session.finalize()
    }

    /// Runs one independent sample through the rank-only machinery and
    /// returns its Horvitz–Thompson `(numerator, denominator)` contribution.
    ///
    /// Shared loop body of [`LnrLbsAgg::estimate`] and
    /// [`LnrLbsAgg::estimate_parallel`]; an `Err` means the sample hit the
    /// service's hard query limit.
    #[allow(clippy::too_many_arguments)] // shared loop body; mirrors Algorithm 6's state
    pub(crate) fn sample_once<S: LbsBackend + ?Sized, R: Rng>(
        explore_config: &LnrExploreConfig,
        sampler: &QuerySampler,
        h: usize,
        needs_location: bool,
        service: &S,
        region: &Rect,
        aggregate: &Aggregate,
        counters: &SharedEngineCounters,
        rng: &mut R,
    ) -> Result<(f64, f64), QueryError> {
        let q = sampler.sample(rng);
        let resp = service.query(&q)?;

        let mut num_contrib = 0.0;
        let mut den_contrib = 0.0;

        // One scratch arena for every exploration this sample performs; the
        // buffers are reused across the per-tuple round loops below.
        let mut scratch = ClipScratch::new();

        for returned in resp.results.iter().filter(|r| r.rank <= h) {
            // Ignore any location the service may have returned: this
            // estimator must work from ranks alone.
            debug_assert!(
                service.config().return_mode == ReturnMode::LocationReturned
                    || returned.location.is_none()
            );
            let mut oracle = RankOracle::new(service, h);
            let cell = explore_cell_with(
                &mut oracle,
                returned.id,
                q,
                region,
                explore_config,
                &mut scratch,
            )?;
            counters.add_report(&cell.engine);

            // Full-region base-design probability even under stratified
            // sampling (see the LR estimator: the stratified combiner's
            // base-design weights make the full-region 1/π unbiased).
            let probability = match sampler.base() {
                QuerySampler::Uniform { bbox } => cell.region.area / bbox.area(),
                QuerySampler::Weighted { grid } => {
                    // h = 1 ⇒ the level region is convex; rebuild its
                    // polygon from the vertex set to integrate exactly.
                    let hull = ConvexPolygon::hull(&cell.region.vertices);
                    grid.integrate_convex(&hull)
                }
                // `base()` never returns a stratified design; skip rather
                // than contribute something biased if it ever happens.
                QuerySampler::Stratified { .. } => 0.0,
            };
            if probability <= f64::EPSILON {
                continue;
            }

            // Location-dependent selection conditions need an inferred
            // position (§4.3); infer it lazily and only when required.
            let location = if needs_location {
                let mut locate_oracle = RankOracle::new(service, 1);
                infer_position(
                    &mut locate_oracle,
                    returned.id,
                    &cell,
                    region,
                    &LocateConfig::default(),
                )?
            } else {
                None
            };

            let num = aggregate
                .numerator(returned, location.as_ref())
                .unwrap_or(0.0);
            let den = aggregate
                .denominator(returned, location.as_ref())
                .unwrap_or(0.0);
            num_contrib += num / probability;
            den_contrib += den / probability;
        }

        Ok((num_contrib, den_contrib))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Selection;
    use lbs_data::{attrs, Dataset, ScenarioBuilder};
    use lbs_service::{ServiceConfig, SimulatedLbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 200.0, 200.0)
    }

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        ScenarioBuilder::usa_pois(n)
            .with_bbox(region())
            .build(&mut rng)
    }

    #[test]
    fn count_all_converges_without_locations() {
        let d = dataset(80, 1);
        let truth = d.len() as f64;
        let service = SimulatedLbs::new(d, ServiceConfig::lnr_lbs(10));
        let mut est = LnrLbsAgg::new(LnrLbsAggConfig {
            delta: 0.2,
            ..LnrLbsAggConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let out = est
            .estimate(
                &service,
                &region(),
                &Aggregate::count_all(),
                6_000,
                &mut rng,
            )
            .unwrap();
        let rel = out.relative_error(truth);
        assert!(rel < 0.5, "relative error {rel} (estimate {})", out.value);
        assert!(out.samples >= 5);
    }

    #[test]
    fn gender_ratio_style_count_with_attribute_selection() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = ScenarioBuilder::wechat_users(80)
            .with_bbox(region())
            .build(&mut rng);
        let male_truth = d.count_where(|t| t.text_eq(attrs::GENDER, "male")) as f64;
        let service = SimulatedLbs::new(d, ServiceConfig::lnr_lbs(10));
        let agg = Aggregate::count_where(Selection::TextEquals {
            attr: attrs::GENDER.into(),
            value: "male".into(),
        });
        let mut est = LnrLbsAgg::new(LnrLbsAggConfig {
            delta: 0.2,
            ..LnrLbsAggConfig::default()
        });
        let out = est
            .estimate(&service, &region(), &agg, 6_000, &mut rng)
            .unwrap();
        assert!(
            out.relative_error(male_truth) < 0.6,
            "estimate {} vs truth {male_truth}",
            out.value
        );
    }

    #[test]
    fn location_selection_uses_position_inference() {
        // COUNT of tuples inside a sub-region, through a rank-only interface:
        // feasible only thanks to §4.3 position inference.
        let d = dataset(60, 5);
        let sub = Rect::from_bounds(0.0, 0.0, 100.0, 200.0);
        let agg = Aggregate::count_where(Selection::InRegion(sub));
        let truth = agg.ground_truth(&d, &region());
        let service = SimulatedLbs::new(d, ServiceConfig::lnr_lbs(10));
        let mut est = LnrLbsAgg::new(LnrLbsAggConfig {
            delta: 0.2,
            ..LnrLbsAggConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(6);
        let out = est
            .estimate(&service, &region(), &agg, 6_000, &mut rng)
            .unwrap();
        // Roughly half the tuples are in the sub-region; the estimate should
        // land in the right ballpark despite the inference overhead.
        assert!(
            out.relative_error(truth.max(1.0)) < 0.8,
            "estimate {} vs truth {truth}",
            out.value
        );
    }

    #[test]
    fn works_against_lr_interfaces_by_ignoring_locations() {
        let d = dataset(50, 7);
        let truth = d.len() as f64;
        let service = SimulatedLbs::new(d, ServiceConfig::lr_lbs(10));
        let mut est = LnrLbsAgg::new(LnrLbsAggConfig {
            delta: 0.2,
            ..LnrLbsAggConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(8);
        let out = est
            .estimate(
                &service,
                &region(),
                &Aggregate::count_all(),
                4_000,
                &mut rng,
            )
            .unwrap();
        assert!(out.relative_error(truth) < 0.6);
    }

    #[test]
    fn hard_limit_yields_no_samples() {
        let d = dataset(30, 9);
        let service = SimulatedLbs::new(d, ServiceConfig::lnr_lbs(5).with_query_limit(2));
        let mut est = LnrLbsAgg::new(LnrLbsAggConfig::default());
        let mut rng = StdRng::seed_from_u64(10);
        let res = est.estimate(
            &service,
            &region(),
            &Aggregate::count_all(),
            1_000,
            &mut rng,
        );
        assert!(matches!(res, Err(EstimateError::NoSamples)));
    }
}
