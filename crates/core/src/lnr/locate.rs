//! Tuple-position inference over rank-only interfaces (paper §4.3).
//!
//! Even though an LNR-LBS never returns coordinates, the position of a tuple
//! can be pinned down to arbitrary precision once its Voronoi cell is known:
//!
//! * at a cell vertex `o`, the two incident cell edges `d1 = bisector(t, t2)`
//!   and `d3 = bisector(t, t3)` meet a third edge `d2 = bisector(t2, t3)`;
//! * by the reflection symmetry of bisectors, the direction from `o` to `t`
//!   has angle `θ = α1 + α3 − α2`, where `α1, α2, α3` are the direction
//!   angles of `d1, d2, d3`;
//! * `d2` is recovered with a single extra binary search between a point that
//!   returns `t2` and a point that returns `t3`;
//! * repeating the construction at a second vertex gives a second ray, and
//!   the tuple sits at the intersection of the two.
//!
//! The function degrades gracefully: vertices that do not admit the
//! construction (box corners, degenerate neighbourhoods) are skipped, and
//! `None` is returned when no pair of usable vertices exists.

use lbs_data::TupleId;
use lbs_geom::{Line, Point, Rect};
use lbs_service::QueryError;

use super::binary_search::RankOracle;
use super::cell::LnrCellOutcome;

/// A tuple whose position was inferred through the rank-only interface.
#[derive(Clone, Debug, PartialEq)]
pub struct LocatedTuple {
    /// The tuple id.
    pub id: TupleId,
    /// The inferred position.
    pub position: Point,
}

/// Configuration of the position-inference procedure.
#[derive(Clone, Debug)]
pub struct LocateConfig {
    /// How far outside the cell the probe points are placed (km).
    pub probe_step: f64,
    /// Bracket width of the binary search for the third edge.
    pub delta: f64,
    /// How many cell vertices to try before giving up.
    pub max_vertices: usize,
}

impl Default for LocateConfig {
    fn default() -> Self {
        LocateConfig {
            probe_step: 0.5,
            delta: 0.02,
            max_vertices: 6,
        }
    }
}

/// The direction ray from one usable cell vertex towards the hidden tuple.
struct VertexRay {
    origin: Point,
    direction: Point,
}

/// Infers the position of `target` from its explored top-1 cell.
///
/// `cell` must come from [`super::cell::explore_cell`] with `h = 1`; with
/// `h > 1` the incident-edge geometry this construction relies on does not
/// hold and `None` is returned immediately.
pub fn infer_position<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    cell: &LnrCellOutcome,
    bbox: &Rect,
    config: &LocateConfig,
) -> Result<Option<Point>, QueryError> {
    if oracle.h() != 1 {
        return Ok(None);
    }
    let mut rays: Vec<VertexRay> = Vec::new();

    let mut candidates: Vec<Point> = cell
        .region
        .vertices
        .iter()
        .copied()
        .filter(|v| bbox.contains_strict(v))
        .collect();
    candidates.truncate(config.max_vertices);

    for v in candidates {
        if rays.len() >= 2 {
            break;
        }
        if let Some(ray) = vertex_ray(oracle, target, cell, &v, config)? {
            // Two nearly identical rays cannot be intersected reliably.
            let redundant = rays.iter().any(|r| {
                r.direction.cross(&ray.direction).abs() < 1e-3
                    && r.origin.distance(&ray.origin) < 1e-6
            });
            if !redundant {
                rays.push(ray);
            }
        }
    }

    if rays.len() < 2 {
        return Ok(None);
    }
    let l1 = Line::through(&rays[0].origin, &(rays[0].origin + rays[0].direction));
    let l2 = Line::through(&rays[1].origin, &(rays[1].origin + rays[1].direction));
    let (Some(l1), Some(l2)) = (l1, l2) else {
        return Ok(None);
    };
    let Some(p) = l1.intersection(&l2) else {
        return Ok(None);
    };
    // Sanity: the inferred point must be in front of both rays and inside the
    // bounding box.
    let ok = bbox.contains(&p)
        && (p - rays[0].origin).dot(&rays[0].direction) > -1e-6
        && (p - rays[1].origin).dot(&rays[1].direction) > -1e-6;
    Ok(if ok { Some(p) } else { None })
}

/// Builds the "towards the tuple" ray at one cell vertex, if the local
/// geometry admits it.
fn vertex_ray<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    cell: &LnrCellOutcome,
    v: &Point,
    config: &LocateConfig,
) -> Result<Option<VertexRay>, QueryError> {
    // The two discovered edges passing through the vertex.
    let incident: Vec<&lbs_geom::HalfPlane> = cell
        .halfplanes
        .iter()
        .filter(|hp| hp.boundary.signed_distance(v).abs() < 0.05)
        .collect();
    if incident.len() < 2 {
        return Ok(None);
    }
    let d1 = incident[0];
    let d3 = incident[1];

    // Probe just outside each edge (and inside the other) to learn the
    // neighbouring tuples t2 and t3.
    let step = config.probe_step;
    let probe_outside =
        |hp_out: &lbs_geom::HalfPlane, hp_in: &lbs_geom::HalfPlane, s: f64| -> Point {
            // Move outward across hp_out and slightly inward w.r.t. hp_in so the
            // probe does not accidentally leave through the other edge.
            *v + hp_out.boundary.normal() * s - hp_in.boundary.normal() * (s * 0.5)
        };
    let q2 = probe_outside(d1, d3, step);
    let q3 = probe_outside(d3, d1, step);
    let t2 = oracle.top_ids(&q2)?.first().copied();
    let t3 = oracle.top_ids(&q3)?.first().copied();
    let (Some(t2), Some(t3)) = (t2, t3) else {
        return Ok(None);
    };
    if t2 == target || t3 == target || t2 == t3 {
        return Ok(None);
    }

    // Two binary searches at two offsets from the vertex find two points of
    // d2 = bisector(t2, t3); the line through them gives d2's direction far
    // more accurately than relying on the (estimated) vertex itself.
    let mut point_on_d2 = |scale: f64| -> Result<Option<Point>, QueryError> {
        let a = probe_outside(d1, d3, step * scale);
        let b = probe_outside(d3, d1, step * scale);
        if oracle.top_ids(&a)?.first().copied() != Some(t2)
            || oracle.top_ids(&b)?.first().copied() != Some(t3)
        {
            return Ok(None);
        }
        let mut lo = a;
        let mut hi = b;
        while lo.distance(&hi) > config.delta {
            let mid = lo.midpoint(&hi);
            let top = oracle.top_ids(&mid)?.first().copied();
            if top == Some(t2) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(lo.midpoint(&hi)))
    };
    let p_a = point_on_d2(1.0)?;
    let p_b = point_on_d2(3.0)?;
    let (d2, anchor) = match (p_a, p_b) {
        (Some(a), Some(b)) if a.distance(&b) > 1e-6 => match Line::through(&a, &b) {
            Some(l) => (l, a),
            None => return Ok(None),
        },
        (Some(a), _) if a.distance(v) > 1e-6 => match Line::through(v, &a) {
            Some(l) => (l, a),
            None => return Ok(None),
        },
        _ => return Ok(None),
    };
    let _ = anchor;

    // θ = α1 + α3 − α2 (all direction angles taken mod π).
    let alpha1 = line_angle(&d1.boundary);
    let alpha2 = line_angle(&d2);
    let alpha3 = line_angle(&d3.boundary);
    let theta = alpha1 + alpha3 - alpha2;
    let candidate = Point::new(theta.cos(), theta.sin());

    // Resolve the mod-π ambiguity: the tuple lies inside its own cell, so the
    // correct direction steps into the cell.
    let inside = |dir: &Point| {
        let probe = *v + *dir * (config.probe_step * 0.2);
        cell.halfplanes.iter().all(|hp| hp.contains(&probe))
    };
    let direction = if inside(&candidate) {
        candidate
    } else if inside(&(-candidate)) {
        -candidate
    } else {
        return Ok(None);
    };
    Ok(Some(VertexRay {
        origin: *v,
        direction,
    }))
}

/// Direction angle of a line, normalised into `[0, π)`.
fn line_angle(line: &Line) -> f64 {
    let a = line.direction().angle();
    let a = if a < 0.0 { a + std::f64::consts::PI } else { a };
    a % std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lnr::cell::{explore_cell, LnrExploreConfig};
    use lbs_data::{Dataset, ScenarioBuilder, Tuple};
    use lbs_service::{ServiceConfig, SimulatedLbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn service(points: &[(f64, f64)], k: usize) -> SimulatedLbs {
        let tuples: Vec<Tuple> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Tuple::new(i as u64, Point::new(*x, *y)))
            .collect();
        SimulatedLbs::new(Dataset::new(tuples, region()), ServiceConfig::lnr_lbs(k))
    }

    fn locate_one(svc: &SimulatedLbs, id: u64, seed: Point) -> Option<Point> {
        let mut oracle = RankOracle::new(svc, 1);
        let cell = explore_cell(
            &mut oracle,
            id,
            seed,
            &region(),
            &LnrExploreConfig {
                delta: 0.02,
                ..LnrExploreConfig::default()
            },
        )
        .unwrap();
        infer_position(&mut oracle, id, &cell, &region(), &LocateConfig::default()).unwrap()
    }

    #[test]
    fn locates_an_interior_tuple_accurately() {
        // Tuple 0 is fully surrounded so its cell has only bisector edges.
        let pts = vec![
            (50.0, 50.0),
            (20.0, 45.0),
            (75.0, 55.0),
            (55.0, 20.0),
            (45.0, 80.0),
            (25.0, 75.0),
            (70.0, 25.0),
        ];
        let svc = service(&pts, 5);
        let truth = Point::new(50.0, 50.0);
        let inferred = locate_one(&svc, 0, truth).expect("position should be inferable");
        assert!(
            inferred.distance(&truth) < 1.0,
            "inferred {inferred:?} too far from {truth:?}"
        );
    }

    #[test]
    fn localization_error_tracks_obfuscation() {
        // With WeChat-style obfuscation the service ranks by snapped
        // positions, so the inferred position approximates the snapped
        // location — the error is bounded by the obfuscation grid size.
        let pts = [
            (50.0, 50.0),
            (20.0, 45.0),
            (75.0, 55.0),
            (55.0, 20.0),
            (45.0, 80.0),
            (25.0, 75.0),
        ];
        let tuples: Vec<Tuple> = pts
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Tuple::new(i as u64, Point::new(*x, *y)))
            .collect();
        let cfg = ServiceConfig::lnr_lbs(5).with_obfuscation(3.0);
        let svc = SimulatedLbs::new(Dataset::new(tuples, region()), cfg);
        let truth = Point::new(50.0, 50.0);
        if let Some(inferred) = {
            let mut oracle = RankOracle::new(&svc, 1);
            let cell = explore_cell(
                &mut oracle,
                0,
                truth,
                &region(),
                &LnrExploreConfig::default(),
            )
            .unwrap();
            infer_position(&mut oracle, 0, &cell, &region(), &LocateConfig::default()).unwrap()
        } {
            // Error bounded by the obfuscation cell diagonal plus slack.
            assert!(
                inferred.distance(&truth) < 3.0 * std::f64::consts::SQRT_2 + 1.0,
                "error {} exceeds obfuscation bound",
                inferred.distance(&truth)
            );
        }
    }

    #[test]
    fn returns_none_for_single_tuple_database() {
        // No bisector edges at all: inference is impossible.
        let svc = service(&[(50.0, 50.0)], 1);
        assert!(locate_one(&svc, 0, Point::new(50.0, 50.0)).is_none());
    }

    #[test]
    fn returns_none_for_h_greater_than_one() {
        let pts = vec![(50.0, 50.0), (20.0, 45.0), (75.0, 55.0), (55.0, 20.0)];
        let svc = service(&pts, 4);
        let mut oracle = RankOracle::new(&svc, 2);
        let cell = explore_cell(
            &mut oracle,
            0,
            Point::new(50.0, 50.0),
            &region(),
            &LnrExploreConfig::default(),
        )
        .unwrap();
        let res =
            infer_position(&mut oracle, 0, &cell, &region(), &LocateConfig::default()).unwrap();
        assert!(res.is_none());
    }

    #[test]
    fn locates_most_tuples_of_a_random_scatter() {
        let mut rng = StdRng::seed_from_u64(31);
        let dataset = ScenarioBuilder::uniform_points(40, region()).build(&mut rng);
        let svc = SimulatedLbs::new(dataset.clone(), ServiceConfig::lnr_lbs(5));
        let mut attempts = 0;
        let mut located_within_2km = 0;
        for t in dataset.tuples().iter().take(12) {
            attempts += 1;
            if let Some(p) = locate_one(&svc, t.id, t.location) {
                if p.distance(&t.location) < 2.0 {
                    located_within_2km += 1;
                }
            }
        }
        // The paper locates >80% of POIs within 20 m on Google Places; on
        // this clean simulator the overwhelming majority must localise well.
        assert!(
            located_within_2km * 2 >= attempts,
            "only {located_within_2km}/{attempts} tuples localised within 2 km"
        );
    }

    #[test]
    fn located_tuple_struct_roundtrip() {
        let l = LocatedTuple {
            id: 5,
            position: Point::new(1.0, 2.0),
        };
        assert_eq!(l, l.clone());
    }
}
