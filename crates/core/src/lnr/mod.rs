//! LNR-LBS-AGG: aggregate estimation over rank-only interfaces (paper §4).
//!
//! LNR-LBS interfaces (WeChat, Sina Weibo) return only a ranked list of tuple
//! ids — no coordinates, no distances. The estimator therefore cannot compute
//! Voronoi cells from tuple locations; instead it *infers* each cell edge by
//! a binary search on query locations: walking along a ray from a point known
//! to return the tuple until the tuple drops out of the answer brackets a
//! point of the cell boundary, and two such brackets on slightly rotated rays
//! pin down the edge line to arbitrary precision (Appendix A of the paper).
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`binary_search`] | Appendix A, Alg. 7 | the edge-finding primitive with (δ, δ′) error control |
//! | [`cell`] | §4.1, §4.2 | cell construction by vertex testing, concavity repair for k > 1 |
//! | [`locate`] | §4.3 | tuple-position inference from two cell vertices |
//! | [`estimator`] | Alg. 6 | the LNR-LBS-AGG estimator |
//!
//! The resulting estimates are not exactly unbiased — the recovered cell can
//! differ from the true one by at most the edge error ε — but the bias is
//! bounded by the paper's Theorem 2 and shrinks as `log(1/ε)` more queries
//! are spent per edge.

pub mod binary_search;
pub mod cell;
pub mod estimator;
pub mod locate;

pub use binary_search::{find_bisector, find_edge, EdgeEstimate, RankOracle};
pub use cell::{explore_cell, explore_cell_with, LnrCellOutcome};
pub use estimator::{LnrLbsAgg, LnrLbsAggConfig};
pub use locate::{infer_position, LocatedTuple};
