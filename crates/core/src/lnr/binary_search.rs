//! The binary-search edge-finding primitive (paper Appendix A, Algorithm 7).
//!
//! Given a location `c1` known to return the target tuple within the top h
//! and a direction, the primitive walks the half-line from `c1` until the
//! target drops out of the answer, brackets the crossing within `δ`, repeats
//! the bracketing on two rays rotated by `±arcsin(δ′/r)`, and reports the
//! line through the two bracket midpoints as the estimated Voronoi edge. The
//! edge error is bounded by the paper's Theorem 3 and can be made arbitrarily
//! small by shrinking `δ` and `δ′` at `O(log(b/δ))` queries per edge.

use std::collections::{BTreeMap, HashMap};

use lbs_data::TupleId;
use lbs_geom::{Line, Point, Ray, Rect};
use lbs_service::{LbsBackend, QueryError};

/// Rank-only oracle over an LNR interface: answers "which tuple ids are in
/// the top h at this location", memoising answers so that repeated probes of
/// the same location (frequent during vertex testing) cost only one query.
pub struct RankOracle<'a, S: LbsBackend + ?Sized = dyn LbsBackend> {
    service: &'a S,
    h: usize,
    /// Memoised full answers (all returned ids in rank order) per location.
    // lbs-lint: allow(hashmap-iter, reason = "location-keyed memo cache; exact-key get/insert only, never iterated")
    cache: HashMap<(i64, i64), Vec<TupleId>>,
    queries: u64,
    /// Every tuple id ever observed in an answer, with one location where it
    /// was observed (used by the concavity repair and position inference).
    /// Ordered map: the concavity repair iterates it, and the probe order
    /// must be deterministic for bit-identical estimates across runs.
    companions: BTreeMap<TupleId, Point>,
}

impl<'a, S: LbsBackend + ?Sized> RankOracle<'a, S> {
    /// Creates an oracle that asks for the top `h` ids of each answer.
    pub fn new(service: &'a S, h: usize) -> Self {
        RankOracle {
            service,
            h,
            // lbs-lint: allow(hashmap-iter, reason = "location-keyed memo cache; exact-key get/insert only, never iterated")
            cache: HashMap::new(),
            queries: 0,
            companions: BTreeMap::new(),
        }
    }

    /// The `h` of the top-h membership the oracle tests.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Queries issued so far through this oracle (cache hits excluded).
    pub fn queries_used(&self) -> u64 {
        self.queries
    }

    /// Every tuple id observed so far, with one query location where it
    /// appeared.
    pub fn companions(&self) -> &BTreeMap<TupleId, Point> {
        &self.companions
    }

    fn quantize(p: &Point) -> (i64, i64) {
        ((p.x * 1e7).round() as i64, (p.y * 1e7).round() as i64)
    }

    /// The ids of the full answer at `q` (up to the interface's k), in rank
    /// order.
    pub fn full_ids(&mut self, q: &Point) -> Result<Vec<TupleId>, QueryError> {
        let key = Self::quantize(q);
        if let Some(ids) = self.cache.get(&key) {
            return Ok(ids.clone());
        }
        let resp = self.service.query(q)?;
        self.queries += 1;
        let ids: Vec<TupleId> = resp.results.iter().map(|r| r.id).collect();
        for id in &ids {
            self.companions.entry(*id).or_insert(*q);
        }
        self.cache.insert(key, ids.clone());
        Ok(ids)
    }

    /// The ids of the top-h tuples at `q`, in rank order.
    pub fn top_ids(&mut self, q: &Point) -> Result<Vec<TupleId>, QueryError> {
        let mut ids = self.full_ids(q)?;
        ids.truncate(self.h);
        Ok(ids)
    }

    /// `true` when the target appears in the top h at `q`.
    pub fn in_cell(&mut self, target: TupleId, q: &Point) -> Result<bool, QueryError> {
        Ok(self.top_ids(q)?.contains(&target))
    }

    /// `true` when `other` ranks strictly above `target` at `q` (i.e. the
    /// query location is on `other`'s side of their perpendicular bisector).
    /// Ids missing from the answer are treated as ranking below every id
    /// that is present; when both are missing the location is treated as
    /// being on `other`'s side (the conservative choice for edge searches
    /// walking away from the target).
    pub fn prefers(
        &mut self,
        other: TupleId,
        target: TupleId,
        q: &Point,
    ) -> Result<bool, QueryError> {
        let ids = self.full_ids(q)?;
        let pos_other = ids.iter().position(|id| *id == other);
        let pos_target = ids.iter().position(|id| *id == target);
        Ok(match (pos_other, pos_target) {
            (Some(o), Some(t)) => o < t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => true,
        })
    }
}

/// An estimated Voronoi edge produced by the binary search.
#[derive(Clone, Debug)]
pub struct EdgeEstimate {
    /// The estimated edge line.
    pub line: Line,
    /// A point just inside the cell, adjacent to the edge (the `c3` of the
    /// paper). Used to orient the edge's half-plane.
    pub inside_point: Point,
    /// A point just outside the cell across the edge (the `c4`).
    pub outside_point: Point,
    /// The tuple that displaces the target across this edge, when it could be
    /// identified (the `t'` of the paper).
    pub crossing_tuple: Option<TupleId>,
}

/// Binary-searches along the segment from `from` (inside the cell) to `to`
/// (outside) until the bracket is shorter than `delta`. Returns
/// `(inside_point, outside_point, ids_at_outside)`.
fn bracket_crossing<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    from: Point,
    to: Point,
    delta: f64,
) -> Result<(Point, Point, Vec<TupleId>), QueryError> {
    let mut lo = from;
    let mut hi = to;
    let mut ids_hi = oracle.top_ids(&hi)?;
    while lo.distance(&hi) > delta {
        let mid = lo.midpoint(&hi);
        let ids_mid = oracle.top_ids(&mid)?;
        if ids_mid.contains(&target) {
            lo = mid;
        } else {
            hi = mid;
            ids_hi = ids_mid;
        }
    }
    Ok((lo, hi, ids_hi))
}

/// Binary-searches along the segment from `from` (where `target` ranks above
/// `other`) to `to` (where `other` ranks above `target`) for their
/// perpendicular bisector, until the bracket is shorter than `delta`.
fn bracket_pairwise<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    other: TupleId,
    from: Point,
    to: Point,
    delta: f64,
) -> Result<(Point, Point), QueryError> {
    let mut lo = from;
    let mut hi = to;
    while lo.distance(&hi) > delta {
        let mid = lo.midpoint(&hi);
        if oracle.prefers(other, target, &mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok((lo, hi))
}

/// Finds the perpendicular bisector between `target` and a specific other
/// tuple `other` using the pairwise-rank predicate throughout.
///
/// `from` must be a location where `target` ranks above `other` and `to` one
/// where `other` ranks above `target` (e.g. a failed cell vertex). This is
/// the primitive behind the §4.2 concavity repair: it pins down the edge
/// contributed by one specific neighbour even when the plain top-h
/// membership predicate would flip on a different edge first.
#[allow(clippy::too_many_arguments)] // mirrors the paper's primitive: endpoints, pair, precisions
pub fn find_bisector<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    other: TupleId,
    from: Point,
    to: Point,
    bbox: &Rect,
    delta: f64,
    delta_prime: f64,
) -> Result<Option<EdgeEstimate>, QueryError> {
    if oracle.prefers(other, target, &from)? || !oracle.prefers(other, target, &to)? {
        return Ok(None);
    }
    let (c3, c4) = bracket_pairwise(oracle, target, other, from, to, delta)?;
    let midpoint_primary = c3.midpoint(&c4);
    let r = from.distance(&c4);
    let Some(ray) = Ray::towards(from, to) else {
        return Ok(None);
    };
    let fallback = || {
        Line::with_normal(&ray.direction, &midpoint_primary).map(|line| EdgeEstimate {
            line,
            inside_point: c3,
            outside_point: c4,
            crossing_tuple: Some(other),
        })
    };
    if delta_prime >= r || r <= f64::EPSILON {
        return Ok(fallback());
    }
    let angle = (delta_prime / r).asin();
    for rotated in [ray.rotated(angle), ray.rotated(-angle)] {
        let far_t = rotated.exit_from_rect(bbox).unwrap_or(r * 1.5).min(r * 1.5);
        let far = rotated.at(far_t);
        if !oracle.prefers(other, target, &far)? {
            continue;
        }
        let (c5, c6) = bracket_pairwise(oracle, target, other, from, far, delta)?;
        let midpoint_secondary = c5.midpoint(&c6);
        if let Some(line) = Line::through(&midpoint_primary, &midpoint_secondary) {
            return Ok(Some(EdgeEstimate {
                line,
                inside_point: c3,
                outside_point: c4,
                crossing_tuple: Some(other),
            }));
        }
    }
    Ok(fallback())
}

/// Algorithm 7: finds the Voronoi edge of `target`'s top-h cell that the ray
/// from `c1` in `direction` crosses first.
///
/// Returns `Ok(None)` when the ray reaches the bounding box without leaving
/// the cell (the cell is bounded by the box in that direction) or when the
/// direction is degenerate.
pub fn find_edge<S: lbs_service::LbsBackend + ?Sized>(
    oracle: &mut RankOracle<'_, S>,
    target: TupleId,
    c1: Point,
    direction: Point,
    bbox: &Rect,
    delta: f64,
    delta_prime: f64,
) -> Result<Option<EdgeEstimate>, QueryError> {
    let Some(ray) = Ray::new(c1, direction) else {
        return Ok(None);
    };
    let Some(t_exit) = ray.exit_from_rect(bbox) else {
        return Ok(None);
    };
    if t_exit <= delta {
        return Ok(None);
    }
    let cb = ray.at(t_exit);
    // If the exit point still returns the target, the cell reaches the box in
    // this direction and there is no edge to find.
    if oracle.in_cell(target, &cb)? {
        return Ok(None);
    }

    // Primary bracket along the ray.
    let (c3, c4, ids_c4) = bracket_crossing(oracle, target, c1, cb, delta)?;
    let ids_c3 = oracle.top_ids(&c3)?;
    let crossing_tuple = ids_c4
        .iter()
        .find(|id| !ids_c3.contains(id) && **id != target)
        .copied();

    let midpoint_primary = c3.midpoint(&c4);
    let r = c1.distance(&c4);
    let fallback = || {
        // Perpendicular to the ray at the primary midpoint — the paper's
        // fallback when no secondary bracket can be found.
        Line::with_normal(&ray.direction, &midpoint_primary).map(|line| EdgeEstimate {
            line,
            inside_point: c3,
            outside_point: c4,
            crossing_tuple,
        })
    };
    if delta_prime >= r || r <= f64::EPSILON {
        return Ok(fallback());
    }

    // Secondary brackets along the two rotated rays. When the displacing
    // tuple t′ is known, the bracket predicate is the *pairwise rank* of the
    // target versus t′ — it flips exactly on their perpendicular bisector,
    // which keeps the secondary bracket on the same edge even near concave
    // corners of top-h cells where the plain membership predicate would jump
    // to a different edge.
    let angle = (delta_prime / r).asin();
    for rotated in [ray.rotated(angle), ray.rotated(-angle)] {
        let Some(t_exit2) = rotated.exit_from_rect(bbox) else {
            continue;
        };
        let far = rotated.at(t_exit2);
        let midpoint_secondary = if let Some(t_prime) = crossing_tuple {
            if oracle.prefers(t_prime, target, &far)? {
                let (c5, c6) = bracket_pairwise(oracle, target, t_prime, c1, far, delta)?;
                Some(c5.midpoint(&c6))
            } else {
                None
            }
        } else {
            if oracle.in_cell(target, &far)? {
                None
            } else {
                let (c5, c6, _) = bracket_crossing(oracle, target, c1, far, delta)?;
                Some(c5.midpoint(&c6))
            }
        };
        let Some(midpoint_secondary) = midpoint_secondary else {
            continue;
        };
        if let Some(line) = Line::through(&midpoint_primary, &midpoint_secondary) {
            return Ok(Some(EdgeEstimate {
                line,
                inside_point: c3,
                outside_point: c4,
                crossing_tuple,
            }));
        }
    }
    Ok(fallback())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_data::{Dataset, Tuple};
    use lbs_service::{ServiceConfig, SimulatedLbs};

    fn region() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn service(points: &[(f64, f64)], k: usize) -> SimulatedLbs {
        let tuples: Vec<Tuple> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Tuple::new(i as u64, Point::new(*x, *y)))
            .collect();
        SimulatedLbs::new(Dataset::new(tuples, region()), ServiceConfig::lnr_lbs(k))
    }

    #[test]
    fn oracle_caches_and_counts() {
        let svc = service(&[(25.0, 50.0), (75.0, 50.0)], 2);
        let mut oracle = RankOracle::new(&svc, 1);
        let q = Point::new(10.0, 50.0);
        assert_eq!(oracle.top_ids(&q).unwrap(), vec![0]);
        assert_eq!(oracle.top_ids(&q).unwrap(), vec![0]);
        assert_eq!(oracle.queries_used(), 1, "second call must hit the cache");
        assert!(oracle.in_cell(0, &q).unwrap());
        assert!(!oracle.in_cell(1, &q).unwrap());
        assert!(oracle.companions().contains_key(&0));
    }

    #[test]
    fn finds_the_bisector_between_two_tuples() {
        // Two tuples; the Voronoi edge is the vertical line x = 50.
        let svc = service(&[(25.0, 50.0), (75.0, 50.0)], 2);
        let mut oracle = RankOracle::new(&svc, 1);
        let edge = find_edge(
            &mut oracle,
            0,
            Point::new(25.0, 50.0),
            Point::new(1.0, 0.0),
            &region(),
            0.01,
            0.5,
        )
        .unwrap()
        .expect("edge must exist towards the other tuple");
        // The estimated line should be very close to x = 50: check two points.
        for y in [10.0, 90.0] {
            let p = Point::new(50.0, y);
            assert!(
                edge.line.signed_distance(&p).abs() < 0.5,
                "estimated edge too far from x=50 at y={y}: {}",
                edge.line.signed_distance(&p)
            );
        }
        assert_eq!(edge.crossing_tuple, Some(1));
        assert!(oracle.in_cell(0, &edge.inside_point).unwrap());
        assert!(!oracle.in_cell(0, &edge.outside_point).unwrap());
    }

    #[test]
    fn no_edge_when_cell_reaches_the_box() {
        // A single tuple owns the whole box; no edge in any direction.
        let svc = service(&[(50.0, 50.0)], 1);
        let mut oracle = RankOracle::new(&svc, 1);
        let edge = find_edge(
            &mut oracle,
            0,
            Point::new(50.0, 50.0),
            Point::new(1.0, 0.0),
            &region(),
            0.01,
            0.5,
        )
        .unwrap();
        assert!(edge.is_none());
    }

    #[test]
    fn diagonal_bisector_is_recovered() {
        // Tuples at (30,30) and (70,70): the bisector is the line x + y = 100.
        let svc = service(&[(30.0, 30.0), (70.0, 70.0)], 2);
        let mut oracle = RankOracle::new(&svc, 1);
        let edge = find_edge(
            &mut oracle,
            0,
            Point::new(30.0, 30.0),
            Point::new(1.0, 1.0),
            &region(),
            0.01,
            0.5,
        )
        .unwrap()
        .expect("edge exists");
        for t in [-20.0, 0.0, 20.0] {
            // Points on the true bisector.
            let p = Point::new(50.0 + t, 50.0 - t);
            assert!(
                edge.line.signed_distance(&p).abs() < 1.0,
                "estimated diagonal edge off by {} at {p:?}",
                edge.line.signed_distance(&p)
            );
        }
    }

    #[test]
    fn query_cost_scales_logarithmically_with_delta() {
        let svc = service(&[(25.0, 50.0), (75.0, 50.0)], 2);
        let mut coarse = RankOracle::new(&svc, 1);
        find_edge(
            &mut coarse,
            0,
            Point::new(25.0, 50.0),
            Point::new(1.0, 0.0),
            &region(),
            1.0,
            0.5,
        )
        .unwrap();
        let coarse_cost = coarse.queries_used();
        let mut fine = RankOracle::new(&svc, 1);
        find_edge(
            &mut fine,
            0,
            Point::new(25.0, 50.0),
            Point::new(1.0, 0.0),
            &region(),
            0.001,
            0.5,
        )
        .unwrap();
        let fine_cost = fine.queries_used();
        assert!(fine_cost > coarse_cost);
        // 1000x finer precision should cost only ~10 extra bisection steps
        // per bracket, nowhere near 1000x.
        assert!(
            fine_cost < coarse_cost + 45,
            "fine {fine_cost} coarse {coarse_cost}"
        );
    }

    #[test]
    fn top2_membership_edge() {
        // Three collinear tuples; for the middle tuple with h = 2 the cell
        // spans everything between the outer tuples' far bisectors.
        let svc = service(&[(20.0, 50.0), (50.0, 50.0), (80.0, 50.0)], 3);
        let mut oracle = RankOracle::new(&svc, 2);
        // Tuple 1 (centre) is in the top-2 everywhere except far beyond the
        // outer tuples; walking right from the centre the membership boundary
        // is the bisector of tuples 0 and 2 relative to 1... concretely the
        // point where tuple 1 falls to rank 3: x = 65 (bisector of 1 and 0 is
        // x=35; of 1 and 2 is x=65; beyond x=65 ranks are 2,1 then 0 closer
        // than 1? At x=70: d(0)=50, d(1)=20, d(2)=10 → top-2 = {2,1} so 1 is
        // still in. Actually tuple 1 is in the top-2 of every location on the
        // segment, so the edge search must reach the box and report None.
        let edge = find_edge(
            &mut oracle,
            1,
            Point::new(50.0, 50.0),
            Point::new(1.0, 0.0),
            &region(),
            0.01,
            0.5,
        )
        .unwrap();
        assert!(edge.is_none());
    }
}
