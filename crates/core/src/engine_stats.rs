//! Counters of the pruned cell-geometry engine.
//!
//! Every estimator routes its cell constructions through
//! [`lbs_geom::cell_engine`]; the counters here record how much work the
//! security-radius pruning and the [`crate::lr::History`] cell cache saved.
//! They are pure telemetry — no algorithm reads them back — so they can be
//! summed in any order without affecting the bit-exact determinism
//! guarantees of the estimators. `repro` surfaces them per experiment in
//! `BENCH_repro.json` and as a one-line summary in its console output.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Aggregated cell-engine counters for one estimation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Cells (or level regions) constructed through the engine.
    pub cells_built: u64,
    /// Candidates actually incorporated (half-plane clips performed, or
    /// active bisectors of a concave construction).
    pub clips: u64,
    /// Candidates skipped under the security-radius certificate.
    pub pruned: u64,
    /// Cell-cache lookups that replayed a stored exploration.
    pub cache_hits: u64,
    /// Subset of `cache_hits` admitted by the prefix certificate: the stored
    /// seed list was a proper prefix of the current one and every extra seed
    /// was certified too far to have changed the stored exploration.
    pub cache_prefix_hits: u64,
    /// Cell-cache lookups that fell through to a fresh exploration.
    pub cache_misses: u64,
    /// Misses because no exploration of the site was stored at any `h`.
    pub cache_miss_new_site: u64,
    /// Misses because the site was stored, but only at other `h` levels.
    pub cache_miss_other_h: u64,
    /// Misses because the stored `(site, h)` entry's fingerprint no longer
    /// matched (the history learned nearer tuples, or region/nearest drifted).
    pub cache_miss_stale: u64,
    /// Adaptive-h volume-bound (λ_h) cache hits.
    pub lambda_hits: u64,
    /// Subset of `lambda_hits` admitted by the prefix certificate.
    pub lambda_prefix_hits: u64,
    /// Adaptive-h volume-bound (λ_h) cache misses.
    pub lambda_misses: u64,
    /// Queries re-issued while replaying a cached exploration (kept so the
    /// cached and uncached paths stay bit-identical in cost and state).
    pub replayed_queries: u64,
    /// Monte-Carlo probe points the NNO baseline answered geometrically
    /// (provably outside the top-1 cell) without spending a service query.
    pub mc_certified: u64,
}

impl EngineReport {
    /// Adds another report's counters into this one.
    pub fn add(&mut self, other: &EngineReport) {
        self.cells_built += other.cells_built;
        self.clips += other.clips;
        self.pruned += other.pruned;
        self.cache_hits += other.cache_hits;
        self.cache_prefix_hits += other.cache_prefix_hits;
        self.cache_misses += other.cache_misses;
        self.cache_miss_new_site += other.cache_miss_new_site;
        self.cache_miss_other_h += other.cache_miss_other_h;
        self.cache_miss_stale += other.cache_miss_stale;
        self.lambda_hits += other.lambda_hits;
        self.lambda_prefix_hits += other.lambda_prefix_hits;
        self.lambda_misses += other.lambda_misses;
        self.replayed_queries += other.replayed_queries;
        self.mc_certified += other.mc_certified;
    }

    /// Counter-wise difference `self - earlier` (saturating), for deltas
    /// between two snapshots of a long-lived accumulator.
    pub fn since(&self, earlier: &EngineReport) -> EngineReport {
        EngineReport {
            cells_built: self.cells_built.saturating_sub(earlier.cells_built),
            clips: self.clips.saturating_sub(earlier.clips),
            pruned: self.pruned.saturating_sub(earlier.pruned),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_prefix_hits: self
                .cache_prefix_hits
                .saturating_sub(earlier.cache_prefix_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_miss_new_site: self
                .cache_miss_new_site
                .saturating_sub(earlier.cache_miss_new_site),
            cache_miss_other_h: self
                .cache_miss_other_h
                .saturating_sub(earlier.cache_miss_other_h),
            cache_miss_stale: self
                .cache_miss_stale
                .saturating_sub(earlier.cache_miss_stale),
            lambda_hits: self.lambda_hits.saturating_sub(earlier.lambda_hits),
            lambda_prefix_hits: self
                .lambda_prefix_hits
                .saturating_sub(earlier.lambda_prefix_hits),
            lambda_misses: self.lambda_misses.saturating_sub(earlier.lambda_misses),
            replayed_queries: self
                .replayed_queries
                .saturating_sub(earlier.replayed_queries),
            mc_certified: self.mc_certified.saturating_sub(earlier.mc_certified),
        }
    }

    /// Absorbs the counters of one geometric construction.
    pub fn record_build(&mut self, stats: &lbs_geom::CellBuildStats) {
        self.cells_built += 1;
        self.clips += stats.incorporated as u64;
        self.pruned += stats.pruned as u64;
    }

    /// Cell-cache hit rate over all lookups (`None` before any lookup).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Mean incorporated candidates (clips) per constructed cell.
    pub fn mean_clips_per_cell(&self) -> Option<f64> {
        (self.cells_built > 0).then(|| self.clips as f64 / self.cells_built as f64)
    }

    /// Fraction of offered candidates the certificate pruned away.
    pub fn pruned_fraction(&self) -> Option<f64> {
        let total = self.clips + self.pruned;
        (total > 0).then(|| self.pruned as f64 / total as f64)
    }
}

/// Thread-safe counter sink for estimators whose samples carry no shared
/// state (LNR, NNO). Counter sums are order-independent, so concurrent
/// accumulation cannot perturb the deterministic estimates.
#[derive(Debug, Default)]
pub struct SharedEngineCounters {
    cells_built: AtomicU64,
    clips: AtomicU64,
    pruned: AtomicU64,
    mc_certified: AtomicU64,
}

impl SharedEngineCounters {
    /// A zeroed sink.
    pub fn new() -> Self {
        SharedEngineCounters::default()
    }

    /// A sink pre-loaded from a snapshot — how a checkpointed session's
    /// counters are reconstructed on resume (only the build counters and
    /// `mc_certified` survive a [`SharedEngineCounters::report`] round
    /// trip, which is exactly what these sinks track).
    pub fn from_report(report: &EngineReport) -> Self {
        let sink = SharedEngineCounters::new();
        sink.add_report(report);
        sink
    }

    /// Absorbs the counters of one geometric construction.
    pub fn record_build(&self, stats: &lbs_geom::CellBuildStats) {
        self.cells_built.fetch_add(1, Ordering::Relaxed);
        self.clips
            .fetch_add(stats.incorporated as u64, Ordering::Relaxed);
        self.pruned
            .fetch_add(stats.pruned as u64, Ordering::Relaxed);
    }

    /// Counts one geometrically certified Monte-Carlo miss.
    pub fn record_mc_certified(&self) {
        self.mc_certified.fetch_add(1, Ordering::Relaxed);
    }

    /// Absorbs an already-aggregated report (build counters only).
    pub fn add_report(&self, report: &EngineReport) {
        self.cells_built
            .fetch_add(report.cells_built, Ordering::Relaxed);
        self.clips.fetch_add(report.clips, Ordering::Relaxed);
        self.pruned.fetch_add(report.pruned, Ordering::Relaxed);
        self.mc_certified
            .fetch_add(report.mc_certified, Ordering::Relaxed);
    }

    /// Snapshot as a plain report.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            cells_built: self.cells_built.load(Ordering::Relaxed),
            clips: self.clips.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            mc_certified: self.mc_certified.load(Ordering::Relaxed),
            ..EngineReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_since_are_inverse() {
        let mut a = EngineReport {
            cells_built: 3,
            clips: 10,
            pruned: 20,
            cache_hits: 1,
            cache_prefix_hits: 1,
            cache_misses: 2,
            cache_miss_new_site: 1,
            cache_miss_other_h: 1,
            cache_miss_stale: 0,
            lambda_hits: 4,
            lambda_prefix_hits: 2,
            lambda_misses: 5,
            replayed_queries: 6,
            mc_certified: 7,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.since(&b), b);
        assert_eq!(a.cells_built, 6);
    }

    #[test]
    fn rates() {
        let mut r = EngineReport::default();
        assert!(r.cache_hit_rate().is_none());
        assert!(r.mean_clips_per_cell().is_none());
        r.cache_hits = 3;
        r.cache_misses = 1;
        r.cells_built = 2;
        r.clips = 9;
        r.pruned = 27;
        assert!((r.cache_hit_rate().unwrap() - 0.75).abs() < 1e-12);
        assert!((r.mean_clips_per_cell().unwrap() - 4.5).abs() < 1e-12);
        assert!((r.pruned_fraction().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_counters_snapshot() {
        let sink = SharedEngineCounters::new();
        sink.record_build(&lbs_geom::CellBuildStats {
            candidates: 10,
            incorporated: 4,
            pruned: 6,
            security_radius: 1.0,
        });
        sink.record_mc_certified();
        let report = sink.report();
        assert_eq!(report.cells_built, 1);
        assert_eq!(report.clips, 4);
        assert_eq!(report.pruned, 6);
        assert_eq!(report.mc_certified, 1);
    }
}
