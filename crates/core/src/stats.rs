//! Sample statistics for the estimators.
//!
//! Every estimator in this crate produces one independent, (nearly) unbiased
//! per-query estimate per sampled query location and reports their mean. The
//! accuracy book-keeping is the standard survey-sampling machinery the paper
//! cites (§2.3): sample variance with Bessel's correction, standard error of
//! the mean, normal-approximation confidence intervals, relative error and
//! mean squared error.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of the observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Bessel-corrected sample variance (`None` with fewer than two
    /// observations).
    pub fn sample_variance(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.m2 / (self.count - 1) as f64)
        }
    }

    /// Population variance of the observations seen so far (`None` when
    /// empty).
    pub fn population_variance(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.m2 / self.count as f64)
        }
    }

    /// Standard error of the mean (`None` with fewer than two observations).
    pub fn std_error(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| (v / self.count as f64).sqrt())
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// z-score (1.96 for 95 %). Collapses to the point estimate when the
    /// standard error is unavailable.
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        match self.std_error() {
            Some(se) => (self.mean - z * se, self.mean + z * se),
            None => (self.mean, self.mean),
        }
    }

    /// Merges another accumulator into this one (parallel Welford update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

/// Relative error `|estimate − truth| / |truth|`.
///
/// Returns the absolute error when the truth is zero (the conventional
/// fall-back so that a perfect estimate still scores zero).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth.abs() <= f64::EPSILON {
        estimate.abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Mean squared error decomposition `bias² + variance` (paper §2.3).
pub fn mse(bias: f64, variance: f64) -> f64 {
    bias * bias + variance
}

/// Summary statistics of a finished set of observations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Bessel-corrected sample standard deviation (0 when undefined).
    pub std_dev: f64,
    /// Standard error of the mean (0 when undefined).
    pub std_error: f64,
}

impl From<&RunningStats> for Summary {
    fn from(s: &RunningStats) -> Self {
        Summary {
            count: s.count(),
            mean: s.mean(),
            std_dev: s.sample_variance().map(f64::sqrt).unwrap_or(0.0),
            std_error: s.std_error().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = RunningStats::new();
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for x in data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.sum() - 40.0).abs() < 1e-12);
        // Population variance of this classic data set is 4.
        assert!((s.population_variance().unwrap() - 4.0).abs() < 1e-12);
        // Bessel-corrected variance is 32/7.
        assert!((s.sample_variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_counts() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert!(s.sample_variance().is_none());
        assert!(s.population_variance().is_none());
        assert!(s.std_error().is_none());
        assert_eq!(s.confidence_interval(1.96), (0.0, 0.0));
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert!(s.sample_variance().is_none());
        assert_eq!(s.population_variance(), Some(0.0));
        assert_eq!(s.confidence_interval(1.96), (3.0, 3.0));
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let mut s = RunningStats::new();
        for i in 0..100 {
            s.push(10.0 + (i % 7) as f64);
        }
        let (lo, hi) = s.confidence_interval(1.96);
        assert!(lo < s.mean() && s.mean() < hi);
        let (lo99, hi99) = s.confidence_interval(2.58);
        assert!(lo99 < lo && hi < hi99);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance().unwrap() - whole.sample_variance().unwrap()).abs() < 1e-9);
        // Merging an empty accumulator is a no-op.
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        // Merging into an empty accumulator copies.
        let mut empty = RunningStats::new();
        empty.merge(&whole);
        assert!((empty.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn merge_agrees_with_single_pass_on_concatenated_stream() {
        // Parallel Welford: pushing stream A then stream B into one
        // accumulator must agree with push(A) ∥ push(B) followed by merge,
        // for uneven split sizes and adversarial magnitudes.
        let splits: &[(usize, usize)] = &[(0, 5), (1, 1), (1, 9), (7, 3), (50, 1), (33, 67)];
        for &(na, nb) in splits {
            let stream: Vec<f64> = (0..na + nb)
                .map(|i| 1e6 + ((i * 2_654_435_761) % 1_000) as f64 * 0.25 - 125.0)
                .collect();
            let mut whole = RunningStats::new();
            for &x in &stream {
                whole.push(x);
            }
            let mut a = RunningStats::new();
            let mut b = RunningStats::new();
            for &x in &stream[..na] {
                a.push(x);
            }
            for &x in &stream[na..] {
                b.push(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count(), "split ({na},{nb})");
            assert!(
                (a.mean() - whole.mean()).abs() <= 1e-9 * whole.mean().abs(),
                "split ({na},{nb}): merged mean {} vs single-pass {}",
                a.mean(),
                whole.mean()
            );
            match (a.sample_variance(), whole.sample_variance()) {
                (Some(va), Some(vw)) => assert!(
                    (va - vw).abs() <= 1e-9 * vw.abs().max(1.0),
                    "split ({na},{nb}): merged variance {va} vs single-pass {vw}"
                ),
                (None, None) => {}
                (va, vw) => panic!("split ({na},{nb}): variance {va:?} vs {vw:?}"),
            }
        }
    }

    #[test]
    fn confidence_interval_collapses_below_two_observations() {
        // n = 0: no standard error; the interval must collapse to the (zero)
        // point estimate rather than go NaN or infinite.
        let empty = RunningStats::new();
        assert_eq!(empty.confidence_interval(1.96), (0.0, 0.0));
        assert_eq!(empty.confidence_interval(0.0), (0.0, 0.0));

        // n = 1: variance is undefined under Bessel's correction, so the
        // interval collapses to the single observation at any z.
        let mut one = RunningStats::new();
        one.push(-7.25);
        for z in [0.0, 1.0, 1.96, 2.58, 100.0] {
            assert_eq!(one.confidence_interval(z), (-7.25, -7.25));
        }

        // n = 2 is the first width-bearing interval, and it is symmetric.
        let mut two = one.clone();
        two.push(-3.25);
        let (lo, hi) = two.confidence_interval(1.96);
        assert!(lo < two.mean() && two.mean() < hi);
        assert!(((two.mean() - lo) - (hi - two.mean())).abs() < 1e-12);
    }

    #[test]
    fn relative_error_conventions() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(5.0, 0.0), 5.0);
        assert!((relative_error(-110.0, -100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mse_decomposition() {
        assert_eq!(mse(3.0, 4.0), 13.0);
        assert_eq!(mse(0.0, 2.5), 2.5);
    }

    #[test]
    fn summary_from_stats() {
        let mut s = RunningStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        let sum: Summary = (&s).into();
        assert_eq!(sum.count, 3);
        assert!((sum.mean - 2.0).abs() < 1e-12);
        assert!((sum.std_dev - 1.0).abs() < 1e-12);
        assert!((sum.std_error - 1.0 / 3.0_f64.sqrt()).abs() < 1e-12);
    }
}
