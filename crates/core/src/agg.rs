//! Aggregate specifications: what is being estimated.
//!
//! The paper supports queries of the form
//!
//! ```sql
//! SELECT AGGR(t) FROM D WHERE Cond
//! ```
//!
//! where `AGGR` is COUNT, SUM or AVG over an attribute and `Cond` is any
//! selection condition evaluable on a single tuple — including conditions on
//! the tuple's *location*, which LNR-LBS interfaces do not even return
//! (position inference, §4.3, fills that gap).
//!
//! [`Aggregate`] captures the aggregate function plus a [`Selection`]; it can
//! be evaluated against a returned tuple (what the estimators do) and against
//! a raw dataset tuple (what the experiment harness does to obtain ground
//! truth).

use serde::{Deserialize, Serialize};

use lbs_data::{attrs, Dataset, Tuple};
use lbs_geom::{Point, Rect};
use lbs_service::{PassThroughFilter, ReturnedTuple};

/// The aggregate function of a query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AggFunction {
    /// `COUNT(*)` over the selected tuples.
    Count,
    /// `SUM(attr)` over the selected tuples; tuples missing the attribute
    /// contribute zero.
    Sum(String),
    /// `AVG(attr)` over the selected tuples, computed as SUM/COUNT exactly as
    /// the paper prescribes (§1.3).
    Avg(String),
}

/// A selection condition evaluable on a single tuple.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Selection {
    /// No condition: every tuple qualifies.
    All,
    /// Case-insensitive equality on a text attribute (e.g. brand =
    /// "Starbucks"). This is the kind of condition real LBS can evaluate
    /// server-side, so it is eligible for pass-through (§5.1).
    TextEquals {
        /// Attribute name.
        attr: String,
        /// Required value.
        value: String,
    },
    /// A numeric attribute is at least the given threshold (e.g. rating ≥ 4).
    AtLeast {
        /// Attribute name.
        attr: String,
        /// Minimum value (inclusive).
        min: f64,
    },
    /// A boolean attribute has the given value (e.g. open on Sundays).
    Flag {
        /// Attribute name.
        attr: String,
        /// Required value.
        expected: bool,
    },
    /// The tuple's location lies inside a rectangle (e.g. "in Austin, TX").
    /// For LNR-LBS this requires position inference before it can be
    /// evaluated.
    InRegion(Rect),
    /// Conjunction of conditions.
    And(Vec<Selection>),
}

impl Selection {
    /// Evaluates the condition against a raw dataset tuple (ground truth).
    pub fn matches_tuple(&self, tuple: &Tuple) -> bool {
        match self {
            Selection::All => true,
            Selection::TextEquals { attr, value } => tuple.text_eq(attr, value),
            Selection::AtLeast { attr, min } => tuple.num(attr).is_some_and(|v| v >= *min),
            Selection::Flag { attr, expected } => tuple.flag(attr) == Some(*expected),
            Selection::InRegion(rect) => rect.contains(&tuple.location),
            Selection::And(parts) => parts.iter().all(|p| p.matches_tuple(tuple)),
        }
    }

    /// Evaluates the condition against a returned tuple.
    ///
    /// `location` is the tuple's location as known to the estimator: the
    /// returned location for LR-LBS, an inferred position for LNR-LBS, or
    /// `None` when unknown. Returns `None` when the condition needs a
    /// location but none is available — the caller then has to infer one.
    pub fn matches_returned(
        &self,
        tuple: &ReturnedTuple,
        location: Option<&Point>,
    ) -> Option<bool> {
        match self {
            Selection::All => Some(true),
            Selection::TextEquals { attr, value } => Some(
                tuple
                    .text(attr)
                    .map(|t| t.eq_ignore_ascii_case(value))
                    .unwrap_or(false),
            ),
            Selection::AtLeast { attr, min } => Some(tuple.num(attr).is_some_and(|v| v >= *min)),
            Selection::Flag { attr, expected } => Some(tuple.flag(attr) == Some(*expected)),
            Selection::InRegion(rect) => location.map(|loc| rect.contains(loc)),
            Selection::And(parts) => {
                let mut all = true;
                for p in parts {
                    match p.matches_returned(tuple, location) {
                        Some(true) => {}
                        Some(false) => all = false,
                        None => return None,
                    }
                }
                Some(all)
            }
        }
    }

    /// `true` when evaluating the condition requires the tuple's location.
    pub fn needs_location(&self) -> bool {
        match self {
            Selection::InRegion(_) => true,
            Selection::And(parts) => parts.iter().any(|p| p.needs_location()),
            _ => false,
        }
    }

    /// Extracts the part of the condition that can be passed through to the
    /// LBS as a keyword filter (text-equality conditions only), if any.
    pub fn pass_through_filter(&self) -> Option<PassThroughFilter> {
        fn collect(sel: &Selection, filter: &mut PassThroughFilter) {
            match sel {
                Selection::TextEquals { attr, value } => {
                    filter.conditions.push((attr.clone(), value.clone()));
                }
                Selection::And(parts) => {
                    for p in parts {
                        collect(p, filter);
                    }
                }
                _ => {}
            }
        }
        let mut filter = PassThroughFilter::default();
        collect(self, &mut filter);
        if filter.conditions.is_empty() {
            None
        } else {
            Some(filter)
        }
    }
}

/// An aggregate query: function plus selection condition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// The aggregate function.
    pub function: AggFunction,
    /// The selection condition.
    pub selection: Selection,
}

impl Aggregate {
    /// `COUNT(*)` with no selection condition.
    pub fn count_all() -> Self {
        Aggregate {
            function: AggFunction::Count,
            selection: Selection::All,
        }
    }

    /// `COUNT(*)` with a selection condition.
    pub fn count_where(selection: Selection) -> Self {
        Aggregate {
            function: AggFunction::Count,
            selection,
        }
    }

    /// `SUM(attr)` with a selection condition.
    pub fn sum_where(attr: &str, selection: Selection) -> Self {
        Aggregate {
            function: AggFunction::Sum(attr.to_string()),
            selection,
        }
    }

    /// `AVG(attr)` with a selection condition.
    pub fn avg_where(attr: &str, selection: Selection) -> Self {
        Aggregate {
            function: AggFunction::Avg(attr.to_string()),
            selection,
        }
    }

    /// `COUNT` of restaurants (convenience for the experiments).
    pub fn count_restaurants() -> Self {
        Aggregate::count_where(Selection::TextEquals {
            attr: attrs::CATEGORY.to_string(),
            value: "restaurant".to_string(),
        })
    }

    /// `COUNT` of schools (convenience for the experiments).
    pub fn count_schools() -> Self {
        Aggregate::count_where(Selection::TextEquals {
            attr: attrs::CATEGORY.to_string(),
            value: "school".to_string(),
        })
    }

    /// `SUM(enrollment)` over schools (convenience for the experiments).
    pub fn sum_school_enrollment() -> Self {
        Aggregate::sum_where(
            attrs::ENROLLMENT,
            Selection::TextEquals {
                attr: attrs::CATEGORY.to_string(),
                value: "school".to_string(),
            },
        )
    }

    /// `true` when the aggregate is an AVG (estimated as a ratio of SUM and
    /// COUNT estimates).
    pub fn is_ratio(&self) -> bool {
        matches!(self.function, AggFunction::Avg(_))
    }

    /// `true` when evaluating the aggregate requires tuple locations (either
    /// through the selection condition or not at all for plain attributes).
    pub fn needs_location(&self) -> bool {
        self.selection.needs_location()
    }

    /// The numerator contribution of a returned tuple: the value that gets
    /// divided by the tuple's selection probability in the Horvitz–Thompson
    /// style estimator of the paper's equation (1).
    ///
    /// Returns `None` when the selection needs a location that is not
    /// available; returns `Some(0.0)` for tuples that fail the selection
    /// (paper §5.1: "return 0 as the estimation").
    pub fn numerator(&self, tuple: &ReturnedTuple, location: Option<&Point>) -> Option<f64> {
        let selected = self.selection.matches_returned(tuple, location)?;
        if !selected {
            return Some(0.0);
        }
        Some(match &self.function {
            AggFunction::Count => 1.0,
            AggFunction::Sum(attr) | AggFunction::Avg(attr) => tuple.num(attr).unwrap_or(0.0),
        })
    }

    /// The denominator contribution for ratio (AVG) aggregates: 1 for
    /// selected tuples, 0 otherwise. `None` under the same conditions as
    /// [`Aggregate::numerator`].
    pub fn denominator(&self, tuple: &ReturnedTuple, location: Option<&Point>) -> Option<f64> {
        let selected = self.selection.matches_returned(tuple, location)?;
        Some(if selected { 1.0 } else { 0.0 })
    }

    /// Ground-truth value of the aggregate over a dataset, restricted to
    /// tuples inside `region`.
    pub fn ground_truth(&self, dataset: &Dataset, region: &Rect) -> f64 {
        let pred = |t: &Tuple| region.contains(&t.location) && self.selection.matches_tuple(t);
        match &self.function {
            AggFunction::Count => dataset.count_where(pred) as f64,
            AggFunction::Sum(attr) => dataset.sum_where(attr, pred),
            AggFunction::Avg(attr) => dataset.avg_where(attr, pred).unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn returned(attrs_list: &[(&str, lbs_data::AttrValue)]) -> ReturnedTuple {
        let mut attributes = BTreeMap::new();
        for (k, v) in attrs_list {
            attributes.insert(k.to_string(), v.clone());
        }
        ReturnedTuple {
            id: 1,
            rank: 1,
            location: None,
            distance: None,
            attributes,
        }
    }

    #[test]
    fn selection_on_tuples() {
        let t = Tuple::new(0, Point::new(5.0, 5.0))
            .with_attr(attrs::CATEGORY, "restaurant")
            .with_attr(attrs::RATING, 4.2)
            .with_attr(attrs::OPEN_SUNDAY, true);
        assert!(Selection::All.matches_tuple(&t));
        assert!(Selection::TextEquals {
            attr: attrs::CATEGORY.into(),
            value: "Restaurant".into()
        }
        .matches_tuple(&t));
        assert!(Selection::AtLeast {
            attr: attrs::RATING.into(),
            min: 4.0
        }
        .matches_tuple(&t));
        assert!(!Selection::AtLeast {
            attr: attrs::RATING.into(),
            min: 4.5
        }
        .matches_tuple(&t));
        assert!(Selection::Flag {
            attr: attrs::OPEN_SUNDAY.into(),
            expected: true
        }
        .matches_tuple(&t));
        assert!(Selection::InRegion(Rect::from_bounds(0.0, 0.0, 10.0, 10.0)).matches_tuple(&t));
        assert!(!Selection::InRegion(Rect::from_bounds(20.0, 20.0, 30.0, 30.0)).matches_tuple(&t));
        let and = Selection::And(vec![
            Selection::TextEquals {
                attr: attrs::CATEGORY.into(),
                value: "restaurant".into(),
            },
            Selection::AtLeast {
                attr: attrs::RATING.into(),
                min: 4.0,
            },
        ]);
        assert!(and.matches_tuple(&t));
    }

    #[test]
    fn selection_on_returned_tuples_needs_location_for_regions() {
        let r = returned(&[(attrs::GENDER, lbs_data::AttrValue::Text("male".into()))]);
        let region = Selection::InRegion(Rect::from_bounds(0.0, 0.0, 10.0, 10.0));
        assert_eq!(region.matches_returned(&r, None), None);
        assert_eq!(
            region.matches_returned(&r, Some(&Point::new(5.0, 5.0))),
            Some(true)
        );
        assert_eq!(
            region.matches_returned(&r, Some(&Point::new(50.0, 5.0))),
            Some(false)
        );
        assert!(region.needs_location());
        assert!(!Selection::All.needs_location());
        let and = Selection::And(vec![Selection::All, region]);
        assert!(and.needs_location());
        assert_eq!(and.matches_returned(&r, None), None);
    }

    #[test]
    fn pass_through_extraction() {
        let sel = Selection::And(vec![
            Selection::TextEquals {
                attr: attrs::BRAND.into(),
                value: "Starbucks".into(),
            },
            Selection::Flag {
                attr: attrs::OPEN_SUNDAY.into(),
                expected: true,
            },
        ]);
        let filter = sel.pass_through_filter().unwrap();
        assert_eq!(filter.conditions.len(), 1);
        assert_eq!(filter.conditions[0].0, attrs::BRAND);
        assert!(Selection::All.pass_through_filter().is_none());
    }

    #[test]
    fn numerator_for_each_function() {
        let r = returned(&[
            (attrs::CATEGORY, lbs_data::AttrValue::Text("school".into())),
            (attrs::ENROLLMENT, lbs_data::AttrValue::Float(800.0)),
        ]);
        let count = Aggregate::count_all();
        assert_eq!(count.numerator(&r, None), Some(1.0));
        let sum = Aggregate::sum_school_enrollment();
        assert_eq!(sum.numerator(&r, None), Some(800.0));
        let avg = Aggregate::avg_where(attrs::ENROLLMENT, Selection::All);
        assert_eq!(avg.numerator(&r, None), Some(800.0));
        assert_eq!(avg.denominator(&r, None), Some(1.0));
        // A tuple failing the selection contributes zero, not None.
        let not_school = returned(&[(attrs::CATEGORY, lbs_data::AttrValue::Text("cafe".into()))]);
        assert_eq!(sum.numerator(&not_school, None), Some(0.0));
        assert_eq!(sum.denominator(&not_school, None), Some(0.0));
    }

    #[test]
    fn ground_truth_matches_dataset_helpers() {
        let tuples = vec![
            Tuple::new(0, Point::new(1.0, 1.0))
                .with_attr(attrs::CATEGORY, "school")
                .with_attr(attrs::ENROLLMENT, 100.0),
            Tuple::new(1, Point::new(2.0, 2.0))
                .with_attr(attrs::CATEGORY, "school")
                .with_attr(attrs::ENROLLMENT, 300.0),
            Tuple::new(2, Point::new(50.0, 50.0))
                .with_attr(attrs::CATEGORY, "school")
                .with_attr(attrs::ENROLLMENT, 700.0),
        ];
        let d = Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 100.0, 100.0));
        let region = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        assert_eq!(Aggregate::count_schools().ground_truth(&d, &region), 2.0);
        assert_eq!(
            Aggregate::sum_school_enrollment().ground_truth(&d, &region),
            400.0
        );
        assert_eq!(
            Aggregate::avg_where(attrs::ENROLLMENT, Selection::All).ground_truth(&d, &region),
            200.0
        );
        let everywhere = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        assert_eq!(Aggregate::count_all().ground_truth(&d, &everywhere), 3.0);
    }

    #[test]
    fn convenience_constructors() {
        assert!(matches!(
            Aggregate::count_restaurants().function,
            AggFunction::Count
        ));
        assert!(Aggregate::avg_where("x", Selection::All).is_ratio());
        assert!(!Aggregate::count_all().is_ratio());
    }
}
