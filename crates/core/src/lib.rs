//! # lbs-core
//!
//! The paper's contribution: aggregate estimators that work through the
//! restrictive kNN query interface of a location based service.
//!
//! * [`LrLbsAgg`] — **LR-LBS-AGG** (paper §3): completely unbiased COUNT and
//!   SUM estimation over interfaces that return tuple locations, built on
//!   exact (top-k) Voronoi-cell computation (Theorem 1) plus four error
//!   reduction techniques: faster initialization, leveraging history,
//!   adaptive top-h selection, and Monte-Carlo upper/lower cell bounds.
//! * [`LnrLbsAgg`] — **LNR-LBS-AGG** (paper §4): estimation over rank-only
//!   interfaces (no locations returned), built on a binary-search primitive
//!   that recovers Voronoi edges to arbitrary precision from ranks alone,
//!   with concavity repair for top-k cells and tuple-position inference.
//! * [`NnoBaseline`] — **LR-LBS-NNO** (Dalvi et al., SIGKDD 2011): the prior
//!   art the paper compares against — top-1 nearest-neighbour sampling with
//!   Monte-Carlo Voronoi-area estimation.
//!
//! Supporting modules: [`agg`] (aggregate specifications and selection
//! conditions), [`stats`] (sample statistics, confidence intervals),
//! [`sampling`] (uniform and density-weighted query samplers), [`estimate`]
//! (estimator output types), [`driver`] (the parallel sample driver —
//! deterministic multi-threaded fan-out of estimator samples, exposed on
//! every estimator as `estimate_parallel`), and [`stratified`] (per-stratum
//! child sessions under one budget, merged by a stratified
//! Horvitz–Thompson combiner).
//!
//! The estimators are generic over [`lbs_service::LbsBackend`]; they never
//! see the underlying dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod baseline;
pub mod driver;
pub mod engine_stats;
pub mod estimate;
pub mod lnr;
pub mod lr;
pub mod sampling;
pub mod session;
pub mod stats;
pub mod stratified;

pub use agg::{AggFunction, Aggregate, Selection};
pub use baseline::{NnoBaseline, NnoConfig};
pub use driver::{DriverOutcome, SampleDriver, SampleOutcome, WaveState};
pub use engine_stats::{EngineReport, SharedEngineCounters};
pub use estimate::{Estimate, EstimateError, TracePoint};
pub use lnr::{LnrLbsAgg, LnrLbsAggConfig, LocatedTuple};
pub use lr::{HSelection, LrLbsAgg, LrLbsAggConfig};
pub use sampling::QuerySampler;
pub use session::{
    AnytimeSnapshot, EstimationSession, LnrSession, LrSession, NnoSession, SessionCheckpoint,
    SessionConfig, StopReason,
};
pub use stats::RunningStats;
pub use stratified::{
    AllocationPolicy, StratifiedSession, StratifiedSessionState, StratumCheckpoint,
    StratumEstimator,
};
