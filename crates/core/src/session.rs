//! Anytime estimation sessions: resumable, checkpointable estimator runs.
//!
//! The paper's estimators are anytime by construction — every extra sample
//! tightens the Horvitz–Thompson estimate — but the batch facades
//! (`estimate` / `estimate_parallel`) only surface the final answer. An
//! [`EstimationSession`] exposes the run itself: it owns the per-sample
//! seeded RNG stream, advances **one wave at a time** under explicit control
//! of its caller, and can report the current estimate, running confidence
//! interval, queries spent and [`EngineReport`] after any step. This is the
//! substrate of the `lbs-server` multi-tenant scheduler, which interleaves
//! waves of many concurrent jobs over shared query budgets.
//!
//! # Modes
//!
//! * **Wave mode** ([`SessionConfig`]): samples draw private RNGs seeded
//!   from `(root_seed, sample_index)` and run through the
//!   [`crate::driver::SampleDriver`] machinery, so results are bit-identical
//!   at every thread count. The batch `estimate_parallel` facades are thin
//!   loops over this mode with no overrides, which keeps their outputs
//!   byte-identical to the pre-session code.
//! * **Serial mode**: samples consume a caller-supplied RNG stream and the
//!   soft budget is metered against the service ledger per sample — the
//!   exact semantics of the historical serial `estimate` facades, which are
//!   now thin loops over [`LrSession::step_serial`] (and its LNR/NNO
//!   siblings).
//!
//! # Checkpoint / resume determinism
//!
//! A wave-mode session is Markovian: the next wave is a pure function of the
//! session state, the root seed and the budget — never of wall-clock time,
//! thread count or how often the caller paused. [`EstimationSession::checkpoint`]
//! snapshots the entire owned state (accumulators, sample cursor, estimator
//! state such as the LR [`History`]); [`EstimationSession::resume`] rebuilds
//! a session from a snapshot and a service handle. Stepping a resumed
//! session is **bit-identical** to never having checkpointed, at every
//! thread count, and replays the same queries against the service, so even
//! the service ledger matches an uninterrupted run. The only caveats are
//! the ones the driver already documents: a *hard* service limit aborts at a
//! scheduling-dependent query, and `max_wall_ms` stops at a wall-clock-
//! dependent wave boundary (every state it stops in is still a valid
//! anytime answer).
//!
//! # Early stopping
//!
//! Wave-mode sessions stop at the first of: soft budget spent (the wave in
//! flight finishes, mirroring the batch overshoot), target confidence
//! reached (`target_ci_halfwidth`, checked at wave boundaries), wall-clock
//! cap (`max_wall_ms`), hard service limit, or a caller's cancel. The
//! [`StopReason`] is reported in every [`AnytimeSnapshot`].

use rand::Rng;

use lbs_geom::Rect;
use lbs_service::{LbsBackend, QueryCounter, QueryError, ReturnMode};
use serde::{Deserialize, Serialize};

use crate::agg::Aggregate;
use crate::baseline::{NnoBaseline, NnoConfig};
use crate::driver::{DriverOutcome, SampleDriver, SampleOutcome, WaveState};
use crate::engine_stats::{EngineReport, SharedEngineCounters};
use crate::estimate::{point_and_error, Estimate, EstimateError, TracePoint};
use crate::lnr::cell::LnrExploreConfig;
use crate::lnr::{LnrLbsAgg, LnrLbsAggConfig};
use crate::lr::{history::History, LrLbsAgg, LrLbsAggConfig};
use crate::sampling::QuerySampler;

/// Run-control knobs of a wave-mode session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Soft query budget; the session stops scheduling new waves once the
    /// completed samples have spent it (the wave in flight finishes, so the
    /// actual cost can overshoot — exactly like the batch facades).
    pub query_budget: u64,
    /// Root of the per-sample RNG seed derivation
    /// ([`crate::driver::sample_seed`]).
    pub root_seed: u64,
    /// Worker threads per wave (`0` = all cores). Results are bit-identical
    /// at every thread count.
    pub threads: usize,
    /// Fixed samples per wave. `None` keeps the adaptive sizing of the batch
    /// path (byte-identical to `estimate_parallel`); `Some(n)` pins every
    /// wave to `n` samples, which makes every multiple of `n` a
    /// checkpointable sample index.
    pub wave_size: Option<u64>,
    /// Stop early once the 95 % confidence interval half-width
    /// (`1.96 × std_error`) drops to this value or below (checked at wave
    /// boundaries, needs at least two samples).
    pub target_ci_halfwidth: Option<f64>,
    /// Stop early once the session has spent this much wall-clock time
    /// stepping (checked at wave boundaries). Inherently not deterministic —
    /// leave unset where bit-reproducibility across machines matters.
    pub max_wall_ms: Option<u64>,
}

impl SessionConfig {
    /// A single-threaded session with the given budget and seed and no
    /// early-stop rules — the configuration whose final estimate is
    /// byte-identical to the batch `estimate_parallel` facades.
    pub fn new(query_budget: u64, root_seed: u64) -> Self {
        SessionConfig {
            query_budget,
            root_seed,
            threads: 1,
            wave_size: None,
            target_ci_halfwidth: None,
            max_wall_ms: None,
        }
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pins the wave size.
    pub fn with_wave_size(mut self, samples: u64) -> Self {
        self.wave_size = Some(samples.max(1));
        self
    }

    /// Sets the target confidence-interval half-width.
    pub fn with_target_ci_halfwidth(mut self, halfwidth: f64) -> Self {
        self.target_ci_halfwidth = Some(halfwidth);
        self
    }

    /// Sets the wall-clock cap.
    pub fn with_max_wall_ms(mut self, ms: u64) -> Self {
        self.max_wall_ms = Some(ms);
        self
    }
}

/// Why a session stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The soft query budget was spent.
    BudgetSpent,
    /// The service's hard query limit aborted a sample.
    ServiceExhausted,
    /// The running confidence interval reached the requested half-width.
    TargetPrecision,
    /// The wall-clock cap was hit.
    WallClock,
    /// A wave completed without issuing a single query; the budget can never
    /// be spent, so the session stops rather than loop forever.
    NoProgress,
    /// The owner cancelled the session (set by the `lbs-server` scheduler).
    Cancelled,
}

/// The anytime state of a session: everything a caller polling a running
/// estimation job can know.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnytimeSnapshot {
    /// Current point estimate (0 before the first completed sample).
    pub value: f64,
    /// Standard error of the current estimate (0 when undefined).
    pub std_error: f64,
    /// Running 95 % confidence interval.
    pub ci95: (f64, f64),
    /// Completed samples.
    pub samples: u64,
    /// Queries attributed to completed samples (wave mode) or spent on the
    /// service ledger (serial mode).
    pub queries: u64,
    /// Waves stepped so far (serial mode counts samples).
    pub waves: u64,
    /// `true` once the session will not advance further.
    pub finished: bool,
    /// Why the session stopped, once it has.
    pub stop: Option<StopReason>,
    /// Cell-engine counters accumulated so far.
    pub engine: EngineReport,
}

impl AnytimeSnapshot {
    /// Half-width of the running 95 % confidence interval.
    pub fn ci_halfwidth(&self) -> f64 {
        1.96 * self.std_error
    }
}

/// Which budget/trace semantics a session runs under.
#[derive(Clone, Debug)]
enum Mode {
    /// Historical serial semantics: caller RNG, per-sample ledger metering.
    Serial {
        /// Service ledger reading at session start.
        start_cost: u64,
    },
    /// Driver semantics: per-sample seeded RNGs, wave-boundary metering.
    Waves,
}

/// State shared by all three session kinds (everything but the estimator
/// specifics and the service handle).
#[derive(Clone, Debug)]
struct CommonState {
    region: Rect,
    aggregate: Aggregate,
    cfg: SessionConfig,
    mode: Mode,
    wave: WaveState,
    driver: SampleDriver,
    /// Wall-clock milliseconds spent inside `step` calls so far.
    elapsed_ms: u64,
    stop: Option<StopReason>,
}

impl CommonState {
    fn new(region: Rect, aggregate: Aggregate, cfg: SessionConfig, mode: Mode) -> Self {
        // `SampleDriver::new` already resolves `0` to all cores; clamping
        // here would silently turn the documented "all cores" into 1.
        let driver = SampleDriver::new(cfg.threads);
        CommonState {
            region,
            aggregate,
            cfg,
            mode,
            wave: WaveState::new(),
            driver,
            elapsed_ms: 0,
            stop: None,
        }
    }

    fn is_ratio(&self) -> bool {
        self.aggregate.is_ratio()
    }

    /// Applies the wave-boundary stop rules after one step and records the
    /// reason. `wall_ms` is the duration of the step just taken.
    fn apply_stop_rules(&mut self, wall_ms: u64) {
        self.elapsed_ms = self.elapsed_ms.saturating_add(wall_ms);
        if self.wave.finished && self.stop.is_none() {
            self.stop = Some(if self.wave.outcome.exhausted {
                StopReason::ServiceExhausted
            } else if self.wave.outcome.queries >= self.cfg.query_budget {
                StopReason::BudgetSpent
            } else {
                StopReason::NoProgress
            });
        }
        if self.wave.finished {
            return;
        }
        if let Some(target) = self.cfg.target_ci_halfwidth {
            let (_, std_error) = point_and_error(
                &self.wave.outcome.numerator,
                &self.wave.outcome.denominator,
                self.is_ratio(),
            );
            // A zero standard error is the undefined/degenerate sentinel
            // (fewer than two samples, or a ratio with an empty denominator)
            // — not convergence; only a genuinely positive error that has
            // shrunk to the target counts.
            if self.wave.outcome.numerator.count() >= 2
                && std_error > 0.0
                && 1.96 * std_error <= target
            {
                self.wave.finished = true;
                self.stop = Some(StopReason::TargetPrecision);
                return;
            }
        }
        if let Some(cap) = self.cfg.max_wall_ms {
            if self.elapsed_ms >= cap {
                self.wave.finished = true;
                self.stop = Some(StopReason::WallClock);
            }
        }
    }

    fn cancel(&mut self) {
        if !self.wave.finished {
            self.wave.finished = true;
            self.stop = Some(StopReason::Cancelled);
        }
    }

    /// Raises the soft query budget to `new_budget` (never lowers it) and —
    /// when the session had stopped *only* because the old budget was spent —
    /// clears the stop so stepping resumes. Any other stop reason
    /// (`NoProgress`, `ServiceExhausted`, …) is terminal and stays in place.
    /// The stratified combiner uses this to grant a stratum its final
    /// (Neyman) allocation after the pilot phase.
    fn extend_budget(&mut self, new_budget: u64) {
        if new_budget <= self.cfg.query_budget {
            return;
        }
        self.cfg.query_budget = new_budget;
        if self.stop == Some(StopReason::BudgetSpent) && self.wave.outcome.queries < new_budget {
            self.stop = None;
            self.wave.finished = false;
        }
    }

    fn snapshot(&self, queries_override: Option<u64>, engine: EngineReport) -> AnytimeSnapshot {
        let outcome = &self.wave.outcome;
        let (value, std_error) =
            point_and_error(&outcome.numerator, &outcome.denominator, self.is_ratio());
        AnytimeSnapshot {
            value,
            std_error,
            ci95: (value - 1.96 * std_error, value + 1.96 * std_error),
            samples: outcome.numerator.count(),
            queries: queries_override.unwrap_or(outcome.queries),
            waves: self.wave.waves,
            finished: self.wave.finished,
            stop: self.stop,
            engine,
        }
    }

    /// Builds the final [`Estimate`] from the accumulators, mirroring the
    /// batch facades bit for bit.
    fn finalize(&self, query_cost: u64) -> Result<Estimate, EstimateError> {
        let outcome = &self.wave.outcome;
        if outcome.numerator.count() == 0 {
            return Err(EstimateError::NoSamples);
        }
        Ok(if self.is_ratio() {
            Estimate::ratio_from_stats(
                &outcome.numerator,
                &outcome.denominator,
                query_cost,
                outcome.trace.clone(),
            )
        } else {
            Estimate::from_stats(&outcome.numerator, query_cost, outcome.trace.clone())
        })
    }

    /// Serial-mode bookkeeping after one successful sample: push the
    /// contribution and record the ledger-cost trace point, exactly like the
    /// historical serial loops.
    fn push_serial_sample(&mut self, num: f64, den: f64, ledger_cost: u64, trace_every: u64) {
        let outcome = &mut self.wave.outcome;
        outcome.numerator.push(num);
        outcome.denominator.push(den);
        self.wave.waves += 1;
        if trace_every > 0 && outcome.numerator.count() % trace_every == 0 {
            let (current, _) = point_and_error(
                &outcome.numerator,
                &outcome.denominator,
                self.aggregate.is_ratio(),
            );
            outcome.trace.push(TracePoint {
                query_cost: ledger_cost,
                estimate: current,
            });
        }
    }
}

/// Milliseconds a step took, as the saturating u64 the session accumulates.
pub(crate) fn elapsed_ms(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// LR session
// ---------------------------------------------------------------------------

/// The owned (service-independent) state of an LR session: what
/// [`LrSession::checkpoint`] snapshots and [`LrSession::resume`] restores.
#[derive(Clone, Debug)]
pub struct LrSessionState {
    common: CommonState,
    config: LrLbsAggConfig,
    sampler: QuerySampler,
    k: usize,
    history: History,
    engine_before: EngineReport,
}

/// A resumable LR-LBS-AGG estimation run over a service `S`.
#[derive(Debug)]
pub struct LrSession<S: LbsBackend> {
    service: S,
    state: LrSessionState,
}

impl<S: LbsBackend> LrSession<S> {
    /// Starts a wave-mode session, seeding the §3.2.2 history from
    /// `history` (pass [`History::new`] for a cold start).
    pub fn new(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: LrLbsAggConfig,
        history: History,
        cfg: SessionConfig,
    ) -> Self {
        Self::with_mode(
            service,
            region,
            aggregate,
            config,
            history,
            cfg,
            Mode::Waves,
        )
    }

    /// Starts a serial-mode session (caller RNG, per-sample ledger
    /// metering) — the engine of the batch [`LrLbsAgg::estimate`] facade.
    pub fn new_serial(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: LrLbsAggConfig,
        history: History,
        query_budget: u64,
    ) -> Self {
        let start_cost = service.queries_issued();
        Self::with_mode(
            service,
            region,
            aggregate,
            config,
            history,
            SessionConfig::new(query_budget, 0),
            Mode::Serial { start_cost },
        )
    }

    fn with_mode(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: LrLbsAggConfig,
        history: History,
        cfg: SessionConfig,
        mode: Mode,
    ) -> Self {
        assert_eq!(
            service.config().return_mode,
            ReturnMode::LocationReturned,
            "LR-LBS-AGG requires a location-returned interface; use LnrLbsAgg for rank-only ones"
        );
        let sampler = match &config.weighted_sampler {
            Some(grid) => QuerySampler::weighted(grid.clone()),
            None => QuerySampler::uniform(*region),
        };
        let k = service.config().k;
        let engine_before = history.engine_report();
        LrSession {
            service,
            state: LrSessionState {
                common: CommonState::new(*region, aggregate.clone(), cfg, mode),
                config,
                sampler,
                k,
                history,
                engine_before,
            },
        }
    }

    /// Snapshots the entire owned state. Resuming from the snapshot (on the
    /// same or an identically-behaving service) and stepping is bit-identical
    /// to continuing this session.
    pub fn checkpoint(&self) -> LrSessionState {
        self.state.clone()
    }

    /// Rebuilds a session from a checkpoint and a service handle.
    pub fn resume(service: S, checkpoint: LrSessionState) -> Self {
        LrSession {
            service,
            state: checkpoint,
        }
    }

    /// `true` once the session will not advance further.
    pub fn is_finished(&self) -> bool {
        self.state.common.wave.finished
    }

    /// Advances a wave-mode session by one wave.
    ///
    /// # Panics
    ///
    /// Panics on serial-mode sessions — those advance with
    /// [`LrSession::step_serial`].
    pub fn step(&mut self) {
        assert!(
            matches!(self.state.common.mode, Mode::Waves),
            "step() drives wave-mode sessions; serial sessions use step_serial()"
        );
        if self.state.common.wave.finished {
            return;
        }
        // lbs-lint: allow(ambient-time, reason = "wall-clock early-stop picks when to stop; the estimate at any stop point stays bit-identical (session_checkpoint tests)")
        let started = std::time::Instant::now();
        let LrSessionState {
            common,
            config,
            sampler,
            k,
            history,
            ..
        } = &mut self.state;
        let service = &self.service;
        let region = common.region;
        let aggregate = common.aggregate.clone();
        let is_ratio = common.is_ratio();
        let (config, sampler, k) = (&*config, &*sampler, *k);
        let driver = common.driver.clone();
        driver.step_wave(
            common.cfg.query_budget,
            common.cfg.root_seed,
            is_ratio,
            common.cfg.wave_size,
            &mut common.wave,
            history,
            &History::fork,
            &|history: &mut History, _index, rng| {
                let metered = QueryCounter::new(service);
                let (num, den) = LrLbsAgg::sample_once(
                    config, sampler, k, &metered, &region, &aggregate, history, rng,
                )?;
                Ok(SampleOutcome {
                    numerator: num,
                    denominator: den,
                    queries: metered.taken(),
                })
            },
            &|master, forks| {
                for fork in &forks {
                    master.absorb(fork);
                }
            },
        );
        common.apply_stop_rules(elapsed_ms(started));
    }

    /// Advances a serial-mode session by one sample drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics on wave-mode sessions — those advance with
    /// [`LrSession::step`].
    pub fn step_serial<R: Rng>(&mut self, rng: &mut R) {
        let Mode::Serial { start_cost } = self.state.common.mode else {
            panic!("step_serial() drives serial-mode sessions; wave sessions use step()");
        };
        if self.state.common.wave.finished {
            return;
        }
        // lbs-lint: allow(ambient-time, reason = "wall-clock early-stop picks when to stop; the estimate at any stop point stays bit-identical (session_checkpoint tests)")
        let started = std::time::Instant::now();
        let budget_left = self
            .state
            .common
            .cfg
            .query_budget
            .saturating_sub(self.service.queries_issued() - start_cost);
        if budget_left == 0 {
            self.state.common.wave.finished = true;
            self.state.common.stop = Some(StopReason::BudgetSpent);
            return;
        }
        let LrSessionState {
            common,
            config,
            sampler,
            k,
            history,
            ..
        } = &mut self.state;
        let aggregate = common.aggregate.clone();
        // An `Err` means the sample hit the service's hard limit; it is
        // discarded rather than recorded as a partial (biased) contribution.
        match LrLbsAgg::sample_once(
            config,
            sampler,
            *k,
            &self.service,
            &common.region,
            &aggregate,
            history,
            rng,
        ) {
            Ok((num, den)) => {
                let ledger_cost = self.service.queries_issued() - start_cost;
                let trace_every = config.trace_every;
                common.push_serial_sample(num, den, ledger_cost, trace_every);
                common.apply_stop_rules(elapsed_ms(started));
            }
            Err(QueryError::BudgetExhausted { .. }) => {
                common.wave.finished = true;
                common.stop = Some(StopReason::ServiceExhausted);
            }
        }
    }

    /// Queries this session has spent so far (ledger-based in serial mode).
    pub fn queries_spent(&self) -> u64 {
        match self.state.common.mode {
            Mode::Serial { start_cost } => self.service.queries_issued() - start_cost,
            Mode::Waves => self.state.common.wave.outcome.queries,
        }
    }

    /// The anytime state of the run.
    pub fn snapshot(&self) -> AnytimeSnapshot {
        let queries = match self.state.common.mode {
            Mode::Serial { .. } => Some(self.queries_spent()),
            Mode::Waves => None,
        };
        self.state.common.snapshot(
            queries,
            self.state
                .history
                .engine_report()
                .since(&self.state.engine_before),
        )
    }

    /// The final (or current — sessions are anytime) [`Estimate`],
    /// bit-identical to what the batch facades produce for the same
    /// configuration.
    pub fn finalize(&self) -> Result<Estimate, EstimateError> {
        let mut est = self.state.common.finalize(self.queries_spent())?;
        est.engine = self
            .state
            .history
            .engine_report()
            .since(&self.state.engine_before);
        Ok(est)
    }

    /// Stops the session without finishing its budget.
    pub fn cancel(&mut self) {
        self.state.common.cancel();
    }

    /// Consumes the session, handing back the accumulated history (the
    /// batch facades thread it back into the estimator).
    pub fn into_history(self) -> History {
        self.state.history
    }

    /// Starts a wave-mode session whose query *draws* are restricted to the
    /// `stratum` rectangle while every Horvitz–Thompson probability stays
    /// full-region — the child-session shape the stratified combiner needs
    /// (see [`crate::stratified`]).
    pub(crate) fn new_stratum(
        service: S,
        region: &Rect,
        stratum: Rect,
        aggregate: &Aggregate,
        config: LrLbsAggConfig,
        cfg: SessionConfig,
    ) -> Self {
        let mut s = Self::with_mode(
            service,
            region,
            aggregate,
            config,
            History::new(),
            cfg,
            Mode::Waves,
        );
        s.state.sampler = QuerySampler::stratified(stratum, s.state.sampler.clone());
        s
    }

    /// The raw driver accumulators (the combiner folds these).
    pub(crate) fn outcome(&self) -> &DriverOutcome {
        &self.state.common.wave.outcome
    }

    /// Raises the soft budget (see `CommonState::extend_budget`).
    pub(crate) fn extend_budget(&mut self, new_budget: u64) {
        self.state.common.extend_budget(new_budget);
    }

    /// Why the session stopped, once it has.
    pub(crate) fn stop_reason(&self) -> Option<StopReason> {
        self.state.common.stop
    }
}

// ---------------------------------------------------------------------------
// LNR and NNO sessions (no cross-sample estimator state)
// ---------------------------------------------------------------------------

/// The owned state of an LNR session (see [`LrSessionState`]).
#[derive(Clone, Debug)]
pub struct LnrSessionState {
    common: CommonState,
    explore: LnrExploreConfig,
    sampler: QuerySampler,
    h: usize,
    needs_location: bool,
    trace_every: u64,
    engine: EngineReport,
}

/// A resumable LNR-LBS-AGG estimation run over a service `S`.
#[derive(Debug)]
pub struct LnrSession<S: LbsBackend> {
    service: S,
    state: LnrSessionState,
}

impl<S: LbsBackend> LnrSession<S> {
    /// Starts a wave-mode session.
    pub fn new(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: LnrLbsAggConfig,
        cfg: SessionConfig,
    ) -> Self {
        Self::with_mode(service, region, aggregate, config, cfg, Mode::Waves)
    }

    /// Starts a serial-mode session (see [`LrSession::new_serial`]).
    pub fn new_serial(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: LnrLbsAggConfig,
        query_budget: u64,
    ) -> Self {
        let start_cost = service.queries_issued();
        Self::with_mode(
            service,
            region,
            aggregate,
            config,
            SessionConfig::new(query_budget, 0),
            Mode::Serial { start_cost },
        )
    }

    fn with_mode(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: LnrLbsAggConfig,
        cfg: SessionConfig,
        mode: Mode,
    ) -> Self {
        let estimator = LnrLbsAgg::new(config.clone());
        let sampler = match (&config.weighted_sampler, config.h) {
            (Some(grid), 1) => QuerySampler::weighted(grid.clone()),
            _ => QuerySampler::uniform(*region),
        };
        let h = config.h.clamp(1, service.config().k.max(1));
        LnrSession {
            service,
            state: LnrSessionState {
                common: CommonState::new(*region, aggregate.clone(), cfg, mode),
                explore: estimator.explore_config(),
                sampler,
                h,
                needs_location: aggregate.needs_location(),
                trace_every: config.trace_every,
                engine: EngineReport::default(),
            },
        }
    }

    /// Snapshots the owned state (see [`LrSession::checkpoint`]).
    pub fn checkpoint(&self) -> LnrSessionState {
        self.state.clone()
    }

    /// Rebuilds a session from a checkpoint and a service handle.
    pub fn resume(service: S, checkpoint: LnrSessionState) -> Self {
        LnrSession {
            service,
            state: checkpoint,
        }
    }

    /// `true` once the session will not advance further.
    pub fn is_finished(&self) -> bool {
        self.state.common.wave.finished
    }

    /// Advances a wave-mode session by one wave (see [`LrSession::step`]).
    pub fn step(&mut self) {
        assert!(
            matches!(self.state.common.mode, Mode::Waves),
            "step() drives wave-mode sessions; serial sessions use step_serial()"
        );
        if self.state.common.wave.finished {
            return;
        }
        // lbs-lint: allow(ambient-time, reason = "wall-clock early-stop picks when to stop; the estimate at any stop point stays bit-identical (session_checkpoint tests)")
        let started = std::time::Instant::now();
        let LnrSessionState {
            common,
            explore,
            sampler,
            h,
            needs_location,
            engine,
            ..
        } = &mut self.state;
        let service = &self.service;
        let region = common.region;
        let aggregate = common.aggregate.clone();
        let is_ratio = common.is_ratio();
        let counters = SharedEngineCounters::from_report(engine);
        let (explore, sampler, h, needs_location) = (&*explore, &*sampler, *h, *needs_location);
        let driver = common.driver.clone();
        driver.step_wave(
            common.cfg.query_budget,
            common.cfg.root_seed,
            is_ratio,
            common.cfg.wave_size,
            &mut common.wave,
            &mut (),
            &|_| (),
            &|_state, _index, rng| {
                let metered = QueryCounter::new(service);
                let (num, den) = LnrLbsAgg::sample_once(
                    explore,
                    sampler,
                    h,
                    needs_location,
                    &metered,
                    &region,
                    &aggregate,
                    &counters,
                    rng,
                )?;
                Ok(SampleOutcome {
                    numerator: num,
                    denominator: den,
                    queries: metered.taken(),
                })
            },
            &|_, _| {},
        );
        *engine = counters.report();
        common.apply_stop_rules(elapsed_ms(started));
    }

    /// Advances a serial-mode session by one sample (see
    /// [`LrSession::step_serial`]).
    pub fn step_serial<R: Rng>(&mut self, rng: &mut R) {
        let Mode::Serial { start_cost } = self.state.common.mode else {
            panic!("step_serial() drives serial-mode sessions; wave sessions use step()");
        };
        if self.state.common.wave.finished {
            return;
        }
        // lbs-lint: allow(ambient-time, reason = "wall-clock early-stop picks when to stop; the estimate at any stop point stays bit-identical (session_checkpoint tests)")
        let started = std::time::Instant::now();
        let budget_left = self
            .state
            .common
            .cfg
            .query_budget
            .saturating_sub(self.service.queries_issued() - start_cost);
        if budget_left == 0 {
            self.state.common.wave.finished = true;
            self.state.common.stop = Some(StopReason::BudgetSpent);
            return;
        }
        let LnrSessionState {
            common,
            explore,
            sampler,
            h,
            needs_location,
            trace_every,
            engine,
        } = &mut self.state;
        let counters = SharedEngineCounters::from_report(engine);
        let aggregate = common.aggregate.clone();
        match LnrLbsAgg::sample_once(
            explore,
            sampler,
            *h,
            *needs_location,
            &self.service,
            &common.region,
            &aggregate,
            &counters,
            rng,
        ) {
            Ok((num, den)) => {
                *engine = counters.report();
                let ledger_cost = self.service.queries_issued() - start_cost;
                common.push_serial_sample(num, den, ledger_cost, *trace_every);
                common.apply_stop_rules(elapsed_ms(started));
            }
            Err(QueryError::BudgetExhausted { .. }) => {
                *engine = counters.report();
                common.wave.finished = true;
                common.stop = Some(StopReason::ServiceExhausted);
            }
        }
    }

    /// Queries this session has spent so far.
    pub fn queries_spent(&self) -> u64 {
        match self.state.common.mode {
            Mode::Serial { start_cost } => self.service.queries_issued() - start_cost,
            Mode::Waves => self.state.common.wave.outcome.queries,
        }
    }

    /// The anytime state of the run.
    pub fn snapshot(&self) -> AnytimeSnapshot {
        let queries = match self.state.common.mode {
            Mode::Serial { .. } => Some(self.queries_spent()),
            Mode::Waves => None,
        };
        self.state.common.snapshot(queries, self.state.engine)
    }

    /// The final (or current) [`Estimate`] (see [`LrSession::finalize`]).
    pub fn finalize(&self) -> Result<Estimate, EstimateError> {
        let mut est = self.state.common.finalize(self.queries_spent())?;
        est.engine = self.state.engine;
        Ok(est)
    }

    /// Stops the session without finishing its budget.
    pub fn cancel(&mut self) {
        self.state.common.cancel();
    }

    /// Starts a wave-mode session restricted to `stratum` (see
    /// [`LrSession::new_stratum`]).
    pub(crate) fn new_stratum(
        service: S,
        region: &Rect,
        stratum: Rect,
        aggregate: &Aggregate,
        config: LnrLbsAggConfig,
        cfg: SessionConfig,
    ) -> Self {
        let mut s = Self::with_mode(service, region, aggregate, config, cfg, Mode::Waves);
        s.state.sampler = QuerySampler::stratified(stratum, s.state.sampler.clone());
        s
    }

    /// The raw driver accumulators (the combiner folds these).
    pub(crate) fn outcome(&self) -> &DriverOutcome {
        &self.state.common.wave.outcome
    }

    /// Raises the soft budget (see `CommonState::extend_budget`).
    pub(crate) fn extend_budget(&mut self, new_budget: u64) {
        self.state.common.extend_budget(new_budget);
    }

    /// Why the session stopped, once it has.
    pub(crate) fn stop_reason(&self) -> Option<StopReason> {
        self.state.common.stop
    }
}

/// The owned state of an NNO session (see [`LrSessionState`]).
#[derive(Clone, Debug)]
pub struct NnoSessionState {
    common: CommonState,
    config: NnoConfig,
    engine: EngineReport,
}

/// A resumable LR-LBS-NNO baseline run over a service `S`.
#[derive(Debug)]
pub struct NnoSession<S: LbsBackend> {
    service: S,
    state: NnoSessionState,
}

impl<S: LbsBackend> NnoSession<S> {
    /// Starts a wave-mode session.
    pub fn new(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: NnoConfig,
        cfg: SessionConfig,
    ) -> Self {
        Self::with_mode(service, region, aggregate, config, cfg, Mode::Waves)
    }

    /// Starts a serial-mode session (see [`LrSession::new_serial`]).
    pub fn new_serial(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: NnoConfig,
        query_budget: u64,
    ) -> Self {
        let start_cost = service.queries_issued();
        Self::with_mode(
            service,
            region,
            aggregate,
            config,
            SessionConfig::new(query_budget, 0),
            Mode::Serial { start_cost },
        )
    }

    fn with_mode(
        service: S,
        region: &Rect,
        aggregate: &Aggregate,
        config: NnoConfig,
        cfg: SessionConfig,
        mode: Mode,
    ) -> Self {
        assert_eq!(
            service.config().return_mode,
            ReturnMode::LocationReturned,
            "LR-LBS-NNO requires a location-returned interface"
        );
        NnoSession {
            service,
            state: NnoSessionState {
                common: CommonState::new(*region, aggregate.clone(), cfg, mode),
                config,
                engine: EngineReport::default(),
            },
        }
    }

    /// Snapshots the owned state (see [`LrSession::checkpoint`]).
    pub fn checkpoint(&self) -> NnoSessionState {
        self.state.clone()
    }

    /// Rebuilds a session from a checkpoint and a service handle.
    pub fn resume(service: S, checkpoint: NnoSessionState) -> Self {
        NnoSession {
            service,
            state: checkpoint,
        }
    }

    /// `true` once the session will not advance further.
    pub fn is_finished(&self) -> bool {
        self.state.common.wave.finished
    }

    /// Advances a wave-mode session by one wave (see [`LrSession::step`]).
    pub fn step(&mut self) {
        assert!(
            matches!(self.state.common.mode, Mode::Waves),
            "step() drives wave-mode sessions; serial sessions use step_serial()"
        );
        if self.state.common.wave.finished {
            return;
        }
        // lbs-lint: allow(ambient-time, reason = "wall-clock early-stop picks when to stop; the estimate at any stop point stays bit-identical (session_checkpoint tests)")
        let started = std::time::Instant::now();
        let NnoSessionState {
            common,
            config,
            engine,
        } = &mut self.state;
        let service = &self.service;
        let region = common.region;
        let aggregate = common.aggregate.clone();
        let is_ratio = common.is_ratio();
        let counters = SharedEngineCounters::from_report(engine);
        let config = &*config;
        let driver = common.driver.clone();
        driver.step_wave(
            common.cfg.query_budget,
            common.cfg.root_seed,
            is_ratio,
            common.cfg.wave_size,
            &mut common.wave,
            &mut (),
            &|_| (),
            &|_state, _index, rng| {
                let metered = QueryCounter::new(service);
                let (num, den) = NnoBaseline::sample_once(
                    config, &metered, &region, &aggregate, &counters, rng,
                )?;
                Ok(SampleOutcome {
                    numerator: num,
                    denominator: den,
                    queries: metered.taken(),
                })
            },
            &|_, _| {},
        );
        *engine = counters.report();
        common.apply_stop_rules(elapsed_ms(started));
    }

    /// Advances a serial-mode session by one sample (see
    /// [`LrSession::step_serial`]).
    pub fn step_serial<R: Rng>(&mut self, rng: &mut R) {
        let Mode::Serial { start_cost } = self.state.common.mode else {
            panic!("step_serial() drives serial-mode sessions; wave sessions use step()");
        };
        if self.state.common.wave.finished {
            return;
        }
        // lbs-lint: allow(ambient-time, reason = "wall-clock early-stop picks when to stop; the estimate at any stop point stays bit-identical (session_checkpoint tests)")
        let started = std::time::Instant::now();
        let budget_left = self
            .state
            .common
            .cfg
            .query_budget
            .saturating_sub(self.service.queries_issued() - start_cost);
        if budget_left == 0 {
            self.state.common.wave.finished = true;
            self.state.common.stop = Some(StopReason::BudgetSpent);
            return;
        }
        let NnoSessionState {
            common,
            config,
            engine,
        } = &mut self.state;
        let counters = SharedEngineCounters::from_report(engine);
        let aggregate = common.aggregate.clone();
        match NnoBaseline::sample_once(
            config,
            &self.service,
            &common.region,
            &aggregate,
            &counters,
            rng,
        ) {
            Ok((num, den)) => {
                *engine = counters.report();
                let ledger_cost = self.service.queries_issued() - start_cost;
                let trace_every = config.trace_every;
                common.push_serial_sample(num, den, ledger_cost, trace_every);
                common.apply_stop_rules(elapsed_ms(started));
            }
            Err(QueryError::BudgetExhausted { .. }) => {
                *engine = counters.report();
                common.wave.finished = true;
                common.stop = Some(StopReason::ServiceExhausted);
            }
        }
    }

    /// Queries this session has spent so far.
    pub fn queries_spent(&self) -> u64 {
        match self.state.common.mode {
            Mode::Serial { start_cost } => self.service.queries_issued() - start_cost,
            Mode::Waves => self.state.common.wave.outcome.queries,
        }
    }

    /// The anytime state of the run.
    pub fn snapshot(&self) -> AnytimeSnapshot {
        let queries = match self.state.common.mode {
            Mode::Serial { .. } => Some(self.queries_spent()),
            Mode::Waves => None,
        };
        self.state.common.snapshot(queries, self.state.engine)
    }

    /// The final (or current) [`Estimate`] (see [`LrSession::finalize`]).
    pub fn finalize(&self) -> Result<Estimate, EstimateError> {
        let mut est = self.state.common.finalize(self.queries_spent())?;
        est.engine = self.state.engine;
        Ok(est)
    }

    /// Stops the session without finishing its budget.
    pub fn cancel(&mut self) {
        self.state.common.cancel();
    }

    /// Starts a wave-mode session restricted to `stratum` (see
    /// [`LrSession::new_stratum`]). The NNO draw restriction lives in
    /// [`NnoConfig::draw_region`]; probabilities stay full-region.
    pub(crate) fn new_stratum(
        service: S,
        region: &Rect,
        stratum: Rect,
        aggregate: &Aggregate,
        mut config: NnoConfig,
        cfg: SessionConfig,
    ) -> Self {
        config.draw_region = Some(stratum);
        Self::with_mode(service, region, aggregate, config, cfg, Mode::Waves)
    }

    /// The raw driver accumulators (the combiner folds these).
    pub(crate) fn outcome(&self) -> &DriverOutcome {
        &self.state.common.wave.outcome
    }

    /// Raises the soft budget (see `CommonState::extend_budget`).
    pub(crate) fn extend_budget(&mut self, new_budget: u64) {
        self.state.common.extend_budget(new_budget);
    }

    /// Why the session stopped, once it has.
    pub(crate) fn stop_reason(&self) -> Option<StopReason> {
        self.state.common.stop
    }
}

// ---------------------------------------------------------------------------
// Uniform wrapper
// ---------------------------------------------------------------------------

/// Any estimator's session behind one type — what a scheduler juggling
/// heterogeneous jobs holds.
#[derive(Debug)]
pub enum EstimationSession<S: LbsBackend> {
    /// An LR-LBS-AGG session.
    Lr(Box<LrSession<S>>),
    /// An LNR-LBS-AGG session.
    Lnr(LnrSession<S>),
    /// An LR-LBS-NNO baseline session.
    Nno(NnoSession<S>),
    /// A stratified session composing per-stratum child sessions
    /// ([`crate::stratified::StratifiedSession`]).
    Stratified(Box<crate::stratified::StratifiedSession<S>>),
}

/// The owned state of any session kind — what
/// [`EstimationSession::checkpoint`] snapshots.
#[derive(Clone, Debug)]
pub enum SessionCheckpoint {
    /// Checkpoint of an LR session.
    Lr(Box<LrSessionState>),
    /// Checkpoint of an LNR session.
    Lnr(Box<LnrSessionState>),
    /// Checkpoint of an NNO session.
    Nno(Box<NnoSessionState>),
    /// Checkpoint of a stratified session.
    Stratified(Box<crate::stratified::StratifiedSessionState>),
}

impl<S: LbsBackend> EstimationSession<S> {
    /// `true` once the session will not advance further.
    pub fn is_finished(&self) -> bool {
        match self {
            EstimationSession::Lr(s) => s.is_finished(),
            EstimationSession::Lnr(s) => s.is_finished(),
            EstimationSession::Nno(s) => s.is_finished(),
            EstimationSession::Stratified(s) => s.is_finished(),
        }
    }

    /// Advances a wave-mode session by one wave.
    pub fn step(&mut self) {
        match self {
            EstimationSession::Lr(s) => s.step(),
            EstimationSession::Lnr(s) => s.step(),
            EstimationSession::Nno(s) => s.step(),
            EstimationSession::Stratified(s) => s.step(),
        }
    }

    /// The anytime state of the run.
    pub fn snapshot(&self) -> AnytimeSnapshot {
        match self {
            EstimationSession::Lr(s) => s.snapshot(),
            EstimationSession::Lnr(s) => s.snapshot(),
            EstimationSession::Nno(s) => s.snapshot(),
            EstimationSession::Stratified(s) => s.snapshot(),
        }
    }

    /// The final (or current) [`Estimate`].
    pub fn finalize(&self) -> Result<Estimate, EstimateError> {
        match self {
            EstimationSession::Lr(s) => s.finalize(),
            EstimationSession::Lnr(s) => s.finalize(),
            EstimationSession::Nno(s) => s.finalize(),
            EstimationSession::Stratified(s) => s.finalize(),
        }
    }

    /// Stops the session without finishing its budget.
    pub fn cancel(&mut self) {
        match self {
            EstimationSession::Lr(s) => s.cancel(),
            EstimationSession::Lnr(s) => s.cancel(),
            EstimationSession::Nno(s) => s.cancel(),
            EstimationSession::Stratified(s) => s.cancel(),
        }
    }

    /// Queries this session has spent so far.
    pub fn queries_spent(&self) -> u64 {
        match self {
            EstimationSession::Lr(s) => s.queries_spent(),
            EstimationSession::Lnr(s) => s.queries_spent(),
            EstimationSession::Nno(s) => s.queries_spent(),
            EstimationSession::Stratified(s) => s.queries_spent(),
        }
    }

    /// Snapshots the entire owned state (everything but the service).
    pub fn checkpoint(&self) -> SessionCheckpoint {
        match self {
            EstimationSession::Lr(s) => SessionCheckpoint::Lr(Box::new(s.checkpoint())),
            EstimationSession::Lnr(s) => SessionCheckpoint::Lnr(Box::new(s.checkpoint())),
            EstimationSession::Nno(s) => SessionCheckpoint::Nno(Box::new(s.checkpoint())),
            EstimationSession::Stratified(s) => {
                SessionCheckpoint::Stratified(Box::new(s.checkpoint()))
            }
        }
    }

    /// Rebuilds a session from a checkpoint and a service handle.
    pub fn resume(service: S, checkpoint: SessionCheckpoint) -> Self {
        match checkpoint {
            SessionCheckpoint::Lr(state) => {
                EstimationSession::Lr(Box::new(LrSession::resume(service, *state)))
            }
            SessionCheckpoint::Lnr(state) => {
                EstimationSession::Lnr(LnrSession::resume(service, *state))
            }
            SessionCheckpoint::Nno(state) => {
                EstimationSession::Nno(NnoSession::resume(service, *state))
            }
            SessionCheckpoint::Stratified(state) => EstimationSession::Stratified(Box::new(
                crate::stratified::StratifiedSession::resume(service, *state),
            )),
        }
    }
}
