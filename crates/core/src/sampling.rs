//! Query-location samplers.
//!
//! The estimators draw random query locations, look at which tuple(s) come
//! back, and divide each tuple's contribution by its *selection probability*
//! — the probability that the random location lands inside the tuple's
//! (top-h) Voronoi cell. Two sampling designs are supported:
//!
//! * **Uniform** over the bounding region (the paper's default): the
//!   selection probability is simply `|V_h(t)| / |V_0|`.
//! * **Density-weighted** using external knowledge such as census population
//!   density (paper §5.2): locations are drawn from a piecewise-constant
//!   [`DensityGrid`]; the selection probability becomes the integral of that
//!   density over the cell, which [`QuerySampler::cell_probability`] computes
//!   exactly for convex cells.
//!
//! Both designs keep the paper's equation (1) unbiased — only the variance
//! changes — because the probability used in the denominator is exactly the
//! probability the sampler realises.

use rand::Rng;

use lbs_data::DensityGrid;
use lbs_geom::{ConvexPolygon, Point, Rect, TopKCell};

/// A randomised design for choosing query locations.
#[derive(Clone, Debug)]
pub enum QuerySampler {
    /// Uniform over the bounding region.
    Uniform {
        /// The region queries are drawn from (also the aggregate's region).
        bbox: Rect,
    },
    /// Weighted by a piecewise-constant density (e.g. population density).
    Weighted {
        /// The proposal density; its bounding box is the query region.
        grid: DensityGrid,
    },
}

impl QuerySampler {
    /// Uniform sampler over a region.
    pub fn uniform(bbox: Rect) -> Self {
        QuerySampler::Uniform { bbox }
    }

    /// Density-weighted sampler.
    pub fn weighted(grid: DensityGrid) -> Self {
        QuerySampler::Weighted { grid }
    }

    /// The region queries are drawn from.
    pub fn bbox(&self) -> Rect {
        match self {
            QuerySampler::Uniform { bbox } => *bbox,
            QuerySampler::Weighted { grid } => grid.bbox(),
        }
    }

    /// `true` for the weighted design.
    pub fn is_weighted(&self) -> bool {
        matches!(self, QuerySampler::Weighted { .. })
    }

    /// Draws one query location.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Point {
        match self {
            QuerySampler::Uniform { bbox } => bbox.at_fraction(rng.gen(), rng.gen()),
            QuerySampler::Weighted { grid } => grid.sample(rng),
        }
    }

    /// Probability that a sampled location lands inside the given exactly
    /// computed cell.
    ///
    /// For the uniform design this is `area / |V_0|` and works for any cell
    /// (convex or not). The weighted design needs the cell's convex polygon
    /// to integrate the density exactly; for concave top-h cells it falls
    /// back to `None` and the caller must either use `h = 1` or switch to the
    /// uniform design (that combination is how the experiments run it).
    pub fn cell_probability(&self, cell: &TopKCell) -> Option<f64> {
        match self {
            QuerySampler::Uniform { bbox } => Some(cell.area / bbox.area()),
            QuerySampler::Weighted { grid } => {
                cell.convex.as_ref().map(|poly| grid.integrate_convex(poly))
            }
        }
    }

    /// Probability of landing inside an arbitrary convex polygon.
    pub fn convex_probability(&self, polygon: &ConvexPolygon) -> f64 {
        match self {
            QuerySampler::Uniform { bbox } => polygon.area() / bbox.area(),
            QuerySampler::Weighted { grid } => grid.integrate_convex(polygon),
        }
    }

    /// Probability corresponding to a raw area, available only for the
    /// uniform design (the weighted design needs the shape, not just the
    /// area).
    pub fn area_probability(&self, area: f64) -> Option<f64> {
        match self {
            QuerySampler::Uniform { bbox } => Some(area / bbox.area()),
            QuerySampler::Weighted { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::top_k_cell;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bbox() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn uniform_sampler_covers_the_box() {
        let s = QuerySampler::uniform(bbox());
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = Point::ORIGIN;
        let n = 2_000;
        for _ in 0..n {
            let p = s.sample(&mut rng);
            assert!(bbox().contains(&p));
            mean = mean + p;
        }
        mean = mean / n as f64;
        assert!((mean.x - 50.0).abs() < 2.5 && (mean.y - 50.0).abs() < 2.5);
        assert!(!s.is_weighted());
    }

    #[test]
    fn uniform_cell_probability_is_area_fraction() {
        let s = QuerySampler::uniform(bbox());
        let site = Point::new(25.0, 50.0);
        let others = vec![Point::new(75.0, 50.0)];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        assert!((s.cell_probability(&cell).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(s.area_probability(2_500.0), Some(0.25));
    }

    #[test]
    fn weighted_sampler_prefers_heavy_cells() {
        let grid = DensityGrid::from_weights(bbox(), 2, 1, vec![9.0, 1.0]);
        let s = QuerySampler::weighted(grid);
        assert!(s.is_weighted());
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5_000;
        let left = (0..n).filter(|_| s.sample(&mut rng).x < 50.0).count();
        assert!(left as f64 / n as f64 > 0.85);
    }

    #[test]
    fn weighted_cell_probability_uses_density() {
        let grid = DensityGrid::from_weights(bbox(), 2, 1, vec![9.0, 1.0]);
        let s = QuerySampler::weighted(grid);
        // Cell of the left site is the left half of the box, which carries
        // 0.9 of the probability mass.
        let site = Point::new(25.0, 50.0);
        let others = vec![Point::new(75.0, 50.0)];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        let p = s.cell_probability(&cell).unwrap();
        assert!((p - 0.9).abs() < 1e-9);
        // Raw areas cannot be converted under the weighted design.
        assert!(s.area_probability(5_000.0).is_none());
    }

    #[test]
    fn weighted_probability_unavailable_for_concave_cells() {
        let grid = DensityGrid::uniform(bbox());
        let s = QuerySampler::weighted(grid);
        let site = Point::new(50.0, 50.0);
        let others = vec![
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 90.0),
        ];
        let cell = top_k_cell(&site, &others, 2, &bbox());
        assert!(cell.convex.is_none());
        assert!(s.cell_probability(&cell).is_none());
    }

    #[test]
    fn bbox_accessor_matches_design() {
        let s = QuerySampler::uniform(bbox());
        assert_eq!(s.bbox(), bbox());
        let w = QuerySampler::weighted(DensityGrid::uniform(bbox()));
        assert_eq!(w.bbox(), bbox());
    }
}
