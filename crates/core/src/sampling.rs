//! Query-location samplers.
//!
//! The estimators draw random query locations, look at which tuple(s) come
//! back, and divide each tuple's contribution by its *selection probability*
//! — the probability that the random location lands inside the tuple's
//! (top-h) Voronoi cell. Two sampling designs are supported:
//!
//! * **Uniform** over the bounding region (the paper's default): the
//!   selection probability is simply `|V_h(t)| / |V_0|`.
//! * **Density-weighted** using external knowledge such as census population
//!   density (paper §5.2): locations are drawn from a piecewise-constant
//!   [`DensityGrid`]; the selection probability becomes the integral of that
//!   density over the cell, which [`QuerySampler::cell_probability`] computes
//!   exactly for convex cells.
//!
//! Both designs keep the paper's equation (1) unbiased — only the variance
//! changes — because the probability used in the denominator is exactly the
//! probability the sampler realises.

use rand::Rng;

use lbs_data::DensityGrid;
use lbs_geom::{ConvexPolygon, Point, Rect, TopKCell};

/// A randomised design for choosing query locations.
#[derive(Clone, Debug)]
pub enum QuerySampler {
    /// Uniform over the bounding region.
    Uniform {
        /// The region queries are drawn from (also the aggregate's region).
        bbox: Rect,
    },
    /// Weighted by a piecewise-constant density (e.g. population density).
    Weighted {
        /// The proposal density; its bounding box is the query region.
        grid: DensityGrid,
    },
    /// A base design restricted to one stratum of the region.
    ///
    /// Locations are drawn from the *base* design conditioned on landing
    /// inside `rect`, but every probability accessor still reports the
    /// base design's full-region probability. That split is what keeps the
    /// stratified Horvitz–Thompson combiner unbiased: a child session for
    /// stratum `S_h` contributes `g(t) / π(t)` weighted by the base-design
    /// mass of `S_h`, and summing over strata telescopes back to the
    /// unstratified estimator — including for Voronoi cells straddling a
    /// stratum boundary.
    Stratified {
        /// The stratum locations are drawn from.
        rect: Rect,
        /// The full-region base design (never itself `Stratified`).
        base: Box<QuerySampler>,
        /// Weighted base only: base-grid cells clipped to the stratum, with
        /// positive mass (empty for a uniform base).
        cells: Vec<Rect>,
        /// Cumulative renormalised masses over `cells` for inverse-CDF
        /// draws (parallel to `cells`; last entry forced to 1).
        cumulative: Vec<f64>,
    },
}

impl QuerySampler {
    /// Uniform sampler over a region.
    pub fn uniform(bbox: Rect) -> Self {
        QuerySampler::Uniform { bbox }
    }

    /// Density-weighted sampler.
    pub fn weighted(grid: DensityGrid) -> Self {
        QuerySampler::Weighted { grid }
    }

    /// Restricts a base design to one stratum.
    ///
    /// Collapses to the plain base design when the stratum is the whole
    /// region (bitwise — a one-stratum partition samples exactly like the
    /// unstratified run). For a weighted base the restricted draw is
    /// prepared as an inverse-CDF over the base grid's cells clipped to the
    /// stratum; a stratum carrying zero base mass falls back to a uniform
    /// draw inside the stratum (its stratified weight is zero, so it never
    /// contributes anyway).
    pub fn stratified(rect: Rect, base: QuerySampler) -> Self {
        let base = match base {
            // Never nest: re-stratifying restricts the original base.
            QuerySampler::Stratified { base, .. } => *base,
            other => other,
        };
        if rect == base.bbox() {
            return base;
        }
        let (cells, cumulative) = match &base {
            QuerySampler::Weighted { grid } => {
                let (cols, rows) = grid.resolution();
                let mut cells = Vec::new();
                let mut masses = Vec::new();
                for row in 0..rows {
                    for col in 0..cols {
                        let cell = grid.cell_rect(col, row);
                        let Some(clip) = cell.intersection(&rect) else {
                            continue;
                        };
                        let area = clip.area();
                        if area <= 0.0 {
                            continue;
                        }
                        // Piecewise-constant density: pdf at the clipped
                        // cell's centre times its area is the exact mass.
                        let mass = grid.pdf(&clip.center()) * area;
                        if mass > 0.0 {
                            cells.push(clip);
                            masses.push(mass);
                        }
                    }
                }
                let total: f64 = masses.iter().sum();
                if total > 0.0 {
                    let mut cumulative = Vec::with_capacity(masses.len());
                    let mut acc = 0.0;
                    for mass in &masses {
                        acc += mass / total;
                        cumulative.push(acc);
                    }
                    // Guard against floating point drift, exactly like the
                    // grid's own CDF.
                    if let Some(last) = cumulative.last_mut() {
                        *last = 1.0;
                    }
                    (cells, cumulative)
                } else {
                    (Vec::new(), Vec::new())
                }
            }
            _ => (Vec::new(), Vec::new()),
        };
        QuerySampler::Stratified {
            rect,
            base: Box::new(base),
            cells,
            cumulative,
        }
    }

    /// The full-region base design (`self` unless stratified).
    pub fn base(&self) -> &QuerySampler {
        match self {
            QuerySampler::Stratified { base, .. } => base,
            other => other,
        }
    }

    /// The region this sampler actually draws locations from (the stratum
    /// for a stratified design, the full region otherwise).
    pub fn draw_region(&self) -> Rect {
        match self {
            QuerySampler::Stratified { rect, .. } => *rect,
            other => other.bbox(),
        }
    }

    /// The full region of the design (the base's bounding box for a
    /// stratified sampler — probabilities stay full-region).
    pub fn bbox(&self) -> Rect {
        match self {
            QuerySampler::Uniform { bbox } => *bbox,
            QuerySampler::Weighted { grid } => grid.bbox(),
            QuerySampler::Stratified { base, .. } => base.bbox(),
        }
    }

    /// `true` for the weighted design (a stratified sampler reports its
    /// base).
    pub fn is_weighted(&self) -> bool {
        matches!(self.base(), QuerySampler::Weighted { .. })
    }

    /// Draws one query location.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Point {
        match self {
            QuerySampler::Uniform { bbox } => bbox.at_fraction(rng.gen(), rng.gen()),
            QuerySampler::Weighted { grid } => grid.sample(rng),
            QuerySampler::Stratified {
                rect,
                cells,
                cumulative,
                ..
            } => {
                if cells.is_empty() {
                    // Uniform base (or a zero-mass stratum, which never
                    // receives budget): uniform inside the stratum.
                    return rect.at_fraction(rng.gen(), rng.gen());
                }
                // Inverse-CDF over the clipped cells, mirroring
                // `DensityGrid::sample` (half-open ownership so zero-mass
                // boundaries can never be selected).
                let u: f64 = rng.gen();
                let idx = cumulative
                    .partition_point(|&c| c <= u)
                    .min(cumulative.len() - 1);
                cells[idx].at_fraction(rng.gen(), rng.gen())
            }
        }
    }

    /// Probability that a sampled location lands inside the given exactly
    /// computed cell.
    ///
    /// For the uniform design this is `area / |V_0|` and works for any cell
    /// (convex or not). The weighted design needs the cell's convex polygon
    /// to integrate the density exactly; for concave top-h cells it falls
    /// back to `None` and the caller must either use `h = 1` or switch to the
    /// uniform design (that combination is how the experiments run it).
    pub fn cell_probability(&self, cell: &TopKCell) -> Option<f64> {
        match self.base() {
            QuerySampler::Uniform { bbox } => Some(cell.area / bbox.area()),
            QuerySampler::Weighted { grid } => {
                cell.convex.as_ref().map(|poly| grid.integrate_convex(poly))
            }
            QuerySampler::Stratified { .. } => unreachable!("base() is never stratified"),
        }
    }

    /// Probability of landing inside an arbitrary convex polygon.
    pub fn convex_probability(&self, polygon: &ConvexPolygon) -> f64 {
        match self.base() {
            QuerySampler::Uniform { bbox } => polygon.area() / bbox.area(),
            QuerySampler::Weighted { grid } => grid.integrate_convex(polygon),
            QuerySampler::Stratified { .. } => unreachable!("base() is never stratified"),
        }
    }

    /// Probability corresponding to a raw area, available only for the
    /// uniform design (the weighted design needs the shape, not just the
    /// area).
    pub fn area_probability(&self, area: f64) -> Option<f64> {
        match self.base() {
            QuerySampler::Uniform { bbox } => Some(area / bbox.area()),
            QuerySampler::Weighted { .. } => None,
            QuerySampler::Stratified { .. } => unreachable!("base() is never stratified"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::top_k_cell;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bbox() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn uniform_sampler_covers_the_box() {
        let s = QuerySampler::uniform(bbox());
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = Point::ORIGIN;
        let n = 2_000;
        for _ in 0..n {
            let p = s.sample(&mut rng);
            assert!(bbox().contains(&p));
            mean = mean + p;
        }
        mean = mean / n as f64;
        assert!((mean.x - 50.0).abs() < 2.5 && (mean.y - 50.0).abs() < 2.5);
        assert!(!s.is_weighted());
    }

    #[test]
    fn uniform_cell_probability_is_area_fraction() {
        let s = QuerySampler::uniform(bbox());
        let site = Point::new(25.0, 50.0);
        let others = vec![Point::new(75.0, 50.0)];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        assert!((s.cell_probability(&cell).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(s.area_probability(2_500.0), Some(0.25));
    }

    #[test]
    fn weighted_sampler_prefers_heavy_cells() {
        let grid = DensityGrid::from_weights(bbox(), 2, 1, vec![9.0, 1.0]);
        let s = QuerySampler::weighted(grid);
        assert!(s.is_weighted());
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5_000;
        let left = (0..n).filter(|_| s.sample(&mut rng).x < 50.0).count();
        assert!(left as f64 / n as f64 > 0.85);
    }

    #[test]
    fn weighted_cell_probability_uses_density() {
        let grid = DensityGrid::from_weights(bbox(), 2, 1, vec![9.0, 1.0]);
        let s = QuerySampler::weighted(grid);
        // Cell of the left site is the left half of the box, which carries
        // 0.9 of the probability mass.
        let site = Point::new(25.0, 50.0);
        let others = vec![Point::new(75.0, 50.0)];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        let p = s.cell_probability(&cell).unwrap();
        assert!((p - 0.9).abs() < 1e-9);
        // Raw areas cannot be converted under the weighted design.
        assert!(s.area_probability(5_000.0).is_none());
    }

    #[test]
    fn weighted_probability_unavailable_for_concave_cells() {
        let grid = DensityGrid::uniform(bbox());
        let s = QuerySampler::weighted(grid);
        let site = Point::new(50.0, 50.0);
        let others = vec![
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 90.0),
        ];
        let cell = top_k_cell(&site, &others, 2, &bbox());
        assert!(cell.convex.is_none());
        assert!(s.cell_probability(&cell).is_none());
    }

    #[test]
    fn bbox_accessor_matches_design() {
        let s = QuerySampler::uniform(bbox());
        assert_eq!(s.bbox(), bbox());
        let w = QuerySampler::weighted(DensityGrid::uniform(bbox()));
        assert_eq!(w.bbox(), bbox());
    }

    #[test]
    fn stratified_collapses_on_the_full_region() {
        let s = QuerySampler::stratified(bbox(), QuerySampler::uniform(bbox()));
        assert!(matches!(s, QuerySampler::Uniform { .. }));
        let w =
            QuerySampler::stratified(bbox(), QuerySampler::weighted(DensityGrid::uniform(bbox())));
        assert!(matches!(w, QuerySampler::Weighted { .. }));
    }

    #[test]
    fn stratified_uniform_draws_inside_the_stratum_with_full_region_probabilities() {
        let stratum = Rect::from_bounds(0.0, 0.0, 50.0, 100.0);
        let s = QuerySampler::stratified(stratum, QuerySampler::uniform(bbox()));
        assert_eq!(s.bbox(), bbox(), "probabilities stay full-region");
        assert_eq!(s.draw_region(), stratum);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            assert!(stratum.contains(&s.sample(&mut rng)));
        }
        // The probability accessors report the *base* design's values.
        assert_eq!(s.area_probability(2_500.0), Some(0.25));
        let site = Point::new(25.0, 50.0);
        let others = vec![Point::new(75.0, 50.0)];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        assert!((s.cell_probability(&cell).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stratified_weighted_draws_follow_the_restricted_density() {
        // Left half carries 0.9 of the mass split 9:0 over its two columns.
        let grid = DensityGrid::from_weights(bbox(), 4, 1, vec![9.0, 0.0, 0.5, 0.5]);
        let stratum = Rect::from_bounds(0.0, 0.0, 50.0, 100.0);
        let s = QuerySampler::stratified(stratum, QuerySampler::weighted(grid));
        assert!(s.is_weighted());
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..500 {
            let p = s.sample(&mut rng);
            assert!(stratum.contains(&p), "draw {p:?} escaped the stratum");
            assert!(p.x < 25.0, "zero-weight column was sampled at {p:?}");
        }
    }

    #[test]
    fn stratified_zero_mass_stratum_falls_back_to_uniform() {
        let grid = DensityGrid::from_weights(bbox(), 2, 1, vec![1.0, 0.0]);
        let stratum = Rect::from_bounds(50.0, 0.0, 100.0, 100.0);
        let s = QuerySampler::stratified(stratum, QuerySampler::weighted(grid));
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert!(stratum.contains(&s.sample(&mut rng)));
        }
    }
}
