//! Axis-aligned rectangles.
//!
//! A [`Rect`] plays two roles in the reproduction:
//!
//! * the **bounding box `B`** of the paper's Definition 1, which makes every
//!   Voronoi cell a finite region and doubles as the region an aggregate
//!   query ranges over, and
//! * the query **regions** used by selection conditions (e.g. "Austin, TX").

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::EPS;

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Creates a rectangle from explicit bounds.
    ///
    /// # Panics
    /// Panics if `min_x > max_x` or `min_y > max_y`.
    pub fn from_bounds(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x <= max_x && min_y <= max_y,
            "invalid rectangle bounds: ({min_x},{min_y})-({max_x},{max_y})"
        );
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A square of side `2 * half` centred on `c`.
    pub fn centered(c: Point, half: f64) -> Self {
        Rect::from_bounds(c.x - half, c.y - half, c.x + half, c.y + half)
    }

    /// The smallest rectangle containing every point of the iterator.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut r = Rect::new(first, first);
        for p in iter {
            r.min_x = r.min_x.min(p.x);
            r.min_y = r.min_y.min(p.y);
            r.max_x = r.max_x.max(p.x);
            r.max_y = r.max_y.max(p.y);
        }
        Some(r)
    }

    /// Width (x extent) of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height (y extent) of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter of the rectangle (the `b` constant of the paper's binary
    /// search cost bound `O(log(b/δ))`).
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Length of the diagonal.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        (self.width() * self.width() + self.height() * self.height()).sqrt()
    }

    /// Centre of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// `true` when the point lies inside or on the boundary (within [`EPS`]).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x - EPS
            && p.x <= self.max_x + EPS
            && p.y >= self.min_y - EPS
            && p.y <= self.max_y + EPS
    }

    /// `true` when the point lies strictly inside (more than [`EPS`] away from
    /// every edge).
    #[inline]
    pub fn contains_strict(&self, p: &Point) -> bool {
        p.x > self.min_x + EPS
            && p.x < self.max_x - EPS
            && p.y > self.min_y + EPS
            && p.y < self.max_y - EPS
    }

    /// `true` when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x - EPS
            && other.max_x <= self.max_x + EPS
            && other.min_y >= self.min_y - EPS
            && other.max_y <= self.max_y + EPS
    }

    /// `true` when the two rectangles overlap (closed intersection).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x + EPS
            && other.min_x <= self.max_x + EPS
            && self.min_y <= other.max_y + EPS
            && other.min_y <= self.max_y + EPS
    }

    /// Intersection of the two rectangles, if non-empty.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min_x = self.min_x.max(other.min_x);
        let min_y = self.min_y.max(other.min_y);
        let max_x = self.max_x.min(other.max_x);
        let max_y = self.max_y.min(other.max_y);
        if min_x <= max_x && min_y <= max_y {
            Some(Rect::from_bounds(min_x, min_y, max_x, max_y))
        } else {
            None
        }
    }

    /// The rectangle grown by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect::from_bounds(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
    }

    /// The four corners in counter-clockwise order starting at
    /// `(min_x, min_y)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// Squared distance from `p` to the closest point of the rectangle
    /// (zero when `p` is inside). Used by the k-d tree pruning rule.
    pub fn distance_sq_to_point(&self, p: &Point) -> f64 {
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Clamps a point into the rectangle.
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }

    /// Maps a pair of unit-interval coordinates to a point of the rectangle.
    ///
    /// `(0, 0)` maps to the min corner and `(1, 1)` to the max corner. This is
    /// the hook used by the samplers in `lbs-core` so that they can stay
    /// agnostic of the rectangle layout.
    pub fn at_fraction(&self, fx: f64, fy: f64) -> Point {
        Point::new(
            self.min_x + fx * self.width(),
            self.min_y + fy * self.height(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::from_bounds(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn construction_orders_corners() {
        let r = Rect::new(Point::new(2.0, -1.0), Point::new(-3.0, 4.0));
        assert_eq!(r, Rect::from_bounds(-3.0, -1.0, 2.0, 4.0));
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_panic() {
        let _ = Rect::from_bounds(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn measures() {
        let r = Rect::from_bounds(0.0, 0.0, 3.0, 4.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.perimeter(), 14.0);
        assert!((r.diagonal() - 5.0).abs() < 1e-12);
        assert!(r.center().approx_eq(&Point::new(1.5, 2.0)));
    }

    #[test]
    fn containment() {
        let r = unit();
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(r.contains(&Point::new(0.0, 1.0)));
        assert!(!r.contains(&Point::new(1.5, 0.5)));
        assert!(r.contains_strict(&Point::new(0.5, 0.5)));
        assert!(!r.contains_strict(&Point::new(0.0, 0.5)));
    }

    #[test]
    fn rect_rect_relations() {
        let r = unit();
        let inner = Rect::from_bounds(0.25, 0.25, 0.75, 0.75);
        let overlapping = Rect::from_bounds(0.5, 0.5, 2.0, 2.0);
        let outside = Rect::from_bounds(2.0, 2.0, 3.0, 3.0);
        assert!(r.contains_rect(&inner));
        assert!(!r.contains_rect(&overlapping));
        assert!(r.intersects(&overlapping));
        assert!(!r.intersects(&outside));
        let i = r.intersection(&overlapping).unwrap();
        assert_eq!(i, Rect::from_bounds(0.5, 0.5, 1.0, 1.0));
        assert!(r.intersection(&outside).is_none());
    }

    #[test]
    fn bounding_of_points() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(0.0, -1.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r, Rect::from_bounds(-2.0, -1.0, 1.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn corners_ccw() {
        let r = unit();
        let c = r.corners();
        // Shoelace over the corners must be positive (counter-clockwise).
        let mut area2 = 0.0;
        for i in 0..4 {
            let a = c[i];
            let b = c[(i + 1) % 4];
            area2 += a.cross(&b);
        }
        assert!(area2 > 0.0);
    }

    #[test]
    fn distance_to_point() {
        let r = unit();
        assert_eq!(r.distance_sq_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.distance_sq_to_point(&Point::new(2.0, 0.5)), 1.0);
        assert_eq!(r.distance_sq_to_point(&Point::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn clamp_and_fraction() {
        let r = unit();
        assert!(r
            .clamp(&Point::new(2.0, -1.0))
            .approx_eq(&Point::new(1.0, 0.0)));
        assert!(r.at_fraction(0.5, 0.25).approx_eq(&Point::new(0.5, 0.25)));
    }

    #[test]
    fn expanded_grows_every_side() {
        let r = unit().expanded(1.0);
        assert_eq!(r, Rect::from_bounds(-1.0, -1.0, 2.0, 2.0));
    }
}
