//! Convex polygons and half-plane clipping.
//!
//! The exact top-1 Voronoi cell construction of LR-LBS-AGG (paper §3.1)
//! maintains a convex polygon — initially the bounding box — and repeatedly
//! clips it by the perpendicular-bisector half-plane contributed by every
//! newly discovered tuple. [`ConvexPolygon`] stores the vertices in
//! counter-clockwise order and implements that clip, plus the area, the
//! containment test and the ray intersection the estimators need.

use serde::{Deserialize, Serialize};

use crate::halfplane::HalfPlane;
use crate::line::{Ray, Segment};
use crate::point::Point;
use crate::rect::Rect;
use crate::EPS;

/// A (possibly empty) convex polygon with vertices in counter-clockwise order.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Creates a convex polygon directly from counter-clockwise vertices.
    ///
    /// The constructor trusts the caller about convexity and orientation;
    /// use [`ConvexPolygon::hull`] when the input is an arbitrary point set.
    pub fn from_ccw_vertices(vertices: Vec<Point>) -> Self {
        ConvexPolygon { vertices }
    }

    /// The empty polygon.
    pub fn empty() -> Self {
        ConvexPolygon {
            vertices: Vec::new(),
        }
    }

    /// Convex polygon covering a rectangle.
    pub fn from_rect(rect: &Rect) -> Self {
        ConvexPolygon {
            vertices: rect.corners().to_vec(),
        }
    }

    /// Convex hull of an arbitrary point set (Andrew's monotone chain).
    pub fn hull(points: &[Point]) -> Self {
        let mut pts: Vec<Point> = points.to_vec();
        pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        pts.dedup_by(|a, b| a.approx_eq(b));
        let n = pts.len();
        if n <= 2 {
            return ConvexPolygon { vertices: pts };
        }
        let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
        // Lower hull.
        for &p in &pts {
            while hull.len() >= 2
                && Point::orient(&hull[hull.len() - 2], &hull[hull.len() - 1], &p) <= EPS
            {
                hull.pop();
            }
            hull.push(p);
        }
        // Upper hull.
        let lower_len = hull.len() + 1;
        for &p in pts.iter().rev().skip(1) {
            while hull.len() >= lower_len
                && Point::orient(&hull[hull.len() - 2], &hull[hull.len() - 1], &p) <= EPS
            {
                hull.pop();
            }
            hull.push(p);
        }
        hull.pop();
        ConvexPolygon { vertices: hull }
    }

    /// The vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the polygon has no area (fewer than three vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Area of the polygon (shoelace formula; zero for degenerate polygons).
    pub fn area(&self) -> f64 {
        ccw_area(&self.vertices)
    }

    /// Centroid of the polygon. Returns the average of the vertices for
    /// degenerate polygons and `None` when there are no vertices at all.
    pub fn centroid(&self) -> Option<Point> {
        if self.vertices.is_empty() {
            return None;
        }
        if self.is_empty() {
            let sum = self.vertices.iter().fold(Point::ORIGIN, |acc, p| acc + *p);
            return Some(sum / self.vertices.len() as f64);
        }
        let mut twice_area = 0.0;
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            let w = a.cross(&b);
            twice_area += w;
            cx += (a.x + b.x) * w;
            cy += (a.y + b.y) * w;
        }
        if twice_area.abs() <= EPS {
            let sum = self.vertices.iter().fold(Point::ORIGIN, |acc, p| acc + *p);
            return Some(sum / self.vertices.len() as f64);
        }
        Some(Point::new(cx / (3.0 * twice_area), cy / (3.0 * twice_area)))
    }

    /// `true` when the point lies inside or on the boundary of the polygon.
    pub fn contains(&self, p: &Point) -> bool {
        if self.is_empty() {
            return false;
        }
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            // For a CCW polygon the interior is on the left of every edge.
            if Point::orient(&a, &b, p) < -1e-9 {
                return false;
            }
        }
        true
    }

    /// Clips the polygon by a half-plane (Sutherland–Hodgman step), keeping
    /// the part inside the half-plane.
    ///
    /// This is the fundamental operation of the exact Voronoi cell
    /// construction: each discovered neighbour tuple shrinks the tentative
    /// cell by one clip. Allocation-sensitive callers (the pruned cell
    /// engine) use `clip_into` with reused buffers instead; this method is
    /// a convenience wrapper around the same kernel and produces bit-equal
    /// vertices.
    pub fn clip(&self, hp: &HalfPlane) -> ConvexPolygon {
        let mut dists: Vec<f64> = Vec::with_capacity(self.vertices.len());
        let mut out: Vec<Point> = Vec::with_capacity(self.vertices.len() + 1);
        clip_into(&self.vertices, hp, &mut dists, &mut out);
        ConvexPolygon { vertices: out }
    }

    /// Clips the polygon by many half-planes in sequence.
    pub fn clip_all<'a, I: IntoIterator<Item = &'a HalfPlane>>(&self, planes: I) -> ConvexPolygon {
        let mut poly = self.clone();
        for hp in planes {
            if poly.is_empty() {
                break;
            }
            poly = poly.clip(hp);
        }
        poly
    }

    /// The edges of the polygon as segments, in counter-clockwise order.
    pub fn edges(&self) -> Vec<Segment> {
        if self.vertices.len() < 2 {
            return Vec::new();
        }
        (0..self.vertices.len())
            .map(|i| {
                Segment::new(
                    self.vertices[i],
                    self.vertices[(i + 1) % self.vertices.len()],
                )
            })
            .collect()
    }

    /// Axis-aligned bounding box of the polygon.
    pub fn bounding_rect(&self) -> Option<Rect> {
        Rect::bounding(self.vertices.iter().copied())
    }

    /// Distance along `ray` at which it first leaves the polygon, assuming
    /// the origin lies inside. Returns `None` if the origin is outside.
    ///
    /// LNR-LBS-AGG uses this to know how far a binary search along a ray can
    /// possibly have to walk.
    pub fn ray_exit(&self, ray: &Ray) -> Option<f64> {
        if !self.contains(&ray.origin) {
            return None;
        }
        let mut best: Option<f64> = None;
        for edge in self.edges() {
            let e = edge.end - edge.start;
            let denom = ray.direction.cross(&e);
            if denom.abs() <= EPS {
                continue;
            }
            let diff = edge.start - ray.origin;
            let t = diff.cross(&e) / denom;
            let u = diff.cross(&ray.direction) / denom;
            if t >= -EPS && (-EPS..=1.0 + EPS).contains(&u) {
                best = Some(best.map_or(t.max(0.0), |b: f64| b.max(t.max(0.0))));
            }
        }
        best
    }
}

/// Shoelace area of a counter-clockwise vertex list (zero when degenerate).
///
/// Shared by [`ConvexPolygon::area`] and the scratch-based constructions of
/// [`crate::cell_engine`], which hold their vertices in reused buffers and
/// must not build a polygon just to measure it.
pub(crate) fn ccw_area(vertices: &[Point]) -> f64 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let mut twice = 0.0;
    for i in 0..vertices.len() {
        let a = vertices[i];
        let b = vertices[(i + 1) % vertices.len()];
        twice += a.cross(&b);
    }
    twice.abs() * 0.5
}

/// The Sutherland–Hodgman clip kernel, writing the result into `out`.
///
/// `src` are the polygon vertices in counter-clockwise order; `dists` and
/// `out` are caller-owned buffers (cleared here) so a warm caller performs no
/// heap allocation. The routine is restructured for throughput but keeps the
/// floating-point **operation order** of the historical per-edge loop, so its
/// output is bit-identical to it:
///
/// * signed distances are evaluated once per vertex into the `dists` lane,
///   two vertices at a time (the old loop recomputed each vertex's distance
///   twice, as `d_cur` of one edge and `d_next` of the previous). The value
///   is a pure function of the vertex, so memoizing it cannot change a bit.
/// * the emit pass classifies each edge from the precomputed pair
///   `(dists[i], dists[i+1])`; crossing points use the exact historical
///   expression `cur.lerp(next, (d_cur / (d_cur - d_next)).clamp(0, 1))`.
/// * consecutive (near-)duplicate vertices produced by clips through a
///   vertex are collapsed in place, including the wrap-around pair.
pub(crate) fn clip_into(src: &[Point], hp: &HalfPlane, dists: &mut Vec<f64>, out: &mut Vec<Point>) {
    out.clear();
    let n = src.len();
    if n == 0 {
        return;
    }
    dists.clear();
    dists.reserve(n);
    let mut pairs = src.chunks_exact(2);
    for pair in pairs.by_ref() {
        // Two independent evaluations per iteration: the a*x + b*y - c lanes
        // have no cross dependency, so the compiler can keep both in flight.
        let d0 = hp.signed_distance(&pair[0]);
        let d1 = hp.signed_distance(&pair[1]);
        dists.push(d0);
        dists.push(d1);
    }
    if let Some(p) = pairs.remainder().first() {
        dists.push(hp.signed_distance(p));
    }

    for i in 0..n {
        let j = if i + 1 == n { 0 } else { i + 1 };
        let d_cur = dists[i];
        let d_next = dists[j];
        let cur_in = d_cur <= EPS;
        let next_in = d_next <= EPS;
        if cur_in {
            out.push(src[i]);
        }
        // Edge crosses the boundary: add the crossing point.
        if cur_in != next_in {
            let denom = d_cur - d_next;
            if denom.abs() > EPS {
                let t = d_cur / denom;
                out.push(src[i].lerp(&src[j], t.clamp(0.0, 1.0)));
            }
        }
    }
    out.dedup_by(|p, last| last.approx_eq_eps(p, 1e-9));
    if out.len() >= 2 && out[0].approx_eq_eps(out.last().unwrap(), 1e-9) {
        out.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> ConvexPolygon {
        ConvexPolygon::from_rect(&Rect::from_bounds(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn rect_polygon_area_and_containment() {
        let p = square();
        assert_eq!(p.len(), 4);
        assert!((p.area() - 100.0).abs() < 1e-9);
        assert!(p.contains(&Point::new(5.0, 5.0)));
        assert!(p.contains(&Point::new(0.0, 0.0)));
        assert!(!p.contains(&Point::new(-1.0, 5.0)));
        assert!(p.centroid().unwrap().approx_eq(&Point::new(5.0, 5.0)));
    }

    #[test]
    fn clip_by_halfplane_halves_square() {
        let p = square();
        // Keep x <= 5.
        let hp = HalfPlane::closer_to(&Point::new(0.0, 5.0), &Point::new(10.0, 5.0)).unwrap();
        let clipped = p.clip(&hp);
        assert!((clipped.area() - 50.0).abs() < 1e-9);
        assert!(clipped.contains(&Point::new(2.0, 5.0)));
        assert!(!clipped.contains(&Point::new(8.0, 5.0)));
    }

    #[test]
    fn clip_that_misses_keeps_polygon() {
        let p = square();
        let hp = HalfPlane::closer_to(&Point::new(5.0, 5.0), &Point::new(100.0, 5.0)).unwrap();
        let clipped = p.clip(&hp);
        assert!((clipped.area() - p.area()).abs() < 1e-9);
    }

    #[test]
    fn clip_that_excludes_everything_is_empty() {
        let p = square();
        let hp = HalfPlane::closer_to(&Point::new(100.0, 5.0), &Point::new(5.0, 5.0)).unwrap();
        let clipped = p.clip(&hp);
        assert!(clipped.is_empty());
        assert_eq!(clipped.area(), 0.0);
    }

    #[test]
    fn repeated_clips_build_voronoi_cell() {
        // Four sites around the origin; the Voronoi cell of the origin within
        // a large box is the square [-5,5]^2 given sites at (±10, 0), (0, ±10).
        let bbox = Rect::from_bounds(-50.0, -50.0, 50.0, 50.0);
        let site = Point::new(0.0, 0.0);
        let others = [
            Point::new(10.0, 0.0),
            Point::new(-10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(0.0, -10.0),
        ];
        let planes: Vec<HalfPlane> = others
            .iter()
            .map(|o| HalfPlane::closer_to(&site, o).unwrap())
            .collect();
        let cell = ConvexPolygon::from_rect(&bbox).clip_all(&planes);
        assert!((cell.area() - 100.0).abs() < 1e-6);
        assert!(cell.contains(&Point::new(4.9, 4.9)));
        assert!(!cell.contains(&Point::new(5.1, 0.0)));
    }

    #[test]
    fn hull_of_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(5.0, 5.0), // interior
            Point::new(5.0, 0.0), // on an edge
        ];
        let hull = ConvexPolygon::hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((hull.area() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hull_degenerate_inputs() {
        assert!(ConvexPolygon::hull(&[]).is_empty());
        assert!(ConvexPolygon::hull(&[Point::new(1.0, 1.0)]).is_empty());
        let collinear = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        let hull = ConvexPolygon::hull(&collinear);
        assert_eq!(hull.area(), 0.0);
    }

    #[test]
    fn edges_and_bounding_rect() {
        let p = square();
        assert_eq!(p.edges().len(), 4);
        assert_eq!(
            p.bounding_rect().unwrap(),
            Rect::from_bounds(0.0, 0.0, 10.0, 10.0)
        );
        assert!(ConvexPolygon::empty().bounding_rect().is_none());
    }

    #[test]
    fn ray_exit_distance() {
        let p = square();
        let ray = Ray::new(Point::new(5.0, 5.0), Point::new(1.0, 0.0)).unwrap();
        let t = p.ray_exit(&ray).unwrap();
        assert!((t - 5.0).abs() < 1e-9);
        let outside_ray = Ray::new(Point::new(50.0, 50.0), Point::new(1.0, 0.0)).unwrap();
        assert!(p.ray_exit(&outside_ray).is_none());
    }

    #[test]
    fn centroid_of_triangle() {
        let tri = ConvexPolygon::from_ccw_vertices(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        assert!(tri.centroid().unwrap().approx_eq(&Point::new(1.0, 1.0)));
        assert!((tri.area() - 4.5).abs() < 1e-12);
    }
}
