//! Points, vectors and basic predicates on the Euclidean plane.
//!
//! [`Point`] doubles as a 2-D vector: the arithmetic operators treat it as a
//! vector, while the distance helpers treat it as a location. The LBS model of
//! the paper works on longitude/latitude pairs projected onto a plane; the
//! rest of the workspace stores coordinates in kilometres so that Euclidean
//! distance is meaningful.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::EPS;

/// A point (or 2-D vector) on the Euclidean plane.
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (e.g. projected longitude, in kilometres).
    pub x: f64,
    /// Vertical coordinate (e.g. projected latitude, in kilometres).
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::distance`] and sufficient for nearest-neighbour
    /// comparisons, which is how the spatial indexes use it.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector dot product.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product of the two vectors.
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: &Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm when interpreted as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `None` for (near-)zero vectors, for which no direction exists.
    #[inline]
    pub fn normalized(&self) -> Option<Point> {
        let n = self.norm();
        if n <= EPS {
            None
        } else {
            Some(Point::new(self.x / n, self.y / n))
        }
    }

    /// The vector rotated by 90 degrees counter-clockwise.
    #[inline]
    pub fn perp(&self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: returns `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Orientation of the ordered triple `(a, b, c)`.
    ///
    /// Returns a positive value when the triple turns counter-clockwise,
    /// negative when clockwise, and (near) zero when collinear.
    #[inline]
    pub fn orient(a: &Point, b: &Point, c: &Point) -> f64 {
        (*b - *a).cross(&(*c - *a))
    }

    /// `true` when `self` and `other` coincide within [`EPS`] (absolute).
    #[inline]
    pub fn approx_eq(&self, other: &Point) -> bool {
        (self.x - other.x).abs() <= EPS && (self.y - other.y).abs() <= EPS
    }

    /// `true` when `self` and `other` coincide within the given tolerance.
    #[inline]
    pub fn approx_eq_eps(&self, other: &Point, eps: f64) -> bool {
        (self.x - other.x).abs() <= eps && (self.y - other.y).abs() <= eps
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Angle of the vector in radians, in `(-pi, pi]`.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_norm() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
        assert!((b.norm() - 5.0).abs() < 1e-12);
        assert!((b.norm_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.cross(&b), 1.0);
        assert_eq!(b.cross(&a), -1.0);
    }

    #[test]
    fn orientation_predicate() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let ccw = Point::new(0.5, 1.0);
        let cw = Point::new(0.5, -1.0);
        let col = Point::new(2.0, 0.0);
        assert!(Point::orient(&a, &b, &ccw) > 0.0);
        assert!(Point::orient(&a, &b, &cw) < 0.0);
        assert!(Point::orient(&a, &b, &col).abs() < 1e-12);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Point::ORIGIN.normalized().is_none());
        let n = Point::new(0.0, 5.0).normalized().unwrap();
        assert!(n.approx_eq(&Point::new(0.0, 1.0)));
    }

    #[test]
    fn perp_is_counter_clockwise() {
        let v = Point::new(1.0, 0.0);
        assert!(v.perp().approx_eq(&Point::new(0.0, 1.0)));
        assert!(v.cross(&v.perp()) > 0.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert!(a.midpoint(&b).approx_eq(&Point::new(1.0, 2.0)));
        assert!(a.lerp(&b, 0.25).approx_eq(&Point::new(0.5, 1.0)));
        assert!(a.lerp(&b, 0.0).approx_eq(&a));
        assert!(a.lerp(&b, 1.0).approx_eq(&b));
    }

    #[test]
    fn angle_quadrants() {
        assert!((Point::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Point::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Point::new(-1.0, 0.0).angle() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, -2.5).into();
        assert_eq!(p, Point::new(1.5, -2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
    }
}
