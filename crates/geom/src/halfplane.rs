//! Closed half-planes.
//!
//! A top-1 Voronoi cell is exactly an intersection of half-planes: for a
//! tuple `t` and every other tuple `t'`, the cell lies on `t`'s side of the
//! perpendicular bisector of `(t, t')`. [`HalfPlane`] captures one such
//! constraint; [`crate::convex::ConvexPolygon::clip`] intersects a convex
//! polygon with it.

use serde::{Deserialize, Serialize};

use crate::line::Line;
use crate::point::Point;
use crate::EPS;

/// The closed half-plane `a*x + b*y <= c` with `(a, b)` of unit length.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HalfPlane {
    /// Boundary line of the half-plane; the half-plane is the non-positive
    /// side of the line's normal.
    pub boundary: Line,
}

impl HalfPlane {
    /// Half-plane whose boundary is `boundary` and which contains the points
    /// with non-positive signed distance.
    #[inline]
    pub fn new(boundary: Line) -> Self {
        HalfPlane { boundary }
    }

    /// The half-plane of points at least as close to `keep` as to `other`.
    ///
    /// This is the constraint contributed by tuple `other` to the Voronoi cell
    /// of tuple `keep`. Returns `None` when the two points (nearly) coincide.
    pub fn closer_to(keep: &Point, other: &Point) -> Option<HalfPlane> {
        // Line::bisector's normal points from `keep` to `other`, so the
        // "closer to keep" side is the non-positive side — exactly our
        // convention.
        Line::bisector(keep, other).map(HalfPlane::new)
    }

    /// Half-plane containing `inside`, bounded by `boundary`.
    ///
    /// Returns `None` when `inside` lies (nearly) on the boundary, in which
    /// case the orientation is ambiguous.
    pub fn with_inside(boundary: Line, inside: &Point) -> Option<HalfPlane> {
        let d = boundary.signed_distance(inside);
        if d.abs() <= EPS {
            None
        } else if d < 0.0 {
            Some(HalfPlane::new(boundary))
        } else {
            Some(HalfPlane::new(Line {
                a: -boundary.a,
                b: -boundary.b,
                c: -boundary.c,
            }))
        }
    }

    /// Signed distance of `p` to the boundary: negative inside, positive
    /// outside.
    #[inline]
    pub fn signed_distance(&self, p: &Point) -> f64 {
        self.boundary.signed_distance(p)
    }

    /// `true` when the point belongs to the closed half-plane (within [`EPS`]).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.signed_distance(p) <= EPS
    }

    /// `true` when the point lies strictly inside the half-plane.
    #[inline]
    pub fn contains_strict(&self, p: &Point) -> bool {
        self.signed_distance(p) < -EPS
    }

    /// The complementary half-plane (shared boundary, opposite side).
    pub fn complement(&self) -> HalfPlane {
        HalfPlane::new(Line {
            a: -self.boundary.a,
            b: -self.boundary.b,
            c: -self.boundary.c,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closer_to_orientation() {
        let t = Point::new(0.0, 0.0);
        let other = Point::new(10.0, 0.0);
        let hp = HalfPlane::closer_to(&t, &other).unwrap();
        assert!(hp.contains(&t));
        assert!(!hp.contains(&other));
        assert!(hp.contains(&Point::new(5.0, 100.0))); // on the boundary
        assert!(hp.contains(&Point::new(4.9, -3.0)));
        assert!(!hp.contains(&Point::new(5.1, -3.0)));
    }

    #[test]
    fn closer_to_degenerate() {
        let t = Point::new(1.0, 2.0);
        assert!(HalfPlane::closer_to(&t, &t).is_none());
    }

    #[test]
    fn with_inside_flips_when_needed() {
        let boundary = Line::through(&Point::new(0.0, 0.0), &Point::new(1.0, 0.0)).unwrap();
        let above = Point::new(0.0, 5.0);
        let below = Point::new(0.0, -5.0);
        let hp_above = HalfPlane::with_inside(boundary, &above).unwrap();
        assert!(hp_above.contains(&above));
        assert!(!hp_above.contains(&below));
        let hp_below = HalfPlane::with_inside(boundary, &below).unwrap();
        assert!(hp_below.contains(&below));
        assert!(!hp_below.contains(&above));
        // A point on the boundary is ambiguous.
        assert!(HalfPlane::with_inside(boundary, &Point::new(3.0, 0.0)).is_none());
    }

    #[test]
    fn complement_flips_containment() {
        let hp = HalfPlane::closer_to(&Point::new(0.0, 0.0), &Point::new(2.0, 0.0)).unwrap();
        let comp = hp.complement();
        let inside = Point::new(-1.0, 0.0);
        let outside = Point::new(3.0, 0.0);
        assert!(hp.contains(&inside) && !comp.contains_strict(&inside));
        assert!(comp.contains(&outside) && !hp.contains(&outside));
    }

    #[test]
    fn signed_distance_symmetry() {
        let hp = HalfPlane::closer_to(&Point::new(0.0, 0.0), &Point::new(4.0, 0.0)).unwrap();
        assert!((hp.signed_distance(&Point::new(0.0, 0.0)) + 2.0).abs() < 1e-12);
        assert!((hp.signed_distance(&Point::new(4.0, 0.0)) - 2.0).abs() < 1e-12);
    }
}
