//! Full Voronoi diagrams over a site set.
//!
//! The estimators never need the full diagram — they discover one cell at a
//! time through the kNN interface — but the reproduction of the paper's
//! Figure 11 ("Voronoi decomposition of Starbucks in US") does, and the test
//! suites use the diagram as an oracle to validate the incremental cell
//! construction.
//!
//! The construction is the straightforward per-site half-plane clipping with
//! a uniform-grid neighbour filter: for each site we only clip against sites
//! whose distance is at most twice the distance to the farthest current cell
//! vertex, enumerated in growing rings of grid buckets. This keeps the cost
//! close to `O(n · m)` where `m` is the average neighbour count, which is
//! ample for the tens of thousands of sites used by the experiments.

use serde::{Deserialize, Serialize};

use crate::convex::ConvexPolygon;
use crate::halfplane::HalfPlane;
use crate::point::Point;
use crate::rect::Rect;

/// A computed Voronoi diagram: one convex cell (clipped to the bounding box)
/// per input site, in input order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VoronoiDiagram {
    /// The input sites, in the order the cells are stored.
    pub sites: Vec<Point>,
    /// `cells[i]` is the Voronoi cell of `sites[i]`, clipped to the box.
    pub cells: Vec<ConvexPolygon>,
    /// The bounding box of the diagram.
    pub bbox: Rect,
}

impl VoronoiDiagram {
    /// Areas of all cells, in site order.
    pub fn cell_areas(&self) -> Vec<f64> {
        self.cells.iter().map(|c| c.area()).collect()
    }

    /// Sum of all cell areas (should equal the box area up to rounding).
    pub fn total_area(&self) -> f64 {
        self.cells.iter().map(|c| c.area()).sum()
    }

    /// Index of the site whose cell contains the query point, if any.
    ///
    /// Points exactly on shared edges may be reported for either incident
    /// cell.
    pub fn locate(&self, q: &Point) -> Option<usize> {
        self.cells.iter().position(|c| c.contains(q))
    }
}

/// Simple uniform grid over the sites used to enumerate near neighbours in
/// growing rings.
struct SiteGrid {
    bbox: Rect,
    cell_size: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<usize>>,
}

impl SiteGrid {
    fn build(sites: &[Point], bbox: &Rect) -> Self {
        let n = sites.len().max(1);
        // Aim for ~1-2 sites per bucket.
        let target = (n as f64).sqrt().ceil() as usize;
        let cols = target.clamp(1, 512);
        let rows = target.clamp(1, 512);
        let cell_size = (bbox.width() / cols as f64)
            .max(bbox.height() / rows as f64)
            .max(1e-12);
        let mut buckets = vec![Vec::new(); cols * rows];
        let mut grid = SiteGrid {
            bbox: *bbox,
            cell_size,
            cols,
            rows,
            buckets: Vec::new(),
        };
        for (i, p) in sites.iter().enumerate() {
            let (cx, cy) = grid.bucket_of(p);
            buckets[cy * cols + cx].push(i);
        }
        grid.buckets = buckets;
        grid
    }

    fn bucket_of(&self, p: &Point) -> (usize, usize) {
        let cx = (((p.x - self.bbox.min_x) / self.cell_size) as isize)
            .clamp(0, self.cols as isize - 1) as usize;
        let cy = (((p.y - self.bbox.min_y) / self.cell_size) as isize)
            .clamp(0, self.rows as isize - 1) as usize;
        (cx, cy)
    }

    /// Indices of sites whose bucket is within `ring` buckets (Chebyshev
    /// distance) of the bucket containing `p`, visiting only the new ring.
    fn ring(&self, p: &Point, ring: usize) -> Vec<usize> {
        let (cx, cy) = self.bucket_of(p);
        let mut out = Vec::new();
        let r = ring as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                if dx.abs().max(dy.abs()) != r {
                    continue;
                }
                let nx = cx as isize + dx;
                let ny = cy as isize + dy;
                if nx < 0 || ny < 0 || nx >= self.cols as isize || ny >= self.rows as isize {
                    continue;
                }
                out.extend_from_slice(&self.buckets[ny as usize * self.cols + nx as usize]);
            }
        }
        out
    }

    fn max_ring(&self) -> usize {
        self.cols.max(self.rows)
    }
}

/// Computes the Voronoi diagram of `sites` clipped to `bbox`.
///
/// Duplicate sites are tolerated: the duplicates after the first receive an
/// empty cell.
pub fn voronoi_diagram(sites: &[Point], bbox: &Rect) -> VoronoiDiagram {
    let grid = SiteGrid::build(sites, bbox);
    let mut cells = Vec::with_capacity(sites.len());

    for (i, site) in sites.iter().enumerate() {
        let mut cell = ConvexPolygon::from_rect(bbox);
        let mut clipped_against: Vec<usize> = Vec::new();

        // Grow rings until the closest unexplored site cannot possibly affect
        // the cell any more: once the ring's minimum possible distance from
        // the site exceeds twice the farthest current cell vertex, every
        // bisector with a site in that ring or beyond misses the cell.
        for ring in 0..=grid.max_ring() {
            if ring > 0 {
                let ring_min_dist = (ring as f64 - 1.0).max(0.0) * grid.cell_size;
                let max_vertex_dist = cell
                    .vertices()
                    .iter()
                    .map(|v| v.distance(site))
                    .fold(0.0_f64, f64::max);
                if ring_min_dist > 2.0 * max_vertex_dist && !cell.is_empty() {
                    break;
                }
            }
            for j in grid.ring(site, ring) {
                if j == i || clipped_against.contains(&j) {
                    continue;
                }
                clipped_against.push(j);
                if sites[j].approx_eq(site) {
                    // Duplicate site: the later copy gets an empty cell, the
                    // earlier copy is unaffected.
                    if j < i {
                        cell = ConvexPolygon::empty();
                    }
                    continue;
                }
                if let Some(hp) = HalfPlane::closer_to(site, &sites[j]) {
                    cell = cell.clip(&hp);
                    if cell.is_empty() {
                        break;
                    }
                }
            }
            if cell.is_empty() {
                break;
            }
        }
        cells.push(cell);
    }

    VoronoiDiagram {
        sites: sites.to_vec(),
        cells,
        bbox: *bbox,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn single_site_owns_whole_box() {
        let d = voronoi_diagram(&[Point::new(20.0, 30.0)], &bbox());
        assert_eq!(d.cells.len(), 1);
        assert!((d.total_area() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn two_sites_split_the_box() {
        let d = voronoi_diagram(&[Point::new(25.0, 50.0), Point::new(75.0, 50.0)], &bbox());
        assert!((d.cells[0].area() - 5_000.0).abs() < 1e-6);
        assert!((d.cells[1].area() - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn cell_areas_partition_the_box() {
        // A deterministic pseudo-random scatter of sites; the cells must tile
        // the box exactly.
        let mut sites = Vec::new();
        let mut x = 7u64;
        for _ in 0..60 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fx = ((x >> 11) as f64) / ((1u64 << 53) as f64);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fy = ((x >> 11) as f64) / ((1u64 << 53) as f64);
            sites.push(Point::new(fx * 100.0, fy * 100.0));
        }
        let d = voronoi_diagram(&sites, &bbox());
        assert!(
            (d.total_area() - 10_000.0).abs() < 1e-3,
            "total area {}",
            d.total_area()
        );
        // Every site is inside its own cell.
        for (i, s) in sites.iter().enumerate() {
            assert!(d.cells[i].contains(s), "site {i} outside its cell");
        }
    }

    #[test]
    fn locate_finds_owning_cell() {
        let sites = vec![
            Point::new(20.0, 20.0),
            Point::new(80.0, 20.0),
            Point::new(50.0, 80.0),
        ];
        let d = voronoi_diagram(&sites, &bbox());
        assert_eq!(d.locate(&Point::new(18.0, 22.0)), Some(0));
        assert_eq!(d.locate(&Point::new(82.0, 18.0)), Some(1));
        assert_eq!(d.locate(&Point::new(50.0, 95.0)), Some(2));
    }

    #[test]
    fn nearest_site_owns_the_cell_property() {
        // For a set of sites, any query point's containing cell must belong
        // to (one of) its nearest site(s).
        let sites = vec![
            Point::new(10.0, 10.0),
            Point::new(90.0, 15.0),
            Point::new(55.0, 60.0),
            Point::new(30.0, 85.0),
            Point::new(70.0, 90.0),
        ];
        let d = voronoi_diagram(&sites, &bbox());
        for (qi, qj) in [(13, 27), (88, 12), (50, 50), (2, 98), (97, 97), (40, 70)] {
            let q = Point::new(qi as f64, qj as f64);
            let owner = d.locate(&q).expect("point must be in some cell");
            let owner_dist = sites[owner].distance(&q);
            let min_dist = sites
                .iter()
                .map(|s| s.distance(&q))
                .fold(f64::INFINITY, f64::min);
            assert!(
                owner_dist <= min_dist + 1e-6,
                "cell owner is not the nearest site for {q:?}"
            );
        }
    }

    #[test]
    fn duplicate_sites_tolerated() {
        let sites = vec![
            Point::new(50.0, 50.0),
            Point::new(50.0, 50.0),
            Point::new(10.0, 10.0),
        ];
        let d = voronoi_diagram(&sites, &bbox());
        // One of the duplicates owns the area, the other gets nothing.
        let a0 = d.cells[0].area();
        let a1 = d.cells[1].area();
        assert!(a0 < 1e-9 || a1 < 1e-9);
        assert!((d.total_area() - 10_000.0).abs() < 1e-3);
    }
}
