//! Exact top-k Voronoi cells.
//!
//! The paper (§2.2) generalises the Voronoi cell to the *top-k Voronoi cell*
//! `V_k(t)`: the set of query locations that return tuple `t` among their k
//! nearest neighbours. For `k = 1` this is the classical convex Voronoi cell;
//! for `k > 1` it can be concave and has many more edges.
//!
//! For a site `t` and a finite set of other sites `D'`, membership of a query
//! point `q` in the top-k cell of `t` **relative to `D'`** is purely a
//! counting condition: `q ∈ V_k(t, D')` iff fewer than `k` sites of `D'` are
//! strictly closer to `q` than `t` is. Each other site `o` contributes the
//! half-plane "closer to `o` than to `t`", bounded by the perpendicular
//! bisector of `(t, o)`; the cell is the region of the bounding box where at
//! most `k − 1` of those half-planes apply — a *level set* of the bisector
//! arrangement.
//!
//! This module computes, exactly:
//!
//! * the **area** of the cell, via a vertical slab decomposition of the
//!   bisector arrangement into constant-depth trapezoids, and
//! * the **vertex set** of the cell boundary (needed by Theorem 1's
//!   termination test: the estimator issues a kNN query at every vertex),
//!   via depth-filtered pairwise bisector intersections.
//!
//! The `k = 1` case takes a fast path through convex half-plane clipping and
//! the two paths are cross-validated in the tests.

use serde::{Deserialize, Serialize};

use crate::convex::ConvexPolygon;
use crate::halfplane::HalfPlane;
use crate::line::Line;
use crate::point::Point;
use crate::rect::Rect;
use crate::EPS;

/// An exactly computed top-k Voronoi cell of a site with respect to a finite
/// set of other sites, clipped to a bounding box.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopKCell {
    /// The site whose cell this is.
    pub site: Point,
    /// The `k` of the top-k semantics (`1` = classical Voronoi cell).
    pub k: usize,
    /// Exact area of the cell.
    pub area: f64,
    /// Vertices of the cell boundary.
    ///
    /// For `k = 1` these are the convex polygon's vertices in counter-
    /// clockwise order; for `k > 1` the set is unordered (the cell may be
    /// concave or even disconnected relative to `D'`). Theorem 1 only needs
    /// the set, not the order.
    pub vertices: Vec<Point>,
    /// The bounding box the cell was clipped to.
    pub bbox: Rect,
    /// For `k = 1`, the convex polygon realising the cell.
    pub convex: Option<ConvexPolygon>,
}

impl TopKCell {
    /// `true` when the query point belongs to the cell (fewer than `k` of the
    /// given other sites are strictly closer to it than the cell's site).
    ///
    /// Note this re-evaluates membership from `others`; it does not use the
    /// stored polygon, so it is valid for concave `k > 1` cells too.
    pub fn contains(&self, q: &Point, others: &[Point]) -> bool {
        if !self.bbox.contains(q) {
            return false;
        }
        depth(&self.site, others, q) < self.k
    }
}

/// Number of sites in `others` strictly closer to `q` than `site` is.
///
/// This is the "depth" of `q` in the bisector arrangement: `q` lies in the
/// top-k cell of `site` iff `depth < k`. Ties (equidistant sites) are not
/// counted, matching the closed-cell convention of the paper.
pub fn depth(site: &Point, others: &[Point], q: &Point) -> usize {
    let d_site = site.distance_sq(q);
    others
        .iter()
        .filter(|o| o.distance_sq(q) < d_site - EPS)
        .count()
}

/// Computes the exact top-k Voronoi cell of `site` with respect to `others`,
/// clipped to `bbox`.
///
/// `k` must be at least 1. Sites of `others` that coincide with `site` are
/// ignored (the paper's general-positioning assumption excludes them, but the
/// simulators may feed duplicates during fast initialization).
pub fn top_k_cell(site: &Point, others: &[Point], k: usize, bbox: &Rect) -> TopKCell {
    assert!(k >= 1, "top_k_cell requires k >= 1");
    let others: Vec<Point> = others
        .iter()
        .copied()
        .filter(|o| !o.approx_eq(site))
        // lbs-lint: allow(hot-path-alloc, reason = "legacy reference oracle; the pruned engine is the production sampling path")
        .collect();

    // With fewer than k other sites nothing can ever push `site` out of the
    // top-k: the cell is the whole bounding box.
    if others.len() < k {
        let convex = ConvexPolygon::from_rect(bbox);
        return TopKCell {
            site: *site,
            k,
            area: bbox.area(),
            // lbs-lint: allow(hot-path-alloc, reason = "the returned cell owns its vertices; legacy oracle path, whole-box cells are rare")
            vertices: convex.vertices().to_vec(),
            bbox: *bbox,
            convex: Some(convex),
        };
    }

    if k == 1 {
        return top_1_cell(site, &others, bbox);
    }

    let bisectors: Vec<Line> = others
        .iter()
        .filter_map(|o| Line::bisector(site, o))
        // lbs-lint: allow(hot-path-alloc, reason = "legacy reference oracle; bisectors are computed once per call, not per clip")
        .collect();

    let area = level_set_area(site, &others, &bisectors, k, bbox);
    // lbs-lint: allow(hot-path-alloc, reason = "the returned cell owns its vertices; legacy oracle path")
    let mut vertices = Vec::new();
    cell_vertices_into(site, &others, &bisectors, k, bbox, &mut vertices);

    TopKCell {
        site: *site,
        k,
        area,
        vertices,
        bbox: *bbox,
        convex: None,
    }
}

/// Fast path for the classical (`k = 1`) Voronoi cell: intersect the bounding
/// box with the "closer to site" half-plane of every other site.
fn top_1_cell(site: &Point, others: &[Point], bbox: &Rect) -> TopKCell {
    let mut cell = ConvexPolygon::from_rect(bbox);
    for o in others {
        if let Some(hp) = HalfPlane::closer_to(site, o) {
            cell = cell.clip(&hp);
            if cell.is_empty() {
                break;
            }
        }
    }
    TopKCell {
        site: *site,
        k: 1,
        area: cell.area(),
        // lbs-lint: allow(hot-path-alloc, reason = "the returned cell owns its vertices; legacy oracle path")
        vertices: cell.vertices().to_vec(),
        bbox: *bbox,
        convex: Some(cell),
    }
}

/// Exact area of the region of `bbox` with depth `< k` (at most `k − 1` other
/// sites closer than `site`), via vertical slab decomposition.
///
/// Breakpoints are placed at every pairwise bisector intersection, every
/// crossing of a bisector with the box's horizontal edges and every
/// (near-)vertical bisector, so that inside one slab no two boundary curves
/// cross and every region between consecutive curves is a constant-depth
/// trapezoid whose area can be written down exactly.
fn level_set_area(
    site: &Point,
    others: &[Point],
    bisectors: &[Line],
    k: usize,
    bbox: &Rect,
) -> f64 {
    // lbs-lint: allow(hot-path-alloc, reason = "slab breakpoints are gathered once per legacy-oracle area call, not per slab")
    let mut xs: Vec<f64> = vec![bbox.min_x, bbox.max_x];

    let vertical_threshold = 1e-9;
    for (i, li) in bisectors.iter().enumerate() {
        // Vertical lines become slab boundaries themselves.
        if li.b.abs() <= vertical_threshold {
            if li.a.abs() > EPS {
                xs.push(li.c / li.a);
            }
            continue;
        }
        // Crossings with the horizontal box edges.
        for y_edge in [bbox.min_y, bbox.max_y] {
            // a*x + b*y = c  =>  x = (c - b*y) / a  when a != 0; a == 0 means
            // the line is horizontal and never crosses a horizontal edge
            // transversally.
            if li.a.abs() > EPS {
                xs.push((li.c - li.b * y_edge) / li.a);
            }
        }
        // Pairwise intersections.
        for lj in bisectors.iter().skip(i + 1) {
            if let Some(p) = li.intersection(lj) {
                xs.push(p.x);
            }
        }
    }

    xs.retain(|x| x.is_finite());
    xs.iter_mut()
        .for_each(|x| *x = x.clamp(bbox.min_x, bbox.max_x));
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

    let mut total_area = 0.0;

    // One boundary buffer for every slab: the per-slab contents are cleared
    // and rebuilt, but the backing storage is allocated once (this vec used
    // to be rebuilt inside the slab loop).
    // lbs-lint: allow(hot-path-alloc, reason = "one boundary buffer per legacy-oracle area call, reused across every slab")
    let mut boundaries: Vec<SlabBoundary> = Vec::new();

    for w in xs.windows(2) {
        let (x1, x2) = (w[0], w[1]);
        let slab_width = x2 - x1;
        if slab_width <= 1e-12 {
            continue;
        }
        let xm = 0.5 * (x1 + x2);

        // Band boundaries inside this slab: the box's horizontal edges plus
        // every non-vertical bisector whose y at the slab midpoint falls
        // strictly inside the box. Each boundary is either a constant or a
        // line, so its y at x1 and x2 is exact.
        boundaries.clear();
        boundaries.push(SlabBoundary {
            y_mid: bbox.min_y,
            y_left: bbox.min_y,
            y_right: bbox.min_y,
        });
        boundaries.push(SlabBoundary {
            y_mid: bbox.max_y,
            y_left: bbox.max_y,
            y_right: bbox.max_y,
        });
        for li in bisectors {
            if li.b.abs() <= vertical_threshold {
                continue;
            }
            let y_at = |x: f64| (li.c - li.a * x) / li.b;
            let ym = y_at(xm);
            if ym > bbox.min_y && ym < bbox.max_y {
                boundaries.push(SlabBoundary {
                    y_mid: ym,
                    y_left: y_at(x1).clamp(bbox.min_y, bbox.max_y),
                    y_right: y_at(x2).clamp(bbox.min_y, bbox.max_y),
                });
            }
        }
        boundaries.sort_by(|a, b| a.y_mid.total_cmp(&b.y_mid));

        for pair in boundaries.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let height_mid = hi.y_mid - lo.y_mid;
            if height_mid <= 1e-12 {
                continue;
            }
            let sample = Point::new(xm, 0.5 * (lo.y_mid + hi.y_mid));
            if depth(site, others, &sample) < k {
                // Exact trapezoid area: average of left and right heights
                // times the slab width. Because no boundary crosses another
                // within the slab, the heights stay non-negative.
                let h_left = (hi.y_left - lo.y_left).max(0.0);
                let h_right = (hi.y_right - lo.y_right).max(0.0);
                total_area += 0.5 * (h_left + h_right) * slab_width;
            }
        }
    }

    total_area
}

/// A constant-depth band boundary inside one vertical slab: a horizontal box
/// edge or one non-vertical bisector, with its exact `y` at the slab's
/// midpoint and both edges. Shared by [`level_set_area`] and
/// [`slab_level_area`].
#[derive(Clone, Copy)]
struct SlabBoundary {
    y_mid: f64,
    y_left: f64,
    y_right: f64,
}

/// Enumerates the vertices of the top-k cell boundary.
///
/// A candidate vertex is either
///
/// * the intersection of two bisectors `b(site, a)` and `b(site, b)` — a point
///   equidistant from `site`, `a` and `b`. Writing `d` for the number of
///   *other* sites strictly closer than `site`, the four quadrants around the
///   point have depths `d`, `d+1`, `d+1`, `d+2`; the point is a boundary
///   vertex of the level-`< k` region iff `d ∈ {k−2, k−1}` (one excluded or
///   three excluded quadrants — an outward or an inward vertex respectively),
/// * the crossing of one bisector with a box edge, which is a vertex iff the
///   depth just off the bisector is exactly `k − 1`, or
/// * a box corner that lies inside the cell.
pub(crate) fn cell_vertices_into(
    site: &Point,
    others: &[Point],
    bisectors: &[Line],
    k: usize,
    bbox: &Rect,
    verts: &mut Vec<Point>,
) {
    verts.clear();

    let strict_depth_excluding = |q: &Point, skip: &[usize]| -> usize {
        let d_site = site.distance_sq(q);
        others
            .iter()
            .enumerate()
            .filter(|(idx, o)| !skip.contains(idx) && o.distance_sq(q) < d_site - 1e-9)
            .count()
    };

    // Bisector-bisector intersections.
    for i in 0..bisectors.len() {
        for j in (i + 1)..bisectors.len() {
            let Some(p) = bisectors[i].intersection(&bisectors[j]) else {
                continue;
            };
            if !bbox.contains(&p) {
                continue;
            }
            let d = strict_depth_excluding(&p, &[i, j]);
            let is_vertex = if k >= 2 {
                d == k - 1 || d == k - 2
            } else {
                d == 0
            };
            if is_vertex {
                push_unique(verts, p);
            }
        }
    }

    // Bisector-box-edge crossings.
    for (i, li) in bisectors.iter().enumerate() {
        let Some(seg) = li.clip_to_rect(bbox) else {
            continue;
        };
        for p in [seg.start, seg.end] {
            // Only genuine boundary points of the box qualify (the clip
            // endpoints are on the box boundary by construction, but guard
            // against degenerate chords).
            if bbox.contains_strict(&p) {
                continue;
            }
            let d = strict_depth_excluding(&p, &[i]);
            if d == k - 1 {
                push_unique(verts, p);
            }
        }
    }

    // Box corners inside the cell.
    for corner in bbox.corners() {
        if depth(site, others, &corner) < k {
            push_unique(verts, corner);
        }
    }
}

fn push_unique(verts: &mut Vec<Point>, p: Point) {
    if !verts.iter().any(|v| v.approx_eq_eps(&p, 1e-7)) {
        verts.push(p);
    }
}

/// A level region of a half-plane arrangement: the set of points of the
/// bounding box violating fewer than `k` of the half-planes.
///
/// This is the generalisation of [`TopKCell`] needed by LNR-LBS-AGG: there
/// the estimator never learns tuple locations, only *estimated bisector
/// lines* (each oriented so that its "inside" is the side closer to the
/// explored tuple). The top-h cell of the tuple is then exactly the region
/// where fewer than `h` of those half-planes are violated.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelRegion {
    /// Exact area of the region.
    pub area: f64,
    /// Vertices of the region boundary (unordered).
    pub vertices: Vec<Point>,
    /// The bounding box the region was clipped to.
    pub bbox: Rect,
    /// The level parameter: points violating fewer than `k` half-planes
    /// belong to the region.
    pub k: usize,
}

impl LevelRegion {
    /// `true` when the point violates fewer than `k` of the given half-planes
    /// (and lies inside the bounding box).
    pub fn contains(&self, q: &Point, halfplanes: &[crate::HalfPlane]) -> bool {
        self.bbox.contains(q) && violation_depth(halfplanes, q) < self.k
    }
}

/// Number of half-planes strictly violated by (i.e. not containing) `q`.
pub fn violation_depth(halfplanes: &[crate::HalfPlane], q: &Point) -> usize {
    halfplanes
        .iter()
        .filter(|hp| hp.signed_distance(q) > EPS)
        .count()
}

/// Computes the level region of a set of oriented half-planes: the subset of
/// `bbox` whose points violate fewer than `k` of them, with exact area and
/// boundary vertices.
///
/// For `k = 1` this is the ordinary intersection of the half-planes with the
/// box (a convex polygon); for larger `k` the region can be concave, exactly
/// like top-k Voronoi cells.
pub fn level_region(halfplanes: &[crate::HalfPlane], k: usize, bbox: &Rect) -> LevelRegion {
    assert!(k >= 1, "level_region requires k >= 1");

    if halfplanes.len() < k {
        return LevelRegion {
            area: bbox.area(),
            // lbs-lint: allow(hot-path-alloc, reason = "the returned region owns its vertices; legacy oracle path, whole-box regions are rare")
            vertices: ConvexPolygon::from_rect(bbox).vertices().to_vec(),
            bbox: *bbox,
            k,
        };
    }

    if k == 1 {
        let cell = ConvexPolygon::from_rect(bbox).clip_all(halfplanes.iter());
        return LevelRegion {
            area: cell.area(),
            // lbs-lint: allow(hot-path-alloc, reason = "the returned region owns its vertices; legacy oracle path")
            vertices: cell.vertices().to_vec(),
            bbox: *bbox,
            k,
        };
    }

    // lbs-lint: allow(hot-path-alloc, reason = "legacy reference oracle; boundary lines are computed once per call")
    let lines: Vec<Line> = halfplanes.iter().map(|hp| hp.boundary).collect();
    let depth = |q: &Point| violation_depth(halfplanes, q);
    let area = slab_level_area(&lines, &depth, k, bbox);
    // lbs-lint: allow(hot-path-alloc, reason = "the returned region owns its vertices; legacy oracle path")
    let mut vertices = Vec::new();
    level_region_vertices_into(halfplanes, &lines, k, bbox, &mut vertices);

    LevelRegion {
        area,
        vertices,
        bbox: *bbox,
        k,
    }
}

/// Enumerates the vertices of a level region of oriented half-planes.
///
/// Mirrors [`cell_vertices_into`]: pairwise boundary-line intersections filtered
/// by the violation depth excluding the two lines meeting there, plus
/// box-edge crossings and box corners. Shared by [`level_region`] and the
/// pruned constructions in [`crate::cell_engine`].
pub(crate) fn level_region_vertices_into(
    halfplanes: &[crate::HalfPlane],
    lines: &[Line],
    k: usize,
    bbox: &Rect,
    vertices: &mut Vec<Point>,
) {
    vertices.clear();
    let depth_excluding = |q: &Point, skip: &[usize]| -> usize {
        halfplanes
            .iter()
            .enumerate()
            .filter(|(idx, hp)| !skip.contains(idx) && hp.signed_distance(q) > 1e-9)
            .count()
    };
    for i in 0..lines.len() {
        for j in (i + 1)..lines.len() {
            let Some(p) = lines[i].intersection(&lines[j]) else {
                continue;
            };
            if !bbox.contains(&p) {
                continue;
            }
            let d = depth_excluding(&p, &[i, j]);
            if d == k - 1 || (k >= 2 && d == k - 2) {
                push_unique(vertices, p);
            }
        }
    }
    for (i, li) in lines.iter().enumerate() {
        let Some(seg) = li.clip_to_rect(bbox) else {
            continue;
        };
        for p in [seg.start, seg.end] {
            if bbox.contains_strict(&p) {
                continue;
            }
            if depth_excluding(&p, &[i]) == k - 1 {
                push_unique(vertices, p);
            }
        }
    }
    for corner in bbox.corners() {
        if violation_depth(halfplanes, &corner) < k {
            push_unique(vertices, corner);
        }
    }
}

/// Exact area of `{ q in bbox : depth(q) < k }` by vertical slab
/// decomposition over the given boundary lines (shared by the site-based and
/// half-plane-based level computations).
fn slab_level_area(lines: &[Line], depth: &dyn Fn(&Point) -> usize, k: usize, bbox: &Rect) -> f64 {
    // lbs-lint: allow(hot-path-alloc, reason = "slab breakpoints are gathered once per legacy-oracle area call, not per slab")
    let mut xs: Vec<f64> = vec![bbox.min_x, bbox.max_x];
    let vertical_threshold = 1e-9;
    for (i, li) in lines.iter().enumerate() {
        if li.b.abs() <= vertical_threshold {
            if li.a.abs() > EPS {
                xs.push(li.c / li.a);
            }
            continue;
        }
        for y_edge in [bbox.min_y, bbox.max_y] {
            if li.a.abs() > EPS {
                xs.push((li.c - li.b * y_edge) / li.a);
            }
        }
        for lj in lines.iter().skip(i + 1) {
            if let Some(p) = li.intersection(lj) {
                xs.push(p.x);
            }
        }
    }
    xs.retain(|x| x.is_finite());
    xs.iter_mut()
        .for_each(|x| *x = x.clamp(bbox.min_x, bbox.max_x));
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

    let mut total_area = 0.0;
    // Reused across slabs, exactly like `level_set_area`.
    // lbs-lint: allow(hot-path-alloc, reason = "one boundary buffer per legacy-oracle area call, reused across every slab")
    let mut boundaries: Vec<SlabBoundary> = Vec::new();
    for w in xs.windows(2) {
        let (x1, x2) = (w[0], w[1]);
        let slab_width = x2 - x1;
        if slab_width <= 1e-12 {
            continue;
        }
        let xm = 0.5 * (x1 + x2);
        boundaries.clear();
        boundaries.push(SlabBoundary {
            y_mid: bbox.min_y,
            y_left: bbox.min_y,
            y_right: bbox.min_y,
        });
        boundaries.push(SlabBoundary {
            y_mid: bbox.max_y,
            y_left: bbox.max_y,
            y_right: bbox.max_y,
        });
        for li in lines {
            if li.b.abs() <= vertical_threshold {
                continue;
            }
            let y_at = |x: f64| (li.c - li.a * x) / li.b;
            let ym = y_at(xm);
            if ym > bbox.min_y && ym < bbox.max_y {
                boundaries.push(SlabBoundary {
                    y_mid: ym,
                    y_left: y_at(x1).clamp(bbox.min_y, bbox.max_y),
                    y_right: y_at(x2).clamp(bbox.min_y, bbox.max_y),
                });
            }
        }
        boundaries.sort_by(|a, b| a.y_mid.total_cmp(&b.y_mid));
        for pair in boundaries.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let height_mid = hi.y_mid - lo.y_mid;
            if height_mid <= 1e-12 {
                continue;
            }
            let sample = Point::new(xm, 0.5 * (lo.y_mid + hi.y_mid));
            if depth(&sample) < k {
                let h_left = (hi.y_left - lo.y_left).max(0.0);
                let h_right = (hi.y_right - lo.y_right).max(0.0);
                total_area += 0.5 * (h_left + h_right) * slab_width;
            }
        }
    }
    total_area
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    /// Monte-Carlo area estimate used as an independent oracle in tests.
    fn mc_area(site: &Point, others: &[Point], k: usize, bbox: &Rect, n: usize) -> f64 {
        // Deterministic low-discrepancy-ish grid to avoid rand dev-dependency
        // in unit tests: sample a jittered grid.
        let side = (n as f64).sqrt() as usize;
        let mut inside = 0usize;
        let mut total = 0usize;
        for i in 0..side {
            for j in 0..side {
                let fx = (i as f64 + 0.5) / side as f64;
                let fy = (j as f64 + 0.5) / side as f64;
                let q = bbox.at_fraction(fx, fy);
                total += 1;
                if depth(site, others, &q) < k {
                    inside += 1;
                }
            }
        }
        bbox.area() * inside as f64 / total as f64
    }

    #[test]
    fn no_others_gives_whole_box() {
        let cell = top_k_cell(&Point::new(50.0, 50.0), &[], 1, &bbox());
        assert!((cell.area - 10_000.0).abs() < 1e-9);
        assert_eq!(cell.vertices.len(), 4);
    }

    #[test]
    fn fewer_others_than_k_gives_whole_box() {
        let others = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let cell = top_k_cell(&Point::new(50.0, 50.0), &others, 3, &bbox());
        assert!((cell.area - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn top1_halfspace_split() {
        // Two sites split the box in half.
        let site = Point::new(25.0, 50.0);
        let others = vec![Point::new(75.0, 50.0)];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        assert!((cell.area - 5_000.0).abs() < 1e-6);
        assert!(cell.contains(&Point::new(10.0, 10.0), &others));
        assert!(!cell.contains(&Point::new(90.0, 90.0), &others));
    }

    #[test]
    fn top2_with_single_other_is_whole_box() {
        let site = Point::new(25.0, 50.0);
        let others = vec![Point::new(75.0, 50.0)];
        let cell = top_k_cell(&site, &others, 2, &bbox());
        assert!((cell.area - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn cross_configuration_top1() {
        // Site at the centre surrounded by four sites at distance 40: its
        // top-1 cell is the square of half-diagonal 20 around the centre,
        // i.e. the square with corners at (30,50),(50,30),(70,50),(50,70)?
        // No: bisectors are at x=30, x=70, y=30, y=70 → cell is the axis
        // aligned square [30,70]^2 with area 1600.
        let site = Point::new(50.0, 50.0);
        let others = vec![
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 90.0),
        ];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        assert!((cell.area - 1600.0).abs() < 1e-6);
        assert_eq!(cell.vertices.len(), 4);
    }

    #[test]
    fn cross_configuration_top2_is_concave() {
        // Same configuration, k = 2: the cell of the centre site is the
        // region where at most one of the four outer sites is closer, i.e.
        // the union of the central square with four slabs. Validate the slab
        // area against Monte Carlo and check a concave-notch point.
        let site = Point::new(50.0, 50.0);
        let others = vec![
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 90.0),
        ];
        let cell = top_k_cell(&site, &others, 2, &bbox());
        let mc = mc_area(&site, &others, 2, &bbox(), 90_000);
        assert!(
            (cell.area - mc).abs() / mc < 0.02,
            "slab area {} vs MC {}",
            cell.area,
            mc
        );
        // A point inside the vertical slab but outside the central square is
        // in the top-2 cell (only one site is closer) ...
        assert!(cell.contains(&Point::new(50.0, 80.0), &others));
        // ... but a diagonal corner point far from the centre is not.
        assert!(!cell.contains(&Point::new(95.0, 95.0), &others));
    }

    #[test]
    fn top1_matches_convex_clip_for_random_like_config() {
        // A fixed, irregular configuration; compare the two computation paths
        // (convex clip fast path vs. slab decomposition run explicitly).
        let site = Point::new(42.0, 57.0);
        let others = vec![
            Point::new(10.0, 20.0),
            Point::new(80.0, 15.0),
            Point::new(65.0, 70.0),
            Point::new(30.0, 85.0),
            Point::new(55.0, 40.0),
            Point::new(20.0, 60.0),
        ];
        let fast = top_k_cell(&site, &others, 1, &bbox());
        let bisectors: Vec<Line> = others
            .iter()
            .filter_map(|o| Line::bisector(&site, o))
            .collect();
        let slab = level_set_area(&site, &others, &bisectors, 1, &bbox());
        assert!(
            (fast.area - slab).abs() < 1e-6,
            "convex {} vs slab {}",
            fast.area,
            slab
        );
    }

    #[test]
    fn areas_of_topk_cells_sum_to_k_times_box() {
        // Every location belongs to exactly k top-k cells (paper §2.2,
        // observation 1), so the cell areas over all sites must sum to
        // k * |bbox| when every site's cell is computed against all others.
        let sites = [
            Point::new(20.0, 30.0),
            Point::new(70.0, 20.0),
            Point::new(50.0, 80.0),
            Point::new(85.0, 65.0),
            Point::new(35.0, 55.0),
        ];
        for k in 1..=3usize {
            let mut total = 0.0;
            for (i, s) in sites.iter().enumerate() {
                let others: Vec<Point> = sites
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, p)| *p)
                    .collect();
                total += top_k_cell(s, &others, k, &bbox()).area;
            }
            let expected = k as f64 * bbox().area();
            assert!(
                (total - expected).abs() / expected < 1e-6,
                "k={k}: total {} vs expected {}",
                total,
                expected
            );
        }
    }

    #[test]
    fn vertices_lie_on_cell_boundary() {
        let site = Point::new(50.0, 50.0);
        let others = vec![
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 90.0),
            Point::new(20.0, 20.0),
        ];
        for k in 1..=3usize {
            let cell = top_k_cell(&site, &others, k, &bbox());
            for v in &cell.vertices {
                // A vertex must be within the box and "on the boundary":
                // depth < k at the vertex itself (closed cell) but >= k at
                // some nearby point, or on the box boundary.
                assert!(cell.bbox.contains(v));
                let d = depth(&site, &others, v);
                assert!(d < k, "vertex {v:?} has depth {d} >= k={k}");
            }
            assert!(!cell.vertices.is_empty());
        }
    }

    #[test]
    fn duplicate_of_site_is_ignored() {
        let site = Point::new(50.0, 50.0);
        let others = vec![site, Point::new(90.0, 50.0)];
        let cell = top_k_cell(&site, &others, 1, &bbox());
        assert!((cell.area - 7_000.0).abs() < 1e-6);
    }

    #[test]
    fn depth_counts_strictly_closer() {
        let site = Point::new(0.0, 0.0);
        let others = vec![Point::new(10.0, 0.0), Point::new(0.0, 10.0)];
        // Query equidistant from site and the first other: the tie does not
        // count.
        assert_eq!(depth(&site, &others, &Point::new(5.0, 0.0)), 0);
        assert_eq!(depth(&site, &others, &Point::new(9.0, 0.0)), 1);
        assert_eq!(depth(&site, &others, &Point::new(9.0, 9.0)), 2);
    }

    #[test]
    #[should_panic]
    fn k_zero_rejected() {
        let _ = top_k_cell(&Point::ORIGIN, &[], 0, &bbox());
    }

    #[test]
    fn level_region_k1_is_halfplane_intersection() {
        use crate::HalfPlane;
        let site = Point::new(50.0, 50.0);
        let others = vec![
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 90.0),
        ];
        let planes: Vec<HalfPlane> = others
            .iter()
            .map(|o| HalfPlane::closer_to(&site, o).unwrap())
            .collect();
        let region = level_region(&planes, 1, &bbox());
        let cell = top_k_cell(&site, &others, 1, &bbox());
        assert!((region.area - cell.area).abs() < 1e-6);
        assert!(region.contains(&Point::new(50.0, 50.0), &planes));
        assert!(!region.contains(&Point::new(90.0, 90.0), &planes));
    }

    #[test]
    fn level_region_matches_topk_cell_for_k2() {
        use crate::HalfPlane;
        let site = Point::new(50.0, 50.0);
        let others = vec![
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Point::new(50.0, 10.0),
            Point::new(50.0, 90.0),
            Point::new(20.0, 20.0),
        ];
        let planes: Vec<HalfPlane> = others
            .iter()
            .map(|o| HalfPlane::closer_to(&site, o).unwrap())
            .collect();
        for k in 2..=3usize {
            let region = level_region(&planes, k, &bbox());
            let cell = top_k_cell(&site, &others, k, &bbox());
            assert!(
                (region.area - cell.area).abs() < 1e-6,
                "k={k}: {} vs {}",
                region.area,
                cell.area
            );
        }
    }

    #[test]
    fn level_region_fewer_planes_than_k_is_whole_box() {
        use crate::HalfPlane;
        let planes =
            vec![HalfPlane::closer_to(&Point::new(10.0, 10.0), &Point::new(90.0, 90.0)).unwrap()];
        let region = level_region(&planes, 2, &bbox());
        assert!((region.area - bbox().area()).abs() < 1e-9);
    }

    #[test]
    fn violation_depth_counts() {
        use crate::HalfPlane;
        let site = Point::new(50.0, 50.0);
        let planes: Vec<HalfPlane> = [Point::new(10.0, 50.0), Point::new(90.0, 50.0)]
            .iter()
            .map(|o| HalfPlane::closer_to(&site, o).unwrap())
            .collect();
        assert_eq!(violation_depth(&planes, &Point::new(50.0, 50.0)), 0);
        assert_eq!(violation_depth(&planes, &Point::new(15.0, 50.0)), 1);
        assert_eq!(violation_depth(&planes, &Point::new(95.0, 50.0)), 1);
    }

    #[test]
    fn concave_cell_area_with_many_sites_matches_mc() {
        // A ring of 8 sites around the centre site; k = 3.
        let site = Point::new(50.0, 50.0);
        let mut others = Vec::new();
        for i in 0..8 {
            let ang = i as f64 * std::f64::consts::PI / 4.0;
            others.push(Point::new(50.0 + 30.0 * ang.cos(), 50.0 + 30.0 * ang.sin()));
        }
        let cell = top_k_cell(&site, &others, 3, &bbox());
        let mc = mc_area(&site, &others, 3, &bbox(), 160_000);
        assert!(
            (cell.area - mc).abs() / mc < 0.02,
            "area {} vs MC {}",
            cell.area,
            mc
        );
    }
}
