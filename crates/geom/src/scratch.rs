//! Reusable scratch buffers for the cell-construction hot path.
//!
//! Every estimator sample funnels through the pruned cell engine
//! ([`crate::cell_engine`]), and a single cell build touches dozens of
//! short-lived vectors: the filtered candidate list, the ping-pong vertex
//! buffers of the half-plane clip, the per-vertex signed distances, the
//! bisector list, the vertex accumulator and the breakpoint buffers of the
//! boundary-structure area. Allocating those afresh per cell (let alone per
//! clip or per boundary segment) dominated the allocator profile; the
//! [`ClipScratch`] arena owns all of them so that, once warm, the hot loop
//! performs **zero heap allocation** beyond the result cell itself.
//!
//! ## Ownership and determinism
//!
//! A `ClipScratch` is plain reusable memory: it carries **no state between
//! builds**. Every construction starts by clearing the buffers it uses, so
//! the bits produced with a warm arena are identical to the bits produced
//! with a fresh one — the property suite asserts this across random
//! configurations, and the `repro --gate` bench gate enforces it end to end.
//!
//! The arena is owned per-`History` in `lbs-core` (hence per session and
//! per stratum). `Clone` deliberately returns an **empty** arena: cloning a
//! `History` (session fork, checkpoint restore) must not drag warmed
//! capacity across thread boundaries, and the buffers' contents are
//! meaningless outside the construction that filled them.

use crate::halfplane::HalfPlane;
use crate::line::Line;
use crate::point::Point;

/// Reusable buffers threaded through the pruned cell constructions.
///
/// See the [module docs](self) for ownership rules. Obtain one with
/// [`ClipScratch::new`] (or `Default`) and pass it to
/// [`crate::cell_engine::top_k_cell_pruned_with`] /
/// [`crate::cell_engine::level_region_pruned_with`]; the buffers grow to the
/// high-water mark of the workload and are reused thereafter.
#[derive(Debug, Default)]
pub struct ClipScratch {
    /// Candidate points after dropping duplicates of the site.
    pub(crate) others: Vec<Point>,
    /// Ping-pong vertex buffer A of the half-plane clip.
    pub(crate) poly_a: Vec<Point>,
    /// Ping-pong vertex buffer B of the half-plane clip.
    pub(crate) poly_b: Vec<Point>,
    /// Per-vertex signed distances of the current clip plane.
    pub(crate) dists: Vec<f64>,
    /// Bisector / boundary lines of the active candidate prefix.
    pub(crate) lines: Vec<Line>,
    /// Sorted half-planes of the level-region construction.
    pub(crate) planes: Vec<HalfPlane>,
    /// Cell / region vertex accumulator.
    pub(crate) verts: Vec<Point>,
    /// Breakpoint parameters along one boundary chord or box edge.
    pub(crate) ts: Vec<f64>,
    /// Coincidence-deduplicated boundary lines.
    pub(crate) distinct: Vec<Line>,
}

impl ClipScratch {
    /// A fresh, empty arena. No allocation happens until the first build.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clone for ClipScratch {
    /// Cloning yields an **empty** arena, not a copy of the buffers.
    ///
    /// The buffers are transient workspace whose contents are meaningless
    /// between builds; a `History::fork` (which clones its scratch field)
    /// must hand each thread its own arena rather than duplicate warmed
    /// garbage.
    fn clone(&self) -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_empty_regardless_of_warmth() {
        let mut s = ClipScratch::new();
        s.others.push(Point::new(1.0, 2.0));
        s.ts.push(0.5);
        let c = s.clone();
        assert!(c.others.is_empty());
        assert!(c.ts.is_empty());
        assert_eq!(c.ts.capacity(), 0, "clone must not copy capacity either");
    }
}
