//! Pruned incremental construction of top-k Voronoi cells and level regions.
//!
//! The exact constructions in [`crate::topk_cell`] clip the site against
//! *every* known tuple — O(n) half-plane work per cell even though only the
//! tuples nearest to the site can contribute an edge. This module exploits
//! that locality with a **security-radius certificate**:
//!
//! > Let `C` be the cell computed from a candidate subset `S` and let
//! > `r_max` be the maximum distance from the site to any point of `C`
//! > (attained at a vertex of `C`, since the distance is convex over every
//! > polygonal piece). Any candidate `o` with `dist(site, o) > 2·r_max`
//! > satisfies, for every `q ∈ C`,
//! > `dist(q, o) ≥ dist(site, o) − r_max > r_max ≥ dist(q, site)`,
//! > so `o` is never strictly closer than the site anywhere in `C` and its
//! > bisector cannot touch the cell. Outside `C` the depth is already `≥ k`
//! > under `S` alone and adding candidates only raises it. Hence the cell of
//! > `S` **equals** the cell of the full candidate set — exactly, as a set.
//!
//! Callers supply candidates in **ascending distance order** from the site;
//! the construction incorporates the nearest candidates first and stops as
//! soon as the certificate covers every remaining one. Because candidates
//! are ordered, a single comparison certifies the whole tail.
//!
//! The pruned construction is **byte-identical** to the unpruned one run on
//! the same ordered candidate list (`prune = false`):
//!
//! * for `k = 1` a certified candidate's half-plane strictly contains every
//!   polygon vertex, so clipping by it is the identity on the vertex list —
//!   skipping the clip changes nothing, bit for bit;
//! * for `k > 1` the vertex enumeration and the boundary-structure area
//!   below never receive a floating-point contribution from a certified
//!   candidate: a candidate vertex involving a far bisector would lie in the
//!   closure of the cell yet at distance `> r_max` from the site — a
//!   contradiction — so its depth filter always rejects it, and a far
//!   bisector carries no boundary sub-segment for the same reason.
//!
//! The area of concave `k > 1` cells is computed from the **boundary
//! structure** (Green's theorem over the oriented boundary sub-segments
//! between cell vertices) instead of the slab decomposition of
//! [`crate::topk_cell::top_k_cell`]: the slab sum partitions trapezoids at
//! every bisector crossing, so a non-contributing far bisector would still
//! change the floating-point summation order. The boundary sum only touches
//! segments that actually border the region, which is what makes
//! pruned-versus-full bit-equality possible. Both area computations agree to
//! floating-point accuracy and are cross-validated in the tests.

use crate::convex::{ccw_area, clip_into, ConvexPolygon};
use crate::halfplane::HalfPlane;
use crate::line::Line;
use crate::point::Point;
use crate::rect::Rect;
use crate::scratch::ClipScratch;
use crate::topk_cell::{
    cell_vertices_into, depth, level_region_vertices_into, LevelRegion, TopKCell,
};
use crate::EPS;

/// Absolute slack added to the security-radius comparison.
///
/// The certificate proofs use strict inequalities whose margin must dominate
/// the epsilon tolerances of the depth predicates (`1e-9` on distances) and
/// the side-probe offset of `boundary_level_area` (`~1e-9` of the box
/// diagonal); `1e-4` in coordinate units (ten centimetres, for the
/// kilometre-scaled simulators) is far above that noise floor and far below
/// any distance that matters to the estimators.
///
/// Public because the cell cache in `lbs-core` reuses the same certificate to
/// prove that a candidate list *extended by certified-far tuples* reproduces a
/// stored construction bit-for-bit; the two comparisons must share one slack.
pub const CERT_SLACK: f64 = 1e-4;

/// How one pruned construction went: the counters the estimators aggregate
/// into their cache/clip reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellBuildStats {
    /// Candidates offered (after dropping duplicates of the site itself).
    pub candidates: usize,
    /// Candidates actually incorporated into the construction (clips
    /// performed for `k = 1`, active bisectors for `k > 1`).
    pub incorporated: usize,
    /// Candidates skipped under the security-radius certificate.
    pub pruned: usize,
    /// The certified radius: every pruned candidate lies farther than twice
    /// this distance from the site (`0` when nothing was pruned).
    pub security_radius: f64,
}

/// Sorts points by ascending distance from `site`, with a deterministic
/// `(x, y)` tie-break so equal-distance candidates always order the same way
/// regardless of their source container.
pub fn sort_by_distance(site: &Point, pts: &mut [Point]) {
    pts.sort_by(|a, b| {
        a.distance_sq(site)
            .total_cmp(&b.distance_sq(site))
            .then(a.x.total_cmp(&b.x))
            .then(a.y.total_cmp(&b.y))
    });
}

#[cfg(debug_assertions)]
fn assert_ascending(site: &Point, pts: &[Point]) {
    for w in pts.windows(2) {
        debug_assert!(
            w[1].distance_sq(site) >= w[0].distance_sq(site) - 1e-9,
            "candidates must be supplied in ascending distance order"
        );
    }
}

fn max_distance(site: &Point, pts: &[Point]) -> f64 {
    pts.iter().map(|p| p.distance(site)).fold(0.0_f64, f64::max)
}

/// Computes the exact top-k Voronoi cell of `site` with respect to
/// `ordered_others` (ascending distance from `site`), clipped to `bbox`.
///
/// With `prune = true` the construction stops at the security-radius
/// certificate; with `prune = false` every candidate is incorporated. Both
/// modes return byte-identical cells (see the module docs for why); the
/// pruned mode just does asymptotically less work. The result is equal to
/// [`crate::topk_cell::top_k_cell`] on the same ordered candidate list —
/// bit-for-bit on the vertices for every `k` and on the area for `k = 1`
/// (the `k > 1` area is computed by a different exact method and agrees to
/// floating-point accuracy).
pub fn top_k_cell_pruned(
    site: &Point,
    ordered_others: &[Point],
    k: usize,
    bbox: &Rect,
    prune: bool,
) -> (TopKCell, CellBuildStats) {
    // Compatibility wrapper: stateless callers (the NNO baseline, tests,
    // oracles) pay for a cold arena; the estimators thread a warm one
    // through `top_k_cell_pruned_with`. An empty `ClipScratch` performs no
    // allocation by itself, so this costs exactly what the buffers grow to.
    let mut scratch = ClipScratch::new();
    top_k_cell_pruned_with(&mut scratch, site, ordered_others, k, bbox, prune)
}

/// [`top_k_cell_pruned`] against caller-owned scratch buffers.
///
/// The hot-path entry point: with a warm `scratch` the construction performs
/// **zero heap allocation** except for the returned cell's own vertex (and,
/// for `k = 1`, polygon) storage. The output is bit-identical to the
/// wrapper's — the scratch arena is cleared per use and carries no state
/// between builds (asserted by the scratch-versus-fresh property suite).
pub fn top_k_cell_pruned_with(
    scratch: &mut ClipScratch,
    site: &Point,
    ordered_others: &[Point],
    k: usize,
    bbox: &Rect,
    prune: bool,
) -> (TopKCell, CellBuildStats) {
    assert!(k >= 1, "top_k_cell_pruned requires k >= 1");
    #[cfg(debug_assertions)]
    assert_ascending(site, ordered_others);
    let ClipScratch {
        others,
        poly_a,
        poly_b,
        dists,
        lines,
        verts,
        ts,
        distinct,
        ..
    } = scratch;
    others.clear();
    others.extend(
        ordered_others
            .iter()
            .copied()
            .filter(|o| !o.approx_eq(site)),
    );
    let mut stats = CellBuildStats {
        candidates: others.len(),
        ..CellBuildStats::default()
    };

    if others.len() < k {
        let convex = ConvexPolygon::from_rect(bbox);
        return (
            TopKCell {
                site: *site,
                k,
                area: bbox.area(),
                // lbs-lint: allow(hot-path-alloc, reason = "the returned cell owns its vertices; whole-box cells are rare")
                vertices: convex.vertices().to_vec(),
                bbox: *bbox,
                convex: Some(convex),
            },
            stats,
        );
    }

    if k == 1 {
        poly_a.clear();
        poly_a.extend_from_slice(&bbox.corners());
        let mut cur: &mut Vec<Point> = poly_a;
        let mut spare: &mut Vec<Point> = poly_b;
        let mut r_max = max_distance(site, cur);
        for (i, o) in others.iter().enumerate() {
            if prune && o.distance(site) > 2.0 * r_max + CERT_SLACK {
                // Ascending order: this candidate and every later one is
                // certified — their clips would be the identity.
                stats.pruned = others.len() - i;
                stats.security_radius = r_max;
                break;
            }
            if let Some(hp) = HalfPlane::closer_to(site, o) {
                clip_into(cur, &hp, dists, spare);
                std::mem::swap(&mut cur, &mut spare);
                stats.incorporated += 1;
                if cur.len() < 3 {
                    break;
                }
                r_max = max_distance(site, cur);
            }
        }
        let cell = ConvexPolygon::from_ccw_vertices(cur.clone());
        return (
            TopKCell {
                site: *site,
                k: 1,
                area: cell.area(),
                vertices: cur.clone(),
                bbox: *bbox,
                convex: Some(cell),
            },
            stats,
        );
    }

    // k >= 2: grow the active prefix until the certificate covers the tail
    // (or the prefix is everything), then compute the exact geometry from
    // the active set only.
    let n = others.len();
    let mut active_len = if prune { (2 * k).max(4).min(n) } else { n };
    lines.clear();
    let mut lines_built = 0usize;
    loop {
        let active = &others[..active_len];
        // The bisector list only ever extends (the active set is a growing
        // prefix), so build it incrementally: same order, same values, same
        // bits as rebuilding from scratch each pass.
        for o in &active[lines_built..] {
            if let Some(b) = Line::bisector(site, o) {
                lines.push(b);
            }
        }
        lines_built = active_len;
        cell_vertices_into(site, active, lines, k, bbox, verts);
        if active_len == n {
            break;
        }
        let r_max = if verts.is_empty() {
            bbox.diagonal()
        } else {
            max_distance(site, verts)
        };
        if others[active_len].distance(site) > 2.0 * r_max + CERT_SLACK {
            // Ascending order: the next candidate and every later one is
            // certified away by the current (already exact) active cell.
            stats.security_radius = r_max;
            break;
        }
        // Geometric growth amortises the vertex recomputation: any
        // certified prefix produces the same bits, so overshooting only
        // trades a little pruning for fewer enumeration passes.
        active_len = (active_len + (active_len / 2).max(2)).min(n);
    }
    stats.incorporated = active_len;
    stats.pruned = n - active_len;

    let active = &others[..active_len];
    let inside = |q: &Point| bbox.contains(q) && depth(site, active, q) < k;
    let area = boundary_level_area(lines, &inside, bbox, ts, distinct);

    (
        TopKCell {
            site: *site,
            k,
            area,
            vertices: verts.clone(),
            bbox: *bbox,
            convex: None,
        },
        stats,
    )
}

/// Computes the level region of a set of oriented half-planes — the subset
/// of `bbox` whose points violate fewer than `k` of them — with the same
/// security-radius pruning as [`top_k_cell_pruned`].
///
/// `anchor` is a reference point the caller knows to be deep inside the
/// region (the LNR seed location). Half-planes are ordered internally by the
/// distance of their boundary from the anchor; a half-plane that contains
/// the anchor and whose boundary is farther from it than the region's
/// maximum anchor distance can never be violated inside the region, so it is
/// certified away. Half-planes that do not contain the anchor are never
/// pruned. Pruned and unpruned mode return byte-identical regions.
pub fn level_region_pruned(
    halfplanes: &[HalfPlane],
    anchor: &Point,
    k: usize,
    bbox: &Rect,
    prune: bool,
) -> (LevelRegion, CellBuildStats) {
    // Compatibility wrapper over a cold arena; see `top_k_cell_pruned`.
    let mut scratch = ClipScratch::new();
    level_region_pruned_with(&mut scratch, halfplanes, anchor, k, bbox, prune)
}

/// [`level_region_pruned`] against caller-owned scratch buffers.
///
/// The LNR hot-path entry point; the same zero-allocation and bit-identity
/// guarantees as [`top_k_cell_pruned_with`].
pub fn level_region_pruned_with(
    scratch: &mut ClipScratch,
    halfplanes: &[HalfPlane],
    anchor: &Point,
    k: usize,
    bbox: &Rect,
    prune: bool,
) -> (LevelRegion, CellBuildStats) {
    assert!(k >= 1, "level_region_pruned requires k >= 1");
    let ClipScratch {
        planes,
        poly_a,
        poly_b,
        dists,
        lines,
        verts,
        ts,
        distinct,
        ..
    } = scratch;
    let mut stats = CellBuildStats {
        candidates: halfplanes.len(),
        ..CellBuildStats::default()
    };

    if halfplanes.len() < k {
        return (
            LevelRegion {
                area: bbox.area(),
                // lbs-lint: allow(hot-path-alloc, reason = "the returned region owns its vertices; whole-box regions are rare")
                vertices: ConvexPolygon::from_rect(bbox).vertices().to_vec(),
                bbox: *bbox,
                k,
            },
            stats,
        );
    }

    // Deterministic processing order: ascending "prunability key" — the
    // anchor's distance to the boundary for anchor-containing half-planes,
    // and -1 (never prunable, sorted first) for the rest. Ties break on the
    // boundary coefficients so the order never depends on the source
    // container.
    let key = |hp: &HalfPlane| -> f64 {
        let sd = hp.signed_distance(anchor);
        if sd > -EPS {
            -1.0
        } else {
            -sd
        }
    };
    planes.clear();
    planes.extend_from_slice(halfplanes);
    planes.sort_by(|x, y| {
        key(x)
            .total_cmp(&key(y))
            .then(x.boundary.a.total_cmp(&y.boundary.a))
            .then(x.boundary.b.total_cmp(&y.boundary.b))
            .then(x.boundary.c.total_cmp(&y.boundary.c))
    });
    let sorted = &*planes;

    if k == 1 {
        poly_a.clear();
        poly_a.extend_from_slice(&bbox.corners());
        let mut cur: &mut Vec<Point> = poly_a;
        let mut spare: &mut Vec<Point> = poly_b;
        let mut r_max = max_distance(anchor, cur);
        for (i, hp) in sorted.iter().enumerate() {
            let d = key(hp);
            if prune && d >= 0.0 && d > r_max + CERT_SLACK {
                stats.pruned = sorted.len() - i;
                stats.security_radius = r_max;
                break;
            }
            clip_into(cur, hp, dists, spare);
            std::mem::swap(&mut cur, &mut spare);
            stats.incorporated += 1;
            if cur.len() < 3 {
                break;
            }
            r_max = max_distance(anchor, cur);
        }
        return (
            LevelRegion {
                area: ccw_area(cur),
                vertices: cur.clone(),
                bbox: *bbox,
                k,
            },
            stats,
        );
    }

    let n = sorted.len();
    let mut active_len = if prune { (2 * k).max(4).min(n) } else { n };
    lines.clear();
    let mut lines_built = 0usize;
    loop {
        let active = &sorted[..active_len];
        // Prefix-incremental, like the bisector list of the top-k path.
        for hp in &active[lines_built..] {
            lines.push(hp.boundary);
        }
        lines_built = active_len;
        level_region_vertices_into(active, lines, k, bbox, verts);
        if active_len == n {
            break;
        }
        let r_max = if verts.is_empty() {
            bbox.diagonal()
        } else {
            max_distance(anchor, verts)
        };
        let next = key(&sorted[active_len]);
        if next >= 0.0 && next > r_max + CERT_SLACK {
            stats.security_radius = r_max;
            break;
        }
        active_len = (active_len + (active_len / 2).max(2)).min(n);
    }
    stats.incorporated = active_len;
    stats.pruned = n - active_len;

    let active = &sorted[..active_len];
    let inside = |q: &Point| bbox.contains(q) && crate::topk_cell::violation_depth(active, q) < k;
    let area = boundary_level_area(lines, &inside, bbox, ts, distinct);

    (
        LevelRegion {
            area,
            vertices: verts.clone(),
            bbox: *bbox,
            k,
        },
        stats,
    )
}

/// Exact area of the region `{ q ∈ bbox : inside(q) }` from its boundary
/// structure, by Green's theorem over oriented boundary sub-segments.
///
/// `lines` are the candidate boundary lines of the region. The chord of each
/// line inside the box is split at its crossings with every other line; a
/// sub-segment whose two sides disagree on membership is a boundary piece
/// and contributes its shoelace term, oriented so the interior lies on its
/// left. Box edges are handled the same way with the interior probe taken
/// just inside the box.
///
/// Partitioning at *all* pairwise crossings (rather than only at the
/// depth-filtered region vertices) keeps the decomposition correct even for
/// coincident-bisector degeneracies, where a single line carries a depth
/// jump larger than one. It also preserves the pruned-versus-full
/// bit-equality: a crossing contributed by a certified-far line lies
/// strictly outside the security radius, hence strictly outside every
/// boundary piece, so it only subdivides sub-segments that contribute zero
/// either way.
fn boundary_level_area(
    lines: &[Line],
    inside: &dyn Fn(&Point) -> bool,
    bbox: &Rect,
    ts: &mut Vec<f64>,
    distinct: &mut Vec<Line>,
) -> f64 {
    let eps_off = bbox.diagonal().max(1.0) * 1e-9;
    let origin = bbox.center();
    let mut area = 0.0_f64;

    // Coincident duplicate lines (duplicate candidate tuples) must
    // contribute their boundary pieces once, not once per copy.
    distinct.clear();
    for line in lines {
        let duplicate = distinct.iter().any(|l| {
            (l.a - line.a).abs() <= 1e-12
                && (l.b - line.b).abs() <= 1e-12
                && (l.c - line.c).abs() <= 1e-9
        });
        if !duplicate {
            distinct.push(*line);
        }
    }

    // Interior boundary pieces: sub-segments of each line inside the box.
    for (i, line) in distinct.iter().enumerate() {
        let Some(seg) = line.clip_to_rect(bbox) else {
            continue;
        };
        let dir = seg.end - seg.start;
        let len = dir.norm();
        if len <= 1e-9 {
            continue;
        }
        let unit = dir / len;
        let normal = line.normal();

        // Breakpoints along the chord, in the reused buffer (this was a
        // fresh `vec![0.0, len]` per segment before the scratch arena).
        ts.clear();
        ts.push(0.0);
        ts.push(len);
        for (j, other) in distinct.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(p) = line.intersection(other) {
                let t = (p - seg.start).dot(&unit);
                if t > 0.0 && t < len {
                    ts.push(t);
                }
            }
        }
        ts.sort_by(|a, b| a.total_cmp(b));
        ts.dedup_by(|a, b| (*a - *b).abs() <= 1e-9);

        for w in ts.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 <= 1e-9 {
                continue;
            }
            let mid = seg.start + unit * (0.5 * (t0 + t1));
            let in_plus = inside(&(mid + normal * eps_off));
            let in_minus = inside(&(mid - normal * eps_off));
            if in_plus == in_minus {
                continue;
            }
            let a = seg.start + unit * t0 - origin;
            let b = seg.start + unit * t1 - origin;
            // `unit` is the line direction (normal rotated +90°), so the
            // -normal side is the left of a→b; traverse with the interior
            // on the left.
            area += if in_minus {
                0.5 * a.cross(&b)
            } else {
                0.5 * b.cross(&a)
            };
        }
    }

    // Box-edge boundary pieces, counter-clockwise (interior on the left).
    let corners = bbox.corners();
    for i in 0..4 {
        let ca = corners[i];
        let cb = corners[(i + 1) % 4];
        let dir = cb - ca;
        let len = dir.norm();
        let unit = dir / len;
        let inward = Point::new(-unit.y, unit.x);
        let edge_line = Line::through(&ca, &cb).expect("box edges are non-degenerate");

        ts.clear();
        ts.push(0.0);
        ts.push(len);
        for line in distinct.iter() {
            if let Some(p) = edge_line.intersection(line) {
                let t = (p - ca).dot(&unit);
                if t > 0.0 && t < len {
                    ts.push(t);
                }
            }
        }
        ts.sort_by(|a, b| a.total_cmp(b));
        ts.dedup_by(|a, b| (*a - *b).abs() <= 1e-9);

        for w in ts.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 <= 1e-9 {
                continue;
            }
            let mid = ca + unit * (0.5 * (t0 + t1)) + inward * eps_off;
            if inside(&mid) {
                let a = ca + unit * t0 - origin;
                let b = ca + unit * t1 - origin;
                area += 0.5 * a.cross(&b);
            }
        }
    }

    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk_cell::{level_region, top_k_cell};

    fn bbox() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn sorted_others(site: &Point, pts: &[(f64, f64)]) -> Vec<Point> {
        let mut v: Vec<Point> = pts.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        sort_by_distance(site, &mut v);
        v
    }

    fn assert_cells_bitwise_equal(a: &TopKCell, b: &TopKCell) {
        assert_eq!(a.area.to_bits(), b.area.to_bits(), "area bits differ");
        assert_eq!(a.vertices.len(), b.vertices.len(), "vertex counts differ");
        for (va, vb) in a.vertices.iter().zip(b.vertices.iter()) {
            assert_eq!(va.x.to_bits(), vb.x.to_bits());
            assert_eq!(va.y.to_bits(), vb.y.to_bits());
        }
    }

    #[test]
    fn k1_matches_oracle_bitwise_and_prunes() {
        let site = Point::new(42.0, 57.0);
        let others = sorted_others(
            &site,
            &[
                (45.0, 55.0),
                (40.0, 60.0),
                (55.0, 40.0),
                (30.0, 85.0),
                (80.0, 15.0),
                (10.0, 20.0),
                (95.0, 95.0),
                (5.0, 95.0),
            ],
        );
        let oracle = top_k_cell(&site, &others, 1, &bbox());
        let (pruned, stats) = top_k_cell_pruned(&site, &others, 1, &bbox(), true);
        let (full, full_stats) = top_k_cell_pruned(&site, &others, 1, &bbox(), false);
        assert_cells_bitwise_equal(&oracle, &pruned);
        assert_cells_bitwise_equal(&oracle, &full);
        assert!(
            stats.pruned > 0,
            "nearby cluster should certify the far tail"
        );
        assert_eq!(stats.incorporated + stats.pruned, stats.candidates);
        assert_eq!(full_stats.pruned, 0);
    }

    #[test]
    fn k2_pruned_equals_full_bitwise_and_matches_slab_area() {
        let site = Point::new(50.0, 50.0);
        let mut pts = Vec::new();
        for i in 0..8 {
            let ang = i as f64 * std::f64::consts::PI / 4.0;
            pts.push((50.0 + 12.0 * ang.cos(), 50.0 + 12.0 * ang.sin()));
        }
        pts.extend_from_slice(&[(2.0, 3.0), (97.0, 4.0), (95.0, 96.0), (3.0, 95.0)]);
        let others = sorted_others(&site, &pts);
        for k in 2..=3usize {
            let (pruned, stats) = top_k_cell_pruned(&site, &others, k, &bbox(), true);
            let (full, _) = top_k_cell_pruned(&site, &others, k, &bbox(), false);
            assert_cells_bitwise_equal(&pruned, &full);
            assert!(stats.pruned > 0, "k={k}: corners should be certified away");
            let oracle = top_k_cell(&site, &others, k, &bbox());
            assert_eq!(pruned.vertices.len(), oracle.vertices.len());
            assert!(
                (pruned.area - oracle.area).abs() / oracle.area.max(1e-12) < 1e-8,
                "k={k}: boundary area {} vs slab {}",
                pruned.area,
                oracle.area
            );
        }
    }

    #[test]
    fn whole_box_when_fewer_candidates_than_k() {
        let (cell, stats) = top_k_cell_pruned(
            &Point::new(50.0, 50.0),
            &[Point::new(60.0, 50.0)],
            3,
            &bbox(),
            true,
        );
        assert!((cell.area - bbox().area()).abs() < 1e-9);
        assert_eq!(stats.incorporated, 0);
    }

    #[test]
    fn duplicate_candidates_do_not_double_count_boundary() {
        let site = Point::new(50.0, 50.0);
        let mut pts = vec![
            (30.0, 50.0),
            (30.0, 50.0), // exact duplicate → coincident bisector
            (70.0, 50.0),
            (50.0, 30.0),
            (50.0, 70.0),
        ];
        pts.push((30.0, 50.0));
        let others = sorted_others(&site, &pts);
        for k in 1..=3usize {
            let oracle = top_k_cell(&site, &others, k, &bbox());
            let (pruned, _) = top_k_cell_pruned(&site, &others, k, &bbox(), true);
            assert!(
                (pruned.area - oracle.area).abs() / oracle.area.max(1e-12) < 1e-8,
                "k={k}: {} vs {}",
                pruned.area,
                oracle.area
            );
        }
    }

    #[test]
    fn level_region_pruned_matches_unpruned_and_oracle() {
        let site = Point::new(50.0, 50.0);
        let pts = [
            (44.0, 50.0),
            (50.0, 43.0),
            (57.0, 50.0),
            (50.0, 58.0),
            (25.0, 25.0),
            (75.0, 25.0),
            (75.0, 75.0),
            (25.0, 75.0),
            (1.0, 1.0),
            (99.0, 1.0),
            (99.0, 99.0),
            (1.0, 99.0),
        ];
        let planes: Vec<HalfPlane> = pts
            .iter()
            .map(|(x, y)| HalfPlane::closer_to(&site, &Point::new(*x, *y)).unwrap())
            .collect();
        for k in 1..=3usize {
            let (pruned, stats) = level_region_pruned(&planes, &site, k, &bbox(), true);
            let (full, _) = level_region_pruned(&planes, &site, k, &bbox(), false);
            assert_eq!(pruned.area.to_bits(), full.area.to_bits(), "k={k}");
            assert_eq!(pruned.vertices.len(), full.vertices.len());
            if k <= 2 {
                assert!(stats.pruned > 0, "k={k}: far planes should be certified");
            }
            let oracle = level_region(&planes, k, &bbox());
            assert!(
                (pruned.area - oracle.area).abs() / oracle.area.max(1e-12) < 1e-8,
                "k={k}: {} vs {}",
                pruned.area,
                oracle.area
            );
        }
    }

    #[test]
    fn sort_by_distance_breaks_ties_deterministically() {
        let site = Point::new(0.0, 0.0);
        let mut a = vec![
            Point::new(3.0, 4.0),
            Point::new(5.0, 0.0),
            Point::new(-5.0, 0.0),
            Point::new(0.0, 5.0),
        ];
        let mut b = a.clone();
        b.reverse();
        sort_by_distance(&site, &mut a);
        sort_by_distance(&site, &mut b);
        assert_eq!(a, b);
    }
}
