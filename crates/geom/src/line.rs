//! Lines, rays, segments and perpendicular bisectors.
//!
//! Perpendicular bisectors are the work-horse of the whole reproduction: every
//! edge of a (top-k) Voronoi cell is a piece of the perpendicular bisector
//! between the cell's tuple and a neighbouring tuple (paper §3.1), and the
//! LNR-LBS binary search (paper Appendix A) walks along rays until it brackets
//! such a bisector.

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::rect::Rect;
use crate::EPS;

/// An infinite line in implicit form `a*x + b*y = c` with `(a, b)` normalised
/// to unit length.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Line {
    /// x coefficient of the implicit equation.
    pub a: f64,
    /// y coefficient of the implicit equation.
    pub b: f64,
    /// Constant term of the implicit equation.
    pub c: f64,
}

impl Line {
    /// Line through two distinct points.
    ///
    /// Returns `None` when the points (nearly) coincide.
    pub fn through(p: &Point, q: &Point) -> Option<Line> {
        let d = *q - *p;
        let n = d.perp().normalized()?;
        Some(Line {
            a: n.x,
            b: n.y,
            c: n.dot(p),
        })
    }

    /// Line with a given (not necessarily unit) normal passing through `p`.
    ///
    /// Returns `None` when the normal is (nearly) zero.
    pub fn with_normal(normal: &Point, p: &Point) -> Option<Line> {
        let n = normal.normalized()?;
        Some(Line {
            a: n.x,
            b: n.y,
            c: n.dot(p),
        })
    }

    /// Perpendicular bisector of the segment `(p, q)`: the locus of points at
    /// equal distance from `p` and `q`.
    ///
    /// The normal points from `p` towards `q`, so positive
    /// [`Line::signed_distance`] means "closer to `q`".
    ///
    /// Returns `None` when `p` and `q` (nearly) coincide — the paper's general
    /// positioning assumption excludes that case for real tuples.
    pub fn bisector(p: &Point, q: &Point) -> Option<Line> {
        let n = (*q - *p).normalized()?;
        let m = p.midpoint(q);
        Some(Line {
            a: n.x,
            b: n.y,
            c: n.dot(&m),
        })
    }

    /// Unit normal vector of the line.
    #[inline]
    pub fn normal(&self) -> Point {
        Point::new(self.a, self.b)
    }

    /// Unit direction vector of the line (normal rotated by 90°).
    #[inline]
    pub fn direction(&self) -> Point {
        Point::new(-self.b, self.a)
    }

    /// Signed distance from the point to the line (positive on the side the
    /// normal points to).
    #[inline]
    pub fn signed_distance(&self, p: &Point) -> f64 {
        self.a * p.x + self.b * p.y - self.c
    }

    /// `true` when the point lies on the line within `eps`.
    #[inline]
    pub fn contains(&self, p: &Point, eps: f64) -> bool {
        self.signed_distance(p).abs() <= eps
    }

    /// Orthogonal projection of the point onto the line.
    pub fn project(&self, p: &Point) -> Point {
        *p - self.normal() * self.signed_distance(p)
    }

    /// Intersection point of two lines.
    ///
    /// Returns `None` for (nearly) parallel lines.
    pub fn intersection(&self, other: &Line) -> Option<Point> {
        let det = self.a * other.b - other.a * self.b;
        if det.abs() <= EPS {
            return None;
        }
        let x = (self.c * other.b - other.c * self.b) / det;
        let y = (self.a * other.c - other.a * self.c) / det;
        Some(Point::new(x, y))
    }

    /// Clips the line to a rectangle, returning the chord as a segment.
    ///
    /// Returns `None` when the line misses the rectangle.
    pub fn clip_to_rect(&self, rect: &Rect) -> Option<Segment> {
        // Parametrise as p(t) = p0 + t*d and clip t against the four slabs
        // (Liang–Barsky style).
        let d = self.direction();
        let p0 = self.project(&rect.center());
        let mut t_min = f64::NEG_INFINITY;
        let mut t_max = f64::INFINITY;
        let checks = [
            (d.x, rect.min_x - p0.x, rect.max_x - p0.x),
            (d.y, rect.min_y - p0.y, rect.max_y - p0.y),
        ];
        for (dir, lo, hi) in checks {
            if dir.abs() <= EPS {
                // Parallel to this slab: must already be inside it.
                if lo > EPS || hi < -EPS {
                    return None;
                }
            } else {
                let (t0, t1) = if dir > 0.0 {
                    (lo / dir, hi / dir)
                } else {
                    (hi / dir, lo / dir)
                };
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
            }
        }
        if t_min > t_max {
            return None;
        }
        Some(Segment::new(p0 + d * t_min, p0 + d * t_max))
    }
}

/// A directed line segment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub start: Point,
    /// End point.
    pub end: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub fn new(start: Point, end: Point) -> Self {
        Segment { start, end }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.start.distance(&self.end)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.start.midpoint(&self.end)
    }

    /// Point at parameter `t` in `[0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.start.lerp(&self.end, t)
    }

    /// The supporting line of the segment, if the segment is non-degenerate.
    pub fn line(&self) -> Option<Line> {
        Line::through(&self.start, &self.end)
    }

    /// Distance from a point to the segment (not the supporting line).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let d = self.end - self.start;
        let len_sq = d.norm_sq();
        if len_sq <= EPS * EPS {
            return self.start.distance(p);
        }
        let t = ((*p - self.start).dot(&d) / len_sq).clamp(0.0, 1.0);
        self.at(t).distance(p)
    }

    /// Intersection point with another segment (closed endpoints).
    ///
    /// Returns `None` when the segments do not intersect or are (nearly)
    /// parallel; collinear overlap is reported as `None` because the callers
    /// only care about transversal crossings of Voronoi edges.
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let r = self.end - self.start;
        let s = other.end - other.start;
        let denom = r.cross(&s);
        if denom.abs() <= EPS {
            return None;
        }
        let qp = other.start - self.start;
        let t = qp.cross(&s) / denom;
        let u = qp.cross(&r) / denom;
        let tol = 1e-9;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            Some(self.at(t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }
}

/// A half-line: origin plus a direction, extending to infinity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Origin of the ray.
    pub origin: Point,
    /// Unit direction of the ray.
    pub direction: Point,
}

impl Ray {
    /// Creates a ray; the direction is normalised.
    ///
    /// Returns `None` when the direction is (nearly) zero.
    pub fn new(origin: Point, direction: Point) -> Option<Self> {
        Some(Ray {
            origin,
            direction: direction.normalized()?,
        })
    }

    /// Ray from `origin` towards `through`.
    pub fn towards(origin: Point, through: Point) -> Option<Self> {
        Ray::new(origin, through - origin)
    }

    /// Point at distance `t >= 0` along the ray.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.origin + self.direction * t
    }

    /// Parameter `t` at which the ray exits the rectangle, assuming the origin
    /// lies inside the rectangle.
    ///
    /// This is `c_b` of the paper's Appendix A: the intersection of the
    /// half-line with the bounding box. Returns `None` when the origin is
    /// outside the rectangle or the ray never exits (which cannot happen for a
    /// finite rectangle and an inside origin).
    pub fn exit_from_rect(&self, rect: &Rect) -> Option<f64> {
        if !rect.contains(&self.origin) {
            return None;
        }
        let mut t_exit = f64::INFINITY;
        if self.direction.x > EPS {
            t_exit = t_exit.min((rect.max_x - self.origin.x) / self.direction.x);
        } else if self.direction.x < -EPS {
            t_exit = t_exit.min((rect.min_x - self.origin.x) / self.direction.x);
        }
        if self.direction.y > EPS {
            t_exit = t_exit.min((rect.max_y - self.origin.y) / self.direction.y);
        } else if self.direction.y < -EPS {
            t_exit = t_exit.min((rect.min_y - self.origin.y) / self.direction.y);
        }
        if t_exit.is_finite() {
            Some(t_exit.max(0.0))
        } else {
            None
        }
    }

    /// Rotates the ray around its origin by `angle` radians (counter-clockwise).
    pub fn rotated(&self, angle: f64) -> Ray {
        let (sin, cos) = angle.sin_cos();
        let d = self.direction;
        Ray {
            origin: self.origin,
            direction: Point::new(d.x * cos - d.y * sin, d.x * sin + d.y * cos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisector_is_equidistant() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(4.0, 2.0);
        let b = Line::bisector(&p, &q).unwrap();
        // Any point on the bisector is equidistant from p and q.
        let m = p.midpoint(&q);
        assert!(b.contains(&m, 1e-9));
        let on_line = m + b.direction() * 3.0;
        assert!((on_line.distance(&p) - on_line.distance(&q)).abs() < 1e-9);
        // The normal points from p to q: q side is positive.
        assert!(b.signed_distance(&q) > 0.0);
        assert!(b.signed_distance(&p) < 0.0);
    }

    #[test]
    fn bisector_degenerate() {
        let p = Point::new(1.0, 1.0);
        assert!(Line::bisector(&p, &p).is_none());
    }

    #[test]
    fn line_through_and_projection() {
        let l = Line::through(&Point::new(0.0, 0.0), &Point::new(2.0, 0.0)).unwrap();
        assert!(l.contains(&Point::new(5.0, 0.0), 1e-9));
        let proj = l.project(&Point::new(3.0, 4.0));
        assert!(proj.approx_eq(&Point::new(3.0, 0.0)));
        assert!((l.signed_distance(&Point::new(0.0, 2.0)).abs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn line_intersection() {
        let h = Line::through(&Point::new(0.0, 1.0), &Point::new(1.0, 1.0)).unwrap();
        let v = Line::through(&Point::new(2.0, 0.0), &Point::new(2.0, 1.0)).unwrap();
        let x = h.intersection(&v).unwrap();
        assert!(x.approx_eq(&Point::new(2.0, 1.0)));
        let h2 = Line::through(&Point::new(0.0, 3.0), &Point::new(1.0, 3.0)).unwrap();
        assert!(h.intersection(&h2).is_none());
    }

    #[test]
    fn clip_line_to_rect() {
        let rect = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let l = Line::through(&Point::new(-5.0, 5.0), &Point::new(20.0, 5.0)).unwrap();
        let seg = l.clip_to_rect(&rect).unwrap();
        assert!((seg.length() - 10.0).abs() < 1e-9);
        let outside = Line::through(&Point::new(-5.0, 20.0), &Point::new(20.0, 20.0)).unwrap();
        assert!(outside.clip_to_rect(&rect).is_none());
        // Diagonal line.
        let diag = Line::through(&Point::new(0.0, 0.0), &Point::new(1.0, 1.0)).unwrap();
        let seg = diag.clip_to_rect(&rect).unwrap();
        assert!((seg.length() - (200.0_f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn segment_distance_and_intersection() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!((s.distance_to_point(&Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        assert!((s.distance_to_point(&Point::new(-4.0, 3.0)) - 5.0).abs() < 1e-12);
        let t = Segment::new(Point::new(5.0, -1.0), Point::new(5.0, 1.0));
        let x = s.intersection(&t).unwrap();
        assert!(x.approx_eq(&Point::new(5.0, 0.0)));
        let far = Segment::new(Point::new(20.0, -1.0), Point::new(20.0, 1.0));
        assert!(s.intersection(&far).is_none());
    }

    #[test]
    fn ray_exit_from_rect() {
        let rect = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let r = Ray::new(Point::new(5.0, 5.0), Point::new(1.0, 0.0)).unwrap();
        let t = r.exit_from_rect(&rect).unwrap();
        assert!((t - 5.0).abs() < 1e-9);
        assert!(r.at(t).approx_eq(&Point::new(10.0, 5.0)));
        let diag = Ray::new(Point::new(5.0, 5.0), Point::new(1.0, 1.0)).unwrap();
        let t = diag.exit_from_rect(&rect).unwrap();
        assert!(diag.at(t).approx_eq(&Point::new(10.0, 10.0)));
        let outside = Ray::new(Point::new(50.0, 50.0), Point::new(1.0, 0.0)).unwrap();
        assert!(outside.exit_from_rect(&rect).is_none());
    }

    #[test]
    fn ray_rotation() {
        let r = Ray::new(Point::ORIGIN, Point::new(1.0, 0.0)).unwrap();
        let up = r.rotated(std::f64::consts::FRAC_PI_2);
        assert!(up.direction.approx_eq(&Point::new(0.0, 1.0)));
        let down = r.rotated(-std::f64::consts::FRAC_PI_2);
        assert!(down.direction.approx_eq(&Point::new(0.0, -1.0)));
    }
}
