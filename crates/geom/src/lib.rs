//! # lbs-geom
//!
//! Two-dimensional computational geometry engine backing the reproduction of
//! *Aggregate Estimations over Location Based Services* (Liu et al., VLDB 2015).
//!
//! The paper's estimators repeatedly need to
//!
//! * compute the **Voronoi cell** of a tuple exactly from the locations of the
//!   tuples discovered so far (Theorem 1 of the paper),
//! * compute the **top-k Voronoi cell** — the region of query locations that
//!   return a tuple among their k nearest neighbours — including its exact
//!   area and its vertex set even when the region is *concave*,
//! * clip convex cells by perpendicular bisector half-planes,
//! * maintain **upper and lower bounds** on a cell (bounding polygon, union of
//!   disks through the tuple centred at confirmed vertices),
//! * intersect rays with cell boundaries for the rank-only binary-search
//!   machinery of LNR-LBS-AGG.
//!
//! All of that is implemented here from scratch on plain `f64` coordinates.
//! The crate has no dependency on the rest of the workspace and can be used as
//! a small standalone geometry toolkit.
//!
//! ## Module overview
//!
//! | module | contents |
//! |--------|----------|
//! | [`point`] | points, vectors, distances, orientation predicates |
//! | [`rect`] | axis-aligned rectangles (bounding boxes) |
//! | [`mod@line`] | lines, segments, rays, perpendicular bisectors |
//! | [`halfplane`] | closed half-planes and signed distances |
//! | [`convex`] | convex polygons and half-plane clipping |
//! | [`polygon`] | simple (possibly concave) polygons |
//! | [`circle`] | circles/disks and exact disk-union coverage tests |
//! | [`topk_cell`] | exact top-k Voronoi cells (vertices + area) |
//! | [`cell_engine`] | pruned incremental cell construction with security-radius certificates |
//! | [`scratch`] | reusable buffers making the cell constructions allocation-free |
//! | [`voronoi`] | full Voronoi diagrams over a site set |
//!
//! ## Numerical conventions
//!
//! Computations are carried out in `f64`. Predicates that would be brittle
//! under exact comparison accept an epsilon; the crate-wide default is
//! [`EPS`]. The paper assumes *general positioning* (no two tuples co-located,
//! no four co-circular); the algorithms here tolerate mild violations by
//! epsilon-perturbation but make no exactness guarantee in degenerate inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell_engine;
pub mod circle;
pub mod convex;
pub mod halfplane;
pub mod line;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod scratch;
pub mod topk_cell;
pub mod voronoi;

pub use cell_engine::{
    level_region_pruned, level_region_pruned_with, sort_by_distance, top_k_cell_pruned,
    top_k_cell_pruned_with, CellBuildStats, CERT_SLACK,
};
pub use circle::{disk_covered_by_union, Circle};
pub use convex::ConvexPolygon;
pub use halfplane::HalfPlane;
pub use line::{Line, Ray, Segment};
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;
pub use scratch::ClipScratch;
pub use topk_cell::{level_region, top_k_cell, violation_depth, LevelRegion, TopKCell};
pub use voronoi::{voronoi_diagram, VoronoiDiagram};

/// Crate-wide default tolerance for geometric predicates.
///
/// Coordinates used by the LBS simulators are on the order of 10^3 (a
/// continental bounding box measured in kilometres), so `1e-9` keeps roughly
/// twelve significant digits of slack — far below any distance that matters
/// to the estimators — while absorbing floating point noise from repeated
/// half-plane clipping.
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floating point values are equal within [`EPS`]
/// scaled by the magnitude of the inputs.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPS * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0001));
        assert!(approx_eq(1e6, 1e6 + 1e-4));
        assert!(!approx_eq(0.0, 1e-3));
    }
}
