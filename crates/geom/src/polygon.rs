//! Simple polygons, possibly concave.
//!
//! Top-k Voronoi cells with `k > 1` can be **concave** (paper §2.2, Figure 1),
//! and the cell polygons recovered by LNR-LBS-AGG are therefore general simple
//! polygons rather than convex ones. [`Polygon`] provides area, containment
//! and centroid for that case.

use serde::{Deserialize, Serialize};

use crate::convex::ConvexPolygon;
use crate::point::Point;
use crate::rect::Rect;
use crate::EPS;

/// A simple polygon described by its vertices in order (clockwise or
/// counter-clockwise); the boundary must not self-intersect.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its boundary vertices in order.
    pub fn new(vertices: Vec<Point>) -> Self {
        Polygon { vertices }
    }

    /// The vertices in boundary order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the polygon has fewer than three vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Signed area: positive for counter-clockwise orientation.
    pub fn signed_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut twice = 0.0;
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            twice += a.cross(&b);
        }
        twice * 0.5
    }

    /// Absolute area of the polygon.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// `true` when the point is inside or on the boundary (winding-agnostic
    /// even–odd rule with an explicit boundary check).
    pub fn contains(&self, p: &Point) -> bool {
        if self.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        // Boundary check first: the ray-casting parity rule is unreliable on
        // the boundary itself.
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let seg_len_sq = a.distance_sq(&b);
            if seg_len_sq <= EPS * EPS {
                if p.approx_eq(&a) {
                    return true;
                }
                continue;
            }
            let t = ((*p - a).dot(&(b - a)) / seg_len_sq).clamp(0.0, 1.0);
            if a.lerp(&b, t).distance(p) <= 1e-9 {
                return true;
            }
        }
        // Even-odd ray casting towards +x.
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let crosses = (a.y > p.y) != (b.y > p.y);
            if crosses {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if x_at > p.x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Centroid of the polygon area (`None` when degenerate).
    pub fn centroid(&self) -> Option<Point> {
        if self.is_empty() {
            return None;
        }
        let mut twice_area = 0.0;
        let mut cx = 0.0;
        let mut cy = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let w = a.cross(&b);
            twice_area += w;
            cx += (a.x + b.x) * w;
            cy += (a.y + b.y) * w;
        }
        if twice_area.abs() <= EPS {
            return None;
        }
        Some(Point::new(cx / (3.0 * twice_area), cy / (3.0 * twice_area)))
    }

    /// Axis-aligned bounding box of the polygon.
    pub fn bounding_rect(&self) -> Option<Rect> {
        Rect::bounding(self.vertices.iter().copied())
    }

    /// `true` when the polygon is convex (all turns in the same direction).
    pub fn is_convex(&self) -> bool {
        if self.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        let mut sign = 0.0_f64;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let cross = Point::orient(&a, &b, &c);
            if cross.abs() <= EPS {
                continue;
            }
            if sign == 0.0 {
                sign = cross.signum();
            } else if cross.signum() != sign {
                return false;
            }
        }
        true
    }
}

impl From<ConvexPolygon> for Polygon {
    fn from(c: ConvexPolygon) -> Self {
        Polygon::new(c.vertices().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An L-shaped (concave) polygon with area 3: the unit square grid cells
    /// (0,0), (1,0) and (0,1).
    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
    }

    #[test]
    fn area_of_concave_polygon() {
        let p = l_shape();
        assert!((p.area() - 3.0).abs() < 1e-12);
        assert!(p.signed_area() > 0.0);
    }

    #[test]
    fn clockwise_polygon_has_negative_signed_area() {
        let mut verts = l_shape().vertices().to_vec();
        verts.reverse();
        let p = Polygon::new(verts);
        assert!(p.signed_area() < 0.0);
        assert!((p.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn containment_in_concave_polygon() {
        let p = l_shape();
        assert!(p.contains(&Point::new(0.5, 0.5)));
        assert!(p.contains(&Point::new(1.5, 0.5)));
        assert!(p.contains(&Point::new(0.5, 1.5)));
        // The notch.
        assert!(!p.contains(&Point::new(1.5, 1.5)));
        // Boundary points.
        assert!(p.contains(&Point::new(1.0, 1.0)));
        assert!(p.contains(&Point::new(0.0, 0.0)));
        assert!(p.contains(&Point::new(2.0, 0.5)));
        // Clearly outside.
        assert!(!p.contains(&Point::new(-0.5, 0.5)));
        assert!(!p.contains(&Point::new(3.0, 3.0)));
    }

    #[test]
    fn convexity_detection() {
        assert!(!l_shape().is_convex());
        let square = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]);
        assert!(square.is_convex());
        assert!(!Polygon::new(vec![Point::new(0.0, 0.0)]).is_convex());
    }

    #[test]
    fn centroid_and_bbox() {
        let square = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(square.centroid().unwrap().approx_eq(&Point::new(1.0, 1.0)));
        assert_eq!(
            square.bounding_rect().unwrap(),
            Rect::from_bounds(0.0, 0.0, 2.0, 2.0)
        );
        assert!(Polygon::default().centroid().is_none());
    }

    #[test]
    fn conversion_from_convex() {
        let c = ConvexPolygon::from_rect(&Rect::from_bounds(0.0, 0.0, 4.0, 2.0));
        let p: Polygon = c.into();
        assert!((p.area() - 8.0).abs() < 1e-12);
        assert!(p.is_convex());
    }
}
