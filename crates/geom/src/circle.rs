//! Circles, disks and disk-union coverage tests.
//!
//! Paper §3.2.4 derives a **lower bound** on a Voronoi cell from confirmed
//! vertices: if `v` is a vertex of the tentative cell already confirmed to be
//! inside the true cell of tuple `t`, every tuple of the database must be
//! outside the open disk `C(v, t)` centred at `v` with radius `|v - t|`
//! (otherwise the kNN query at `v` would have returned that tuple instead of
//! `t`). A query location `q` is then guaranteed to lie inside `V(t)` whenever
//! the disk `C(q, t)` is fully covered by the union of the confirmed disks —
//! no tuple can be closer to `q` than `t` is. [`disk_covered_by_union`]
//! implements that coverage test exactly via angular-interval arithmetic plus
//! the standard hole criterion.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

use crate::point::Point;
use crate::EPS;

/// A circle (and the closed disk it bounds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Centre of the circle.
    pub center: Point,
    /// Radius of the circle (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; negative radii are clamped to zero.
    pub fn new(center: Point, radius: f64) -> Self {
        Circle {
            center,
            radius: radius.max(0.0),
        }
    }

    /// The disk centred at `v` passing through `t` — the paper's `C(v, t)`.
    pub fn through(center: Point, through: Point) -> Self {
        Circle::new(center, center.distance(&through))
    }

    /// `true` when the point lies inside or on the circle (within [`EPS`]).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.center.distance(p) <= self.radius + EPS
    }

    /// `true` when `other` lies entirely inside `self`.
    pub fn contains_circle(&self, other: &Circle) -> bool {
        self.center.distance(&other.center) + other.radius <= self.radius + EPS
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        PI * self.radius * self.radius
    }

    /// Point on the circle at the given angle (radians from the +x axis).
    #[inline]
    pub fn point_at(&self, angle: f64) -> Point {
        Point::new(
            self.center.x + self.radius * angle.cos(),
            self.center.y + self.radius * angle.sin(),
        )
    }

    /// Intersection points of two circle boundaries (0, 1 or 2 points).
    pub fn boundary_intersections(&self, other: &Circle) -> Vec<Point> {
        let d = self.center.distance(&other.center);
        if d <= EPS {
            return Vec::new();
        }
        let (r0, r1) = (self.radius, other.radius);
        if d > r0 + r1 + EPS || d < (r0 - r1).abs() - EPS {
            return Vec::new();
        }
        // Distance from self.center to the chord midpoint along the centre line.
        let a = (r0 * r0 - r1 * r1 + d * d) / (2.0 * d);
        let h_sq = r0 * r0 - a * a;
        let dir = (other.center - self.center) / d;
        let mid = self.center + dir * a;
        if h_sq <= EPS {
            return vec![mid];
        }
        let h = h_sq.sqrt();
        let off = dir.perp() * h;
        vec![mid + off, mid - off]
    }

    /// The angular interval(s) of this circle's boundary that lie inside the
    /// disk `other`, expressed as `(start, end)` angles in radians with
    /// `start <= end` and the interval possibly wrapping past `2π` (callers
    /// normalise). Returns an empty vector when no part of the boundary is
    /// covered and the full circle `[0, 2π)` when the whole boundary is inside.
    fn boundary_arc_inside(&self, other: &Circle) -> Vec<(f64, f64)> {
        let d = self.center.distance(&other.center);
        // Entire boundary inside `other`.
        if d + self.radius <= other.radius + EPS {
            return vec![(0.0, 2.0 * PI)];
        }
        // No overlap at all.
        if d >= self.radius + other.radius - EPS || self.radius <= EPS {
            return Vec::new();
        }
        // `other` entirely inside `self` without touching the boundary.
        if d + other.radius <= self.radius - EPS {
            return Vec::new();
        }
        // Partial overlap: the covered arc is centred on the direction from
        // self.center towards other.center with half-angle from the law of
        // cosines.
        let cos_half = (d * d + self.radius * self.radius - other.radius * other.radius)
            / (2.0 * d * self.radius);
        let cos_half = cos_half.clamp(-1.0, 1.0);
        let half = cos_half.acos();
        if half <= EPS {
            return Vec::new();
        }
        let mid_angle = (other.center - self.center).angle();
        vec![(mid_angle - half, mid_angle + half)]
    }

    /// `true` when every point of this circle's *boundary* is covered by at
    /// least one disk in `cover`.
    pub fn boundary_covered_by(&self, cover: &[Circle]) -> bool {
        // Collect covered angular intervals, normalise into [0, 2π) possibly
        // splitting wrap-around intervals, then check that the union is the
        // full circle.
        let two_pi = 2.0 * PI;
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        for c in cover {
            for (s, e) in self.boundary_arc_inside(c) {
                if e - s >= two_pi - EPS {
                    return true;
                }
                let mut s = s.rem_euclid(two_pi);
                let e = e.rem_euclid(two_pi);
                if e < s {
                    // Wraps around 0.
                    intervals.push((s, two_pi));
                    s = 0.0;
                }
                // A tiny tolerance keeps adjacent arcs from leaving pin-hole
                // gaps due to floating point rounding.
                intervals.push(((s - 1e-12).max(0.0), (e + 1e-12).min(two_pi)));
            }
        }
        if intervals.is_empty() {
            return false;
        }
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut covered_until = 0.0_f64;
        for (s, e) in intervals {
            if s > covered_until + 1e-9 {
                return false;
            }
            covered_until = covered_until.max(e);
            if covered_until >= two_pi - 1e-9 {
                return true;
            }
        }
        covered_until >= two_pi - 1e-9
    }
}

/// Exact test of whether the disk `target` is fully covered by the union of
/// the disks in `cover`.
///
/// The test uses the classical criterion: a disk `D` is covered by a union
/// `U` of disks if and only if
///
/// 1. the boundary of `D` is covered by `U`,
/// 2. every intersection point of two covering-circle boundaries that lies
///    inside `D` is covered by `U` (any uncovered hole inside `D` would have
///    such a point on its boundary), and
/// 3. at least one point of `D` (we use the centre) is covered — this rules
///    out the degenerate case where `U` only grazes the boundary.
///
/// The cost is `O(|cover|^3)` in the worst case, but the estimator only calls
/// it with the handful of confirmed-vertex disks of one Voronoi cell.
pub fn disk_covered_by_union(target: &Circle, cover: &[Circle]) -> bool {
    if target.radius <= EPS {
        return cover.iter().any(|c| c.contains(&target.center));
    }
    if cover.is_empty() {
        return false;
    }
    // Quick win: a single disk already covers the target.
    if cover.iter().any(|c| c.contains_circle(target)) {
        return true;
    }
    // (3) centre covered.
    if !cover.iter().any(|c| c.contains(&target.center)) {
        return false;
    }
    // (1) boundary covered.
    if !target.boundary_covered_by(cover) {
        return false;
    }
    // (2) pairwise intersection points inside the target must be covered by a
    // *third* disk (being on the boundary of the two intersecting disks, they
    // are covered by those two only in the closed sense; a hole would start
    // exactly there).
    for i in 0..cover.len() {
        for j in (i + 1)..cover.len() {
            for p in cover[i].boundary_intersections(&cover[j]) {
                if target.center.distance(&p) < target.radius - EPS {
                    let covered = cover.iter().enumerate().any(|(idx, c)| {
                        idx != i && idx != j && c.center.distance(&p) < c.radius - EPS
                    });
                    if !covered {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_containment() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        assert!(c.contains(&Point::new(1.0, 1.0)));
        assert!(c.contains(&Point::new(2.0, 0.0)));
        assert!(!c.contains(&Point::new(2.1, 0.0)));
        assert!((c.area() - 4.0 * PI).abs() < 1e-9);
    }

    #[test]
    fn through_constructor() {
        let c = Circle::through(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert!((c.radius - 5.0).abs() < 1e-12);
    }

    #[test]
    fn circle_circle_containment() {
        let big = Circle::new(Point::new(0.0, 0.0), 5.0);
        let small = Circle::new(Point::new(1.0, 0.0), 2.0);
        let overlapping = Circle::new(Point::new(4.0, 0.0), 3.0);
        assert!(big.contains_circle(&small));
        assert!(!big.contains_circle(&overlapping));
        assert!(!small.contains_circle(&big));
    }

    #[test]
    fn boundary_intersections_counts() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(1.0, 0.0), 1.0);
        let pts = a.boundary_intersections(&b);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!((a.center.distance(p) - 1.0).abs() < 1e-9);
            assert!((b.center.distance(p) - 1.0).abs() < 1e-9);
        }
        // Tangent circles: one intersection.
        let c = Circle::new(Point::new(2.0, 0.0), 1.0);
        assert_eq!(a.boundary_intersections(&c).len(), 1);
        // Disjoint circles: none.
        let d = Circle::new(Point::new(5.0, 0.0), 1.0);
        assert!(a.boundary_intersections(&d).is_empty());
    }

    #[test]
    fn single_disk_covers() {
        let target = Circle::new(Point::new(0.0, 0.0), 1.0);
        let cover = vec![Circle::new(Point::new(0.0, 0.0), 2.0)];
        assert!(disk_covered_by_union(&target, &cover));
    }

    #[test]
    fn uncovered_when_cover_empty_or_far() {
        let target = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(!disk_covered_by_union(&target, &[]));
        let far = vec![Circle::new(Point::new(10.0, 0.0), 1.0)];
        assert!(!disk_covered_by_union(&target, &far));
    }

    #[test]
    fn two_half_covers_do_cover() {
        // Two disks of radius 2 centred at (-1, 0) and (1, 0) cover the unit
        // disk at the origin.
        let target = Circle::new(Point::new(0.0, 0.0), 1.0);
        let cover = vec![
            Circle::new(Point::new(-1.0, 0.0), 2.0),
            Circle::new(Point::new(1.0, 0.0), 2.0),
        ];
        assert!(disk_covered_by_union(&target, &cover));
    }

    #[test]
    fn hole_in_the_middle_is_detected() {
        // Four disks arranged around the target's centre that cover its
        // boundary but leave a hole at the centre.
        let target = Circle::new(Point::new(0.0, 0.0), 2.0);
        let r = 1.9;
        let offset = 2.0;
        let cover = vec![
            Circle::new(Point::new(offset, 0.0), r),
            Circle::new(Point::new(-offset, 0.0), r),
            Circle::new(Point::new(0.0, offset), r),
            Circle::new(Point::new(0.0, -offset), r),
        ];
        // Centre is not covered (distance 2.0 > 1.9), so the union cannot
        // cover the disk.
        assert!(!disk_covered_by_union(&target, &cover));
    }

    #[test]
    fn ring_leaving_interior_hole_detected_via_vertices() {
        // Six disks covering the boundary and the centre of the target but
        // leaving small holes between centre and boundary.
        let target = Circle::new(Point::new(0.0, 0.0), 3.0);
        let mut cover = vec![Circle::new(Point::new(0.0, 0.0), 1.0)];
        for i in 0..6 {
            let ang = i as f64 * PI / 3.0;
            cover.push(Circle::new(
                Point::new(2.6 * ang.cos(), 2.6 * ang.sin()),
                1.1,
            ));
        }
        // The ring disks do not reach the inner disk, leaving an annular gap.
        assert!(!disk_covered_by_union(&target, &cover));
    }

    #[test]
    fn generous_cover_with_many_disks() {
        // A 5x5 grid of unit-radius disks spaced 0.9 apart comfortably covers
        // a disk of radius 1.5 centred in the grid.
        let target = Circle::new(Point::new(0.0, 0.0), 1.5);
        let mut cover = Vec::new();
        for i in -2_i32..=2 {
            for j in -2_i32..=2 {
                cover.push(Circle::new(Point::new(i as f64 * 0.9, j as f64 * 0.9), 1.0));
            }
        }
        assert!(disk_covered_by_union(&target, &cover));
    }

    #[test]
    fn boundary_covered_detects_gap() {
        let target = Circle::new(Point::new(0.0, 0.0), 1.0);
        // A disk covering only the right half of the boundary.
        let cover = vec![Circle::new(Point::new(1.0, 0.0), 1.2)];
        assert!(!target.boundary_covered_by(&cover));
        let full = vec![Circle::new(Point::new(0.0, 0.0), 1.5)];
        assert!(target.boundary_covered_by(&full));
    }

    #[test]
    fn point_target_is_simple_containment() {
        let target = Circle::new(Point::new(0.5, 0.5), 0.0);
        let cover = vec![Circle::new(Point::new(0.0, 0.0), 1.0)];
        assert!(disk_covered_by_union(&target, &cover));
        let miss = vec![Circle::new(Point::new(5.0, 0.0), 1.0)];
        assert!(!disk_covered_by_union(&target, &miss));
    }
}
