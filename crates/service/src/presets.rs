//! Service presets mirroring the real LBS used in the paper's online
//! experiments (§6.1).
//!
//! | preset | paper counterpart | k | returns | restrictions |
//! |--------|-------------------|---|---------|--------------|
//! | [`google_places_like`] | Google Places API | 60 | locations | 50 km max radius |
//! | [`wechat_like`] | WeChat "people nearby" | 50 | rank only | 50 m obfuscation |
//! | [`weibo_like`] | Sina Weibo nearby users | 100 | rank only | 11 km max radius |

use lbs_data::Dataset;

use crate::config::ServiceConfig;
use crate::service::SimulatedLbs;

/// Google-Places-like LR-LBS: top-60 by distance, locations returned, 50 km
/// maximum coverage radius.
pub fn google_places_like(dataset: Dataset) -> SimulatedLbs {
    SimulatedLbs::new(dataset, google_places_config())
}

/// Configuration used by [`google_places_like`].
pub fn google_places_config() -> ServiceConfig {
    ServiceConfig::lr_lbs(60).with_max_radius(50.0)
}

/// WeChat-like LNR-LBS: top-50 nearby users, rank-only answers, 50 m location
/// obfuscation (WeChat rounds positions before ranking, which is what limits
/// localization accuracy in the paper's Figure 21).
pub fn wechat_like(dataset: Dataset) -> SimulatedLbs {
    SimulatedLbs::new(dataset, wechat_config())
}

/// Configuration used by [`wechat_like`].
pub fn wechat_config() -> ServiceConfig {
    ServiceConfig::lnr_lbs(50).with_obfuscation(0.05)
}

/// Sina-Weibo-like LNR-LBS: top-100 nearby users, rank-only answers, 11 km
/// maximum coverage radius.
pub fn weibo_like(dataset: Dataset) -> SimulatedLbs {
    SimulatedLbs::new(dataset, weibo_config())
}

/// Configuration used by [`weibo_like`].
pub fn weibo_config() -> ServiceConfig {
    ServiceConfig::lnr_lbs(100).with_max_radius(11.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LbsBackend;
    use crate::config::ReturnMode;
    use lbs_data::ScenarioBuilder;
    use lbs_geom::Rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(21);
        ScenarioBuilder::uniform_points(200, Rect::from_bounds(0.0, 0.0, 100.0, 100.0))
            .build(&mut rng)
    }

    #[test]
    fn google_preset_matches_paper_parameters() {
        let svc = google_places_like(small_dataset());
        assert_eq!(svc.config().k, 60);
        assert_eq!(svc.config().return_mode, ReturnMode::LocationReturned);
        assert_eq!(svc.config().max_radius, Some(50.0));
    }

    #[test]
    fn wechat_preset_matches_paper_parameters() {
        let svc = wechat_like(small_dataset());
        assert_eq!(svc.config().k, 50);
        assert_eq!(svc.config().return_mode, ReturnMode::RankOnly);
        assert_eq!(svc.config().obfuscation_grid, Some(0.05));
    }

    #[test]
    fn weibo_preset_matches_paper_parameters() {
        let svc = weibo_like(small_dataset());
        assert_eq!(svc.config().k, 100);
        assert_eq!(svc.config().return_mode, ReturnMode::RankOnly);
        assert_eq!(svc.config().max_radius, Some(11.0));
    }

    #[test]
    fn presets_answer_queries() {
        let svc = google_places_like(small_dataset());
        let resp = svc.query(&lbs_geom::Point::new(50.0, 50.0)).unwrap();
        assert!(!resp.results.is_empty());
        assert!(resp.results.len() <= 60);
        let svc = wechat_like(small_dataset());
        let resp = svc.query(&lbs_geom::Point::new(50.0, 50.0)).unwrap();
        assert!(resp.results.iter().all(|r| r.location.is_none()));
    }
}
