//! # lbs-service
//!
//! Location based service simulator: the restrictive public kNN query
//! interfaces the paper's estimators have to work through.
//!
//! The paper distinguishes two interface families:
//!
//! * **LR-LBS** (location returned): Google Maps / Google Places, Bing Maps —
//!   each returned tuple carries its precise coordinates;
//! * **LNR-LBS** (location not returned): WeChat, Sina Weibo — only a ranked
//!   list of tuple ids plus non-location attributes is returned.
//!
//! Both impose interface restrictions that the simulator reproduces:
//!
//! * a **top-k limit** (k = 60 for Google Places, 50 for WeChat, 100 for
//!   Weibo),
//! * a **query budget / rate limit** — the paper's number-one performance
//!   metric is query count, so the simulator meters every call through a
//!   shared [`QueryBudget`],
//! * an optional **maximum radius** beyond which tuples are never returned
//!   (50 km for Google Places, 11 km for Weibo),
//! * an optional non-distance **ranking function** ("prominence"), and
//! * optional **location obfuscation** (WeChat-style snapping of the
//!   positions the ranking is computed from), which is what degrades
//!   localization accuracy in the paper's Figure 21.
//!
//! The entry point is [`SimulatedLbs`], an implementation of the pluggable
//! [`LbsBackend`] trait over an `lbs-data` [`lbs_data::Dataset`] backed by
//! an exact `lbs-index` kNN index. Estimators are generic over
//! [`LbsBackend`], so the simulator can be swapped for — or wrapped in —
//! the composable decorators of [`backend`] ([`RateLimitedBackend`],
//! [`LatencyBackend`], [`TruncatingBackend`]) without touching estimator
//! code. Presets mirroring the real services used in the paper's online
//! experiments are in [`presets`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod budget;
pub mod cache;
mod config;
mod counter;
mod interface;
pub mod presets;
mod service;

pub use backend::{LatencyBackend, LbsBackend, RateLimitedBackend, TruncatingBackend};
pub use budget::QueryBudget;
pub use cache::{backend_fingerprint, AnswerCache, CacheKey, CacheStats, CachingBackend};
pub use config::{IndexKind, Ranking, ReturnMode, ServiceConfig};
pub use counter::QueryCounter;
pub use interface::{PassThroughFilter, QueryError, QueryResponse, ReturnedTuple};
pub use service::SimulatedLbs;

/// Backwards-compatible alias of [`LbsBackend`]'s previous name.
pub use backend::LbsBackend as LbsInterface;
