//! Query budget accounting.
//!
//! Every real LBS rate-limits its interface (Google Maps: 10 000 queries per
//! day, Sina Weibo: 150 per hour). Query count is therefore the paper's
//! primary cost metric, and everything the estimators do is reported against
//! it. [`QueryBudget`] is the shared accountant: the simulator bumps it on
//! every answered query, the estimators read it to know how much they have
//! spent, and an optional hard limit turns exhaustion into an error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counter of issued queries with an optional hard limit.
///
/// Cloning the budget (via [`QueryBudget::share`]) yields a handle to the
/// *same* counter, which is how a filtered view of a service keeps charging
/// the same account as its parent.
#[derive(Debug)]
pub struct QueryBudget {
    issued: AtomicU64,
    limit: Option<u64>,
}

impl QueryBudget {
    /// A budget with no hard limit (callers meter themselves).
    pub fn unlimited() -> Arc<Self> {
        Arc::new(QueryBudget {
            issued: AtomicU64::new(0),
            limit: None,
        })
    }

    /// A budget that refuses queries after `limit` have been issued.
    pub fn with_limit(limit: u64) -> Arc<Self> {
        Arc::new(QueryBudget {
            issued: AtomicU64::new(0),
            limit: Some(limit),
        })
    }

    /// Returns a shared handle to the same underlying counter.
    pub fn share(self: &Arc<Self>) -> Arc<Self> {
        Arc::clone(self)
    }

    /// Number of queries issued so far.
    pub fn issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }

    /// The hard limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Queries still allowed under the hard limit (`u64::MAX` when
    /// unlimited).
    pub fn remaining(&self) -> u64 {
        match self.limit {
            None => u64::MAX,
            Some(l) => l.saturating_sub(self.issued()),
        }
    }

    /// Records one issued query. Returns `false` when the hard limit had
    /// already been reached (in which case nothing is recorded).
    pub fn charge(&self) -> bool {
        loop {
            let cur = self.issued.load(Ordering::Relaxed);
            if let Some(l) = self.limit {
                if cur >= l {
                    return false;
                }
            }
            if self
                .issued
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Atomically charges up to `want` queries and returns how many were
    /// granted (all of `want` when unlimited).
    ///
    /// This is the batch form of [`QueryBudget::charge`] for clients that
    /// admit work in blocks (e.g. rate-limit middleware in front of a real
    /// service); the per-query simulator path and the parallel sample
    /// driver meter one query at a time and do not use it. It never
    /// over-commits: the sum of all grants across threads cannot exceed the
    /// hard limit.
    pub fn charge_up_to(&self, want: u64) -> u64 {
        if want == 0 {
            return 0;
        }
        loop {
            let cur = self.issued.load(Ordering::Relaxed);
            let granted = match self.limit {
                None => want,
                Some(l) => want.min(l.saturating_sub(cur)),
            };
            if granted == 0 {
                return 0;
            }
            if self
                .issued
                .compare_exchange(cur, cur + granted, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return granted;
            }
        }
    }

    /// Resets the counter to zero (used between experiment repetitions).
    pub fn reset(&self) {
        self.issued.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_budget_counts() {
        let b = QueryBudget::unlimited();
        assert_eq!(b.issued(), 0);
        assert!(b.charge());
        assert!(b.charge());
        assert_eq!(b.issued(), 2);
        assert_eq!(b.remaining(), u64::MAX);
        b.reset();
        assert_eq!(b.issued(), 0);
    }

    #[test]
    fn limited_budget_refuses_after_limit() {
        let b = QueryBudget::with_limit(3);
        assert!(b.charge());
        assert!(b.charge());
        assert!(b.charge());
        assert!(!b.charge());
        assert_eq!(b.issued(), 3);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn shared_handles_hit_the_same_counter() {
        let b = QueryBudget::with_limit(10);
        let b2 = b.share();
        for _ in 0..6 {
            assert!(b.charge());
        }
        assert_eq!(b2.issued(), 6);
        assert_eq!(b2.remaining(), 4);
    }

    #[test]
    fn concurrent_charges_never_exceed_limit() {
        let b = QueryBudget::with_limit(1000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.share();
            handles.push(thread::spawn(move || {
                let mut ok = 0u64;
                for _ in 0..500 {
                    if b.charge() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(b.issued(), 1000);
    }

    #[test]
    fn charge_up_to_grants_batches_exactly() {
        let b = QueryBudget::with_limit(10);
        assert_eq!(b.charge_up_to(0), 0);
        assert_eq!(b.charge_up_to(4), 4);
        assert_eq!(b.charge_up_to(4), 4);
        // Only 2 left: partial grant, then nothing.
        assert_eq!(b.charge_up_to(4), 2);
        assert_eq!(b.charge_up_to(1), 0);
        assert_eq!(b.issued(), 10);

        let unlimited = QueryBudget::unlimited();
        assert_eq!(unlimited.charge_up_to(1_000_000), 1_000_000);
    }

    #[test]
    fn concurrent_batch_draws_never_over_commit() {
        // Mixed single and batch draws from many threads: the grand total of
        // granted queries must equal the limit exactly — no query lost, none
        // granted twice.
        let b = QueryBudget::with_limit(10_000);
        let mut handles = Vec::new();
        for worker in 0..8u64 {
            let b = b.share();
            handles.push(thread::spawn(move || {
                let mut granted = 0u64;
                for i in 0..2_000u64 {
                    if (worker + i) % 3 == 0 {
                        granted += b.charge_up_to(1 + (i % 7));
                    } else if b.charge() {
                        granted += 1;
                    }
                }
                granted
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10_000);
        assert_eq!(b.issued(), 10_000);
        assert_eq!(b.remaining(), 0);
    }
}
