//! Per-scope query metering.
//!
//! The parallel sample driver in `lbs-core` needs to know how many queries
//! *one sample* issued, independently of what every other worker thread is
//! doing to the shared [`crate::QueryBudget`] at the same time. Reading the
//! global `queries_issued()` counter before and after a sample only works
//! single-threaded; [`QueryCounter`] instead wraps the service reference
//! handed to one sample and counts locally.

use std::sync::atomic::{AtomicU64, Ordering};

use lbs_geom::{Point, Rect};

use crate::backend::LbsBackend;
use crate::config::ServiceConfig;
use crate::interface::{QueryError, QueryResponse};

/// A transparent [`LbsBackend`] view that counts the successful queries
/// issued through it.
///
/// Failed queries (hard budget limit hit) are not counted, matching the
/// budget semantics of [`crate::QueryBudget::charge`]: a refused query costs
/// nothing.
///
/// ```
/// use lbs_data::{Dataset, Tuple};
/// use lbs_geom::{Point, Rect};
/// use lbs_service::{LbsBackend, QueryCounter, ServiceConfig, SimulatedLbs};
///
/// let dataset = Dataset::new(
///     vec![Tuple::new(0, Point::new(1.0, 1.0))],
///     Rect::from_bounds(0.0, 0.0, 10.0, 10.0),
/// );
/// let service = SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(1));
/// let view = QueryCounter::new(&service);
/// view.query(&Point::new(2.0, 2.0)).unwrap();
/// view.query(&Point::new(3.0, 3.0)).unwrap();
/// assert_eq!(view.taken(), 2);
/// assert_eq!(service.queries_issued(), 2); // the global account agrees
/// ```
pub struct QueryCounter<'a, S: LbsBackend + ?Sized> {
    inner: &'a S,
    taken: AtomicU64,
}

impl<'a, S: LbsBackend + ?Sized> QueryCounter<'a, S> {
    /// Wraps a service reference with a fresh local counter.
    pub fn new(inner: &'a S) -> Self {
        QueryCounter {
            inner,
            taken: AtomicU64::new(0),
        }
    }

    /// Successful queries issued through this view.
    pub fn taken(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }

    /// The wrapped service.
    pub fn inner(&self) -> &'a S {
        self.inner
    }
}

impl<S: LbsBackend + ?Sized> LbsBackend for QueryCounter<'_, S> {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        let response = self.inner.query(location);
        if response.is_ok() {
            self.taken.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    fn config(&self) -> &ServiceConfig {
        self.inner.config()
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn bbox(&self) -> Rect {
        self.inner.bbox()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SimulatedLbs;
    use lbs_data::{Dataset, Tuple};

    fn tiny_service(limit: Option<u64>) -> SimulatedLbs {
        let tuples = vec![
            Tuple::new(0, Point::new(2.0, 2.0)),
            Tuple::new(1, Point::new(8.0, 8.0)),
        ];
        let dataset = Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 10.0, 10.0));
        let mut config = ServiceConfig::lr_lbs(1);
        if let Some(l) = limit {
            config = config.with_query_limit(l);
        }
        SimulatedLbs::new(dataset, config)
    }

    #[test]
    fn counts_only_successful_queries() {
        let service = tiny_service(Some(2));
        let view = QueryCounter::new(&service);
        assert!(view.query(&Point::new(1.0, 1.0)).is_ok());
        assert!(view.query(&Point::new(1.0, 1.0)).is_ok());
        assert!(view.query(&Point::new(1.0, 1.0)).is_err());
        assert_eq!(view.taken(), 2);
        assert_eq!(view.queries_issued(), 2);
    }

    #[test]
    fn delegates_config_and_bbox() {
        let service = tiny_service(None);
        let view = QueryCounter::new(&service);
        assert_eq!(view.config().k, service.config().k);
        assert_eq!(view.bbox(), service.bbox());
        assert_eq!(view.inner().queries_issued(), 0);
    }

    #[test]
    fn nested_counters_compose() {
        let service = tiny_service(None);
        let outer = QueryCounter::new(&service);
        {
            let inner = QueryCounter::new(&outer);
            inner.query(&Point::new(1.0, 1.0)).unwrap();
            assert_eq!(inner.taken(), 1);
        }
        outer.query(&Point::new(1.0, 1.0)).unwrap();
        assert_eq!(outer.taken(), 2);
        assert_eq!(service.queries_issued(), 2);
    }
}
