//! The pluggable LBS backend trait and its composable decorators.
//!
//! Everything the estimators in `lbs-core` know about a location based
//! service is captured by the [`LbsBackend`] trait: issue a point query, get
//! back at most `k` ranked tuples (with or without locations), pay one unit
//! of query budget. Aggregation code never touches an underlying dataset
//! directly — that is the whole premise of the paper — and it never names a
//! concrete backend type, so the in-process [`crate::SimulatedLbs`], a
//! decorated view of it, or an out-of-process adapter are interchangeable.
//!
//! The decorators model adversarial service behaviours the paper's online
//! experiments had to cope with, without touching estimator code:
//!
//! * [`RateLimitedBackend`] — pauses after every burst of queries, the shape
//!   of a per-minute API quota. Answers are bit-identical to the inner
//!   backend's; only wall-clock time changes.
//! * [`LatencyBackend`] — injects a fixed per-query latency, the shape of a
//!   slow remote endpoint. Also answer-preserving.
//! * [`TruncatingBackend`] — deterministically truncates every n-th answer
//!   to fewer tuples, the shape of a flaky service that occasionally returns
//!   short pages. This one *does* change answers: it exists to measure how
//!   gracefully estimators degrade, not to preserve their output.
//!
//! Decorators nest freely (`RateLimitedBackend<TruncatingBackend<...>>`)
//! because each one implements [`LbsBackend`] over any inner [`LbsBackend`].
//!
//! A fourth decorator lives in [`crate::cache`]: [`crate::CachingBackend`],
//! the shared, versioned answer cache. Its composition order with
//! [`RateLimitedBackend`] is semantic — cache outside the limiter answers
//! hits without consuming rate-limit budget, cache inside meters every call
//! through the throttle — so the scenario layer requires an explicit
//! `cache_order` whenever both are present, and rejects combining the cache
//! with [`TruncatingBackend`] outright (caching ordinal-keyed truncated
//! answers would replay a degraded page to every later query).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lbs_geom::{Point, Rect};

use crate::config::ServiceConfig;
use crate::interface::{QueryError, QueryResponse};

/// The restrictive public query interface of a location based service.
///
/// Previously named `LbsInterface`; that name remains available as an alias
/// (`lbs_service::LbsInterface`) for existing code.
pub trait LbsBackend: Send + Sync {
    /// Issues a kNN point query at `location` and returns the ranked answer.
    ///
    /// Every call — regardless of how useful its answer turns out to be —
    /// consumes one unit of the service's query budget, mirroring the
    /// rate-limited reality the paper optimises for.
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError>;

    /// The interface configuration (k, return mode, restrictions).
    fn config(&self) -> &ServiceConfig;

    /// Number of queries issued so far (across all views sharing the budget).
    fn queries_issued(&self) -> u64;

    /// The bounding box of the service's region of interest.
    fn bbox(&self) -> Rect;
}

/// A shared reference to a backend is itself a backend, so decorators can
/// wrap long-lived services without taking ownership.
impl<S: LbsBackend + ?Sized> LbsBackend for &S {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        (**self).query(location)
    }

    fn config(&self) -> &ServiceConfig {
        (**self).config()
    }

    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }

    fn bbox(&self) -> Rect {
        (**self).bbox()
    }
}

/// Boxed backends compose too — this is what lets a scenario file assemble
/// an arbitrary decorator stack at runtime (`Box<dyn LbsBackend>`).
impl<S: LbsBackend + ?Sized> LbsBackend for Box<S> {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        (**self).query(location)
    }

    fn config(&self) -> &ServiceConfig {
        (**self).config()
    }

    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }

    fn bbox(&self) -> Rect {
        (**self).bbox()
    }
}

/// Shared-ownership backends compose too — this is what lets a stratified
/// session hand every per-stratum child its own handle to one service (and
/// one shared query ledger).
impl<S: LbsBackend + ?Sized> LbsBackend for std::sync::Arc<S> {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        (**self).query(location)
    }

    fn config(&self) -> &ServiceConfig {
        (**self).config()
    }

    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }

    fn bbox(&self) -> Rect {
        (**self).bbox()
    }
}

/// Decorator pausing after every burst of queries — the shape of a
/// queries-per-minute API quota.
///
/// Results are bit-identical to the inner backend's: the decorator only
/// spends wall-clock time, which is what makes it safe to wrap under any
/// estimator without changing its estimates.
pub struct RateLimitedBackend<B> {
    inner: B,
    burst: u64,
    pause: Duration,
    issued: AtomicU64,
}

impl<B: LbsBackend> RateLimitedBackend<B> {
    /// Pauses for `pause` after every `burst` queries (`burst == 0` disables
    /// the throttle, leaving a transparent wrapper).
    pub fn new(inner: B, burst: u64, pause: Duration) -> Self {
        RateLimitedBackend {
            inner,
            burst,
            pause,
            issued: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Queries issued through this decorator (not the shared global ledger).
    pub fn throttled_queries(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }
}

impl<B: LbsBackend> LbsBackend for RateLimitedBackend<B> {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        let n = self.issued.fetch_add(1, Ordering::Relaxed) + 1;
        if self.burst > 0 && n % self.burst == 0 && !self.pause.is_zero() {
            std::thread::sleep(self.pause);
        }
        self.inner.query(location)
    }

    fn config(&self) -> &ServiceConfig {
        self.inner.config()
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn bbox(&self) -> Rect {
        self.inner.bbox()
    }
}

/// Decorator injecting a fixed latency before every query — the shape of a
/// slow remote endpoint. Answer-preserving, like [`RateLimitedBackend`].
pub struct LatencyBackend<B> {
    inner: B,
    latency: Duration,
}

impl<B: LbsBackend> LatencyBackend<B> {
    /// Sleeps for `latency` before forwarding each query.
    pub fn new(inner: B, latency: Duration) -> Self {
        LatencyBackend { inner, latency }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: LbsBackend> LbsBackend for LatencyBackend<B> {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.inner.query(location)
    }

    fn config(&self) -> &ServiceConfig {
        self.inner.config()
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn bbox(&self) -> Rect {
        self.inner.bbox()
    }
}

/// Decorator truncating every `every`-th answer to at most `keep` tuples —
/// the shape of a flaky service that occasionally returns short pages.
///
/// Truncation is keyed to the decorator's own query ordinal, so a
/// single-threaded run is perfectly reproducible; under a multi-threaded
/// driver the *set* of truncated ordinals is fixed but their assignment to
/// samples depends on scheduling. Unlike the answer-preserving decorators,
/// this one deliberately degrades answers to probe estimator robustness.
pub struct TruncatingBackend<B> {
    inner: B,
    every: u64,
    keep: usize,
    issued: AtomicU64,
}

impl<B: LbsBackend> TruncatingBackend<B> {
    /// Truncates query number `every`, `2*every`, … to at most `keep`
    /// tuples (`every == 0` disables truncation).
    pub fn new(inner: B, every: u64, keep: usize) -> Self {
        TruncatingBackend {
            inner,
            every,
            keep,
            issued: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: LbsBackend> LbsBackend for TruncatingBackend<B> {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        let n = self.issued.fetch_add(1, Ordering::Relaxed) + 1;
        let mut response = self.inner.query(location)?;
        if self.every > 0 && n % self.every == 0 {
            response.results.truncate(self.keep);
        }
        Ok(response)
    }

    fn config(&self) -> &ServiceConfig {
        self.inner.config()
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn bbox(&self) -> Rect {
        self.inner.bbox()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use crate::service::SimulatedLbs;
    use lbs_data::{Dataset, Tuple};

    fn service(k: usize) -> SimulatedLbs {
        let tuples = (0..6)
            .map(|id| Tuple::new(id, Point::new(1.0 + id as f64, 1.0)))
            .collect();
        let dataset = Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 10.0, 10.0));
        SimulatedLbs::new(dataset, ServiceConfig::lr_lbs(k))
    }

    #[test]
    fn rate_limiter_preserves_answers_and_counts() {
        let svc = service(3);
        let limited = RateLimitedBackend::new(&svc, 2, Duration::from_millis(1));
        let q = Point::new(1.5, 1.0);
        let direct = svc.query(&q).unwrap();
        let through = limited.query(&q).unwrap();
        assert_eq!(direct, through);
        assert_eq!(limited.throttled_queries(), 1);
        assert_eq!(limited.queries_issued(), 2); // global ledger saw both
        assert_eq!(limited.config().k, 3);
        assert_eq!(limited.bbox(), svc.bbox());
    }

    #[test]
    fn latency_backend_preserves_answers() {
        let svc = service(2);
        let slow = LatencyBackend::new(&svc, Duration::from_millis(1));
        let q = Point::new(3.0, 1.0);
        assert_eq!(svc.query(&q).unwrap(), slow.query(&q).unwrap());
        assert_eq!(slow.inner().queries_issued(), 2);
    }

    #[test]
    fn truncating_backend_shortens_every_nth_answer() {
        let svc = service(5);
        let flaky = TruncatingBackend::new(&svc, 3, 1);
        let q = Point::new(1.0, 1.0);
        let full = flaky.query(&q).unwrap();
        assert_eq!(full.results.len(), 5);
        let full2 = flaky.query(&q).unwrap();
        assert_eq!(full2.results.len(), 5);
        let short = flaky.query(&q).unwrap(); // query #3: truncated
        assert_eq!(short.results.len(), 1);
        assert_eq!(short.results[0].id, full.results[0].id);
        let full3 = flaky.query(&q).unwrap();
        assert_eq!(full3.results.len(), 5);
    }

    #[test]
    fn decorators_nest() {
        let svc = service(4);
        let stack = RateLimitedBackend::new(
            TruncatingBackend::new(&svc, 2, 2),
            3,
            Duration::from_millis(1),
        );
        let q = Point::new(2.0, 1.0);
        assert_eq!(stack.query(&q).unwrap().results.len(), 4);
        assert_eq!(stack.query(&q).unwrap().results.len(), 2); // truncated
        assert_eq!(stack.query(&q).unwrap().results.len(), 4);
        assert_eq!(svc.queries_issued(), 3);
    }

    #[test]
    fn decorated_backends_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RateLimitedBackend<SimulatedLbs>>();
        assert_send_sync::<LatencyBackend<SimulatedLbs>>();
        assert_send_sync::<TruncatingBackend<SimulatedLbs>>();
        assert_send_sync::<RateLimitedBackend<&SimulatedLbs>>();
    }
}
