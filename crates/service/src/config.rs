//! Service configuration: what the simulated interface returns and which
//! restrictions it enforces.

use serde::{Deserialize, Serialize};

/// Whether the interface returns tuple locations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReturnMode {
    /// LR-LBS: precise tuple locations (and distances) are returned.
    LocationReturned,
    /// LNR-LBS: only a ranked list of tuple ids and non-location attributes.
    RankOnly,
}

/// Which spatial index backend the simulator answers kNN queries from.
///
/// Every backend returns *exact* results in the same canonical
/// `(distance, id)` order (see `lbs-index`), so the choice changes query
/// latency only — estimates are bit-identical across backends, which is
/// locked by an equivalence test in `lbs-index`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Uniform bucket grid with ring-expansion search (the default; best for
    /// the roughly-uniform urban clusters of the experiment datasets).
    #[default]
    Grid,
    /// Median-split k-d tree with branch-and-bound search (better for very
    /// skewed data).
    KdTree,
    /// The `O(n)` linear scan (correctness oracle; fine for small
    /// databases).
    Brute,
}

/// Ranking function applied to candidate tuples.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Ranking {
    /// Pure Euclidean distance from the query location (the paper's default).
    Distance,
    /// "Prominence" ranking à la Google Places (§5.3): the score mixes
    /// distance with a static popularity attribute. A tuple's score is
    /// `distance - weight * prominence`; lower scores rank higher.
    Prominence {
        /// How many kilometres of distance one unit of prominence is worth.
        weight: f64,
    },
}

/// Full configuration of a simulated LBS interface.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Maximum number of tuples returned per query (the top-k limit).
    pub k: usize,
    /// Whether locations are returned.
    pub return_mode: ReturnMode,
    /// Maximum distance (km) at which tuples can be returned; `None` means
    /// unlimited coverage.
    pub max_radius: Option<f64>,
    /// Ranking function.
    pub ranking: Ranking,
    /// Location obfuscation: tuple positions are snapped to a grid of this
    /// cell size (km) before ranking, mimicking WeChat's privacy measures.
    /// `None` disables obfuscation.
    pub obfuscation_grid: Option<f64>,
    /// Hard limit on the number of queries the interface will answer;
    /// `None` means unlimited (offline experiments meter budgets themselves).
    pub query_limit: Option<u64>,
    /// Spatial index backend answering the kNN queries. Answer-preserving:
    /// every backend is exact, so this only trades build/query time.
    pub index: IndexKind,
}

impl ServiceConfig {
    /// A location-returned interface with distance ranking and no
    /// restrictions beyond the top-k limit.
    pub fn lr_lbs(k: usize) -> Self {
        ServiceConfig {
            k,
            return_mode: ReturnMode::LocationReturned,
            max_radius: None,
            ranking: Ranking::Distance,
            obfuscation_grid: None,
            query_limit: None,
            index: IndexKind::default(),
        }
    }

    /// A rank-only interface with distance ranking and no restrictions beyond
    /// the top-k limit.
    pub fn lnr_lbs(k: usize) -> Self {
        ServiceConfig {
            k,
            return_mode: ReturnMode::RankOnly,
            max_radius: None,
            ranking: Ranking::Distance,
            obfuscation_grid: None,
            query_limit: None,
            index: IndexKind::default(),
        }
    }

    /// Sets the maximum coverage radius.
    pub fn with_max_radius(mut self, radius_km: f64) -> Self {
        self.max_radius = Some(radius_km);
        self
    }

    /// Sets the ranking function.
    pub fn with_ranking(mut self, ranking: Ranking) -> Self {
        self.ranking = ranking;
        self
    }

    /// Enables location obfuscation with the given grid size.
    pub fn with_obfuscation(mut self, grid_km: f64) -> Self {
        self.obfuscation_grid = Some(grid_km);
        self
    }

    /// Sets a hard query limit.
    pub fn with_query_limit(mut self, limit: u64) -> Self {
        self.query_limit = Some(limit);
        self
    }

    /// Selects the spatial index backend.
    pub fn with_index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_modes() {
        let lr = ServiceConfig::lr_lbs(60);
        assert_eq!(lr.k, 60);
        assert_eq!(lr.return_mode, ReturnMode::LocationReturned);
        assert!(lr.max_radius.is_none());
        let lnr = ServiceConfig::lnr_lbs(50);
        assert_eq!(lnr.return_mode, ReturnMode::RankOnly);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = ServiceConfig::lnr_lbs(100)
            .with_max_radius(11.0)
            .with_obfuscation(0.05)
            .with_query_limit(150)
            .with_ranking(Ranking::Prominence { weight: 2.0 });
        assert_eq!(cfg.max_radius, Some(11.0));
        assert_eq!(cfg.obfuscation_grid, Some(0.05));
        assert_eq!(cfg.query_limit, Some(150));
        assert!(matches!(cfg.ranking, Ranking::Prominence { weight } if weight == 2.0));
    }
}
