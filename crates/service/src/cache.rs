//! Shared, versioned kNN answer cache at the [`LbsBackend`] boundary.
//!
//! In the paper's cost model the scarce resource is *service queries*: every
//! estimator pays per kNN call, and a multi-tenant server re-asks the same
//! `(query point, k)` questions across jobs on the same dataset. The
//! [`CachingBackend`] decorator converts that repeated service cost into
//! memory, the same move an inference stack makes with a KV cache.
//!
//! # Key schema
//!
//! A cached answer is keyed by `(version, x_bits, y_bits, k)`:
//!
//! * `version` — the [`backend_fingerprint`]: the dataset's content
//!   fingerprint mixed with the answer-affecting parts of the
//!   [`ServiceConfig`]. Tenants that differ only in answer-preserving knobs
//!   (index backend, query limit) share cached answers; any difference that
//!   could change an answer keys a disjoint space.
//! * `x_bits`, `y_bits` — the query point's coordinates as *canonical*
//!   IEEE-754 bits: `-0.0` keys like `+0.0` and every NaN payload keys
//!   alike, so numerically-equal points always share an entry. Keys are
//!   built exclusively by [`CacheKey::for_query`]; the `cache-key-float`
//!   lint rule keeps ad-hoc float-to-bits conversions out of keying code.
//! * `k` — the top-k limit the query was answered under.
//!
//! # Metering semantics
//!
//! [`SimulatedLbs`] charges its ledger inside `query`, so a cache hit that
//! short-circuits the service must decide what the hit costs. Both modes are
//! deterministic; the mode is fixed per run:
//!
//! * **Metered hits** (the default): every hit charges the service ledger
//!   exactly like a real query, including returning the same
//!   [`QueryError::BudgetExhausted`] at the limit. Cached runs are
//!   bit-identical to uncached runs in estimates, traces, *and* the ledger.
//! * **Unmetered hits**: hits cost nothing; the ledger advances only on
//!   misses. Single-flight population makes the miss count equal the number
//!   of distinct keys regardless of thread interleaving, so the ledger is
//!   still reproducible — it just (intentionally) no longer matches the
//!   uncached run.
//!
//! # Invalidation
//!
//! Mutating a dataset changes its fingerprint, so a rebuilt backend keys a
//! fresh space and stale hits are structurally impossible. To keep still-
//! valid answers warm across a mutation, [`AnswerCache::apply_insert`] /
//! [`AnswerCache::apply_delete`] migrate entries from the old version to the
//! new one, dropping exactly the entries the mutation could affect:
//!
//! * every entry stores a **security-radius certificate** — under distance
//!   ranking, an insert strictly farther from the query point than the k-th
//!   result's distance cannot displace any member (the same bound the cell
//!   engine's security radius is built on);
//! * a delete can only change an answer it was a member of (distance
//!   ranking; prominence ranking re-scores a distance-truncated candidate
//!   pool, so there every delete invalidates);
//! * when no certificate bounds the mutation (prominence ranking,
//!   obfuscated ranking locations, under-full answers without a coverage
//!   radius) the entry is dropped — [`AnswerCache::flush`] is the wholesale
//!   fallback.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use lbs_data::{Dataset, TupleId};
use lbs_geom::{Point, Rect};

use crate::backend::LbsBackend;
use crate::budget::QueryBudget;
use crate::config::{Ranking, ReturnMode, ServiceConfig};
use crate::interface::{QueryError, QueryResponse};
use crate::service::SimulatedLbs;

/// All NaN payloads collapse to this single canonical bit pattern.
const CANONICAL_NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// Canonical bit pattern of an `f64` coordinate for keying: `-0.0` maps to
/// `+0.0` and every NaN maps to one pattern, so a key never depends on how a
/// numerically-equal coordinate was computed.
fn canonical_bits(value: f64) -> u64 {
    if value == 0.0 {
        0
    } else if value.is_nan() {
        CANONICAL_NAN_BITS
    } else {
        value.to_bits()
    }
}

/// One splitmix64-style round combining `value` into the accumulator `acc`.
fn mix(acc: u64, value: u64) -> u64 {
    let mut x = acc ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The version stamp cache keys carry: the dataset content fingerprint mixed
/// with the answer-affecting parts of the service configuration.
///
/// `index` is excluded because every index backend returns identical answers
/// (locked by an equivalence test in `lbs-index`), and `query_limit` is
/// excluded because it only affects the ledger — backends differing in just
/// those share cached answers.
pub fn backend_fingerprint(dataset: &Dataset, config: &ServiceConfig) -> u64 {
    let mut h = mix(0x616e_7377_6572_6b65, dataset.fingerprint());
    h = mix(h, config.k as u64);
    h = mix(
        h,
        match config.return_mode {
            ReturnMode::LocationReturned => 1,
            ReturnMode::RankOnly => 2,
        },
    );
    h = match config.max_radius {
        None => mix(h, 3),
        Some(r) => mix(mix(h, 4), canonical_bits(r)),
    };
    h = match config.ranking {
        Ranking::Distance => mix(h, 5),
        Ranking::Prominence { weight } => mix(mix(h, 6), canonical_bits(weight)),
    };
    match config.obfuscation_grid {
        None => mix(h, 7),
        Some(g) => mix(mix(h, 8), canonical_bits(g)),
    }
}

/// Key of one cached kNN answer: backend version fingerprint, canonicalized
/// query-point bits, and the top-k limit.
///
/// Keys are only built through [`CacheKey::for_query`] — the single place
/// raw `f64` bits are canonicalized — so entries can never diverge between
/// numerically-equal query points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    version: u64,
    x_bits: u64,
    y_bits: u64,
    k: u64,
}

impl CacheKey {
    /// The canonical key for a query at `location` against a backend whose
    /// [`backend_fingerprint`] is `version`.
    pub fn for_query(version: u64, location: &Point, k: usize) -> Self {
        CacheKey {
            version,
            x_bits: canonical_bits(location.x),
            y_bits: canonical_bits(location.y),
            k: k as u64,
        }
    }

    /// The backend version fingerprint this key belongs to.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// The query point the key was built from (exact for finite
    /// coordinates; canonical for NaN).
    fn query_point(&self) -> Point {
        Point::new(f64::from_bits(self.x_bits), f64::from_bits(self.y_bits))
    }

    /// The smallest key of a version, for range scans.
    fn version_floor(version: u64) -> Self {
        CacheKey {
            version,
            x_bits: 0,
            y_bits: 0,
            k: 0,
        }
    }
}

/// One cached answer plus the certificates bounding which mutations can
/// invalidate it.
#[derive(Clone, Debug)]
struct CachedAnswer {
    response: QueryResponse,
    /// An insert strictly farther than this from the query point cannot
    /// change the answer; `INFINITY` means any insert may (no certificate).
    insert_bound: f64,
    /// When `true`, a delete only affects the answer if the deleted id is a
    /// member; `false` (prominence ranking) makes every delete invalidating.
    delete_by_membership: bool,
}

impl CachedAnswer {
    fn certified(response: QueryResponse, config: &ServiceConfig) -> Self {
        let distance_ranked = matches!(config.ranking, Ranking::Distance);
        let insert_bound = if !distance_ranked || config.obfuscation_grid.is_some() {
            // Prominence can promote a far insert over near members, and
            // obfuscation ranks by snapped positions the certificate does
            // not see: no bound.
            f64::INFINITY
        } else if response.results.len() < config.k {
            // Under-full answer: any insert inside the coverage radius can
            // surface in it.
            config.max_radius.unwrap_or(f64::INFINITY)
        } else {
            // Full answer: the k-th distance is the security radius — an
            // insert strictly beyond it cannot displace any member.
            // Rank-only answers carry no distances; fall back to "always".
            response
                .results
                .last()
                .and_then(|r| r.distance)
                .unwrap_or(f64::INFINITY)
        };
        CachedAnswer {
            response,
            insert_bound,
            delete_by_membership: distance_ranked,
        }
    }
}

enum Slot {
    /// A leader thread is computing the answer; other threads wait on the
    /// condvar instead of issuing a duplicate (and double-charged) query.
    InFlight,
    Ready(CachedAnswer),
}

enum Lookup {
    Hit(QueryResponse),
    Lead,
}

/// Point-in-time counters of an [`AnswerCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that went to the inner backend. Single-flight population
    /// means concurrent lookups of one missing key count a single miss; the
    /// rest wait and count hits.
    pub misses: u64,
    /// Entries dropped because a mutation could have changed their answer.
    pub invalidations: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (hits plus misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }

    /// Adds another snapshot into this one — how per-repetition private
    /// caches are summed into a run total.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
    }
}

/// A concurrent, versioned kNN answer cache shared by any number of
/// [`CachingBackend`] views — across repetitions, sessions, and tenants.
///
/// Population is single-flight: concurrent lookups of one missing key elect
/// a leader that queries the inner backend once while the rest wait on a
/// condvar, so the miss count (and, with unmetered hits, the ledger) equals
/// the number of distinct keys regardless of thread interleaving.
///
/// Mutation invalidation must not race live queries: apply
/// [`AnswerCache::apply_insert`] / [`AnswerCache::apply_delete`] /
/// [`AnswerCache::flush`] between runs, not while sessions are stepping.
pub struct AnswerCache {
    slots: Mutex<BTreeMap<CacheKey, Slot>>,
    filled: Condvar,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl AnswerCache {
    /// An unbounded shared cache.
    pub fn unbounded() -> Arc<Self> {
        Arc::new(Self::build(None))
    }

    /// A cache holding at most `capacity` ready entries; beyond that, the
    /// smallest key is evicted first (deterministic given identical
    /// contents). A capacity of zero still admits the entry being filled.
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Self::build(Some(capacity)))
    }

    fn build(capacity: Option<usize>) -> Self {
        AnswerCache {
            slots: Mutex::new(BTreeMap::new()),
            filled: Condvar::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Another handle to the same cache (alias of `Arc::clone`, mirroring
    /// [`QueryBudget::share`]).
    pub fn share(self: &Arc<Self>) -> Arc<Self> {
        Arc::clone(self)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of ready (answer-holding) entries.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("cache lock poisoned")
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// `true` when no ready entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup_or_lead(&self, key: &CacheKey) -> Lookup {
        let mut slots = self.slots.lock().expect("cache lock poisoned");
        loop {
            match slots.get(key) {
                Some(Slot::Ready(answer)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit(answer.response.clone());
                }
                Some(Slot::InFlight) => {
                    slots = self.filled.wait(slots).expect("cache lock poisoned");
                }
                None => {
                    slots.insert(*key, Slot::InFlight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Lead;
                }
            }
        }
    }

    fn fill(&self, key: CacheKey, answer: CachedAnswer) {
        let mut slots = self.slots.lock().expect("cache lock poisoned");
        if let Some(capacity) = self.capacity {
            loop {
                let ready = slots
                    .values()
                    .filter(|s| matches!(s, Slot::Ready(_)))
                    .count();
                if ready < capacity {
                    break;
                }
                let victim = slots
                    .iter()
                    .find_map(|(k, slot)| matches!(slot, Slot::Ready(_)).then_some(*k));
                match victim {
                    Some(victim) => {
                        slots.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        slots.insert(key, Slot::Ready(answer));
        drop(slots);
        self.filled.notify_all();
    }

    fn abandon(&self, key: &CacheKey) {
        let mut slots = self.slots.lock().expect("cache lock poisoned");
        if matches!(slots.get(key), Some(Slot::InFlight)) {
            slots.remove(key);
        }
        drop(slots);
        self.filled.notify_all();
    }

    /// Migrates entries from `old_version` to `new_version` after inserting
    /// a tuple at `location`, dropping every entry whose security-radius
    /// certificate cannot rule out a changed answer.
    pub fn apply_insert(&self, old_version: u64, new_version: u64, location: &Point) {
        self.migrate(old_version, new_version, |key, answer| {
            // Keep only entries the new tuple provably cannot reach; the
            // negated form also drops entries with NaN distances.
            location.distance(&key.query_point()) > answer.insert_bound
        });
    }

    /// Migrates entries from `old_version` to `new_version` after deleting
    /// tuple `id`, dropping every entry the delete could affect.
    pub fn apply_delete(&self, old_version: u64, new_version: u64, id: TupleId) {
        self.migrate(old_version, new_version, |_, answer| {
            answer.delete_by_membership && answer.response.results.iter().all(|r| r.id != id)
        });
    }

    /// Drops every ready entry (counted as invalidations) — the wholesale
    /// fallback when no certificate bounds a mutation's reach.
    pub fn flush(&self) {
        let mut slots = self.slots.lock().expect("cache lock poisoned");
        let before = slots.len();
        slots.retain(|_, slot| matches!(slot, Slot::InFlight));
        let dropped = (before - slots.len()) as u64;
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    fn migrate<F>(&self, old_version: u64, new_version: u64, keep: F)
    where
        F: Fn(&CacheKey, &CachedAnswer) -> bool,
    {
        if old_version == new_version {
            return;
        }
        let mut slots = self.slots.lock().expect("cache lock poisoned");
        let upper = match old_version.checked_add(1) {
            Some(next) => Bound::Excluded(CacheKey::version_floor(next)),
            None => Bound::Unbounded,
        };
        let keys: Vec<CacheKey> = slots
            .range((Bound::Included(CacheKey::version_floor(old_version)), upper))
            .filter(|(_, slot)| matches!(slot, Slot::Ready(_)))
            .map(|(k, _)| *k)
            .collect();
        let mut dropped = 0u64;
        for key in keys {
            let Some(Slot::Ready(answer)) = slots.remove(&key) else {
                continue;
            };
            if keep(&key, &answer) {
                slots.insert(key.with_version(new_version), Slot::Ready(answer));
            } else {
                dropped += 1;
            }
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }
}

/// Answer-caching decorator: a versioned memo of the inner backend's kNN
/// answers, shareable across sessions and tenants via a common
/// [`AnswerCache`].
///
/// See the [module docs](self) for the key schema, metering semantics, and
/// invalidation story. Composition order with
/// [`crate::RateLimitedBackend`] is semantic, not cosmetic:
/// `CachingBackend<RateLimitedBackend<_>>` answers hits without consuming
/// rate-limit budget, while `RateLimitedBackend<CachingBackend<_>>` meters
/// every call through the throttle. The scenario layer refuses to guess —
/// it requires an explicit `cache_order` when both decorators are present.
pub struct CachingBackend<B> {
    inner: B,
    cache: Arc<AnswerCache>,
    ledger: Arc<QueryBudget>,
    hits_metered: bool,
    version: u64,
}

impl<B: LbsBackend> CachingBackend<B> {
    /// Wraps `inner` with an answer cache.
    ///
    /// `ledger` must be the service ledger at the bottom of the stack (what
    /// [`SimulatedLbs::budget`] exposes): with `hits_metered` set, every hit
    /// charges it exactly like a real query. `version` keys the entries —
    /// use [`backend_fingerprint`] of the dataset and config behind `inner`.
    pub fn new(
        inner: B,
        cache: Arc<AnswerCache>,
        ledger: Arc<QueryBudget>,
        hits_metered: bool,
        version: u64,
    ) -> Self {
        CachingBackend {
            inner,
            cache,
            ledger,
            hits_metered,
            version,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The shared answer cache.
    pub fn cache(&self) -> &Arc<AnswerCache> {
        &self.cache
    }

    /// The version fingerprint this view keys its entries under.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether cache hits charge the service ledger.
    pub fn hits_metered(&self) -> bool {
        self.hits_metered
    }
}

impl CachingBackend<SimulatedLbs> {
    /// Wraps a concrete simulator, deriving the ledger (the simulator's own
    /// budget) and the version fingerprint automatically.
    pub fn over_service(
        service: SimulatedLbs,
        cache: Arc<AnswerCache>,
        hits_metered: bool,
    ) -> Self {
        let ledger = service.budget().share();
        let version = backend_fingerprint(service.dataset(), service.config());
        CachingBackend::new(service, cache, ledger, hits_metered, version)
    }
}

impl<B: LbsBackend> LbsBackend for CachingBackend<B> {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        let key = CacheKey::for_query(self.version, location, self.inner.config().k);
        match self.cache.lookup_or_lead(&key) {
            Lookup::Hit(response) => {
                if self.hits_metered && !self.ledger.charge() {
                    return Err(QueryError::BudgetExhausted {
                        issued: self.ledger.issued(),
                        limit: self.ledger.limit().unwrap_or(u64::MAX),
                    });
                }
                Ok(response)
            }
            Lookup::Lead => match self.inner.query(location) {
                Ok(response) => {
                    self.cache.fill(
                        key,
                        CachedAnswer::certified(response.clone(), self.inner.config()),
                    );
                    Ok(response)
                }
                Err(e) => {
                    // Errors are not cached: release the in-flight slot so
                    // waiters retry (and observe the same exhausted ledger).
                    self.cache.abandon(&key);
                    Err(e)
                }
            },
        }
    }

    fn config(&self) -> &ServiceConfig {
        self.inner.config()
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn bbox(&self) -> Rect {
        self.inner.bbox()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RateLimitedBackend;
    use crate::config::ServiceConfig;
    use crate::service::SimulatedLbs;
    use lbs_data::{Dataset, Tuple};
    use std::time::Duration;

    fn dataset() -> Dataset {
        let tuples = (0..6)
            .map(|id| Tuple::new(id, Point::new(1.0 + id as f64, 1.0)))
            .collect();
        Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 10.0, 10.0))
    }

    fn service(k: usize, limit: Option<u64>) -> SimulatedLbs {
        let mut config = ServiceConfig::lr_lbs(k);
        if let Some(l) = limit {
            config = config.with_query_limit(l);
        }
        SimulatedLbs::new(dataset(), config)
    }

    #[test]
    fn keys_canonicalize_float_bits() {
        let zero = CacheKey::for_query(7, &Point::new(0.0, 1.0), 3);
        let neg_zero = CacheKey::for_query(7, &Point::new(-0.0, 1.0), 3);
        assert_eq!(zero, neg_zero);
        let nan_a = CacheKey::for_query(7, &Point::new(f64::NAN, 1.0), 3);
        let nan_b = CacheKey::for_query(7, &Point::new(-f64::NAN, 1.0), 3);
        assert_eq!(nan_a, nan_b);
        assert_ne!(zero, CacheKey::for_query(7, &Point::new(0.0, 2.0), 3));
        assert_ne!(zero, CacheKey::for_query(8, &Point::new(0.0, 1.0), 3));
        assert_ne!(zero, CacheKey::for_query(7, &Point::new(0.0, 1.0), 4));
    }

    #[test]
    fn fingerprint_ignores_answer_preserving_knobs() {
        let d = dataset();
        let base = ServiceConfig::lr_lbs(3);
        let fp = backend_fingerprint(&d, &base);
        assert_eq!(
            fp,
            backend_fingerprint(&d, &base.clone().with_query_limit(10))
        );
        assert_eq!(
            fp,
            backend_fingerprint(&d, &base.clone().with_index(crate::IndexKind::Brute))
        );
        assert_ne!(fp, backend_fingerprint(&d, &ServiceConfig::lr_lbs(4)));
        assert_ne!(
            fp,
            backend_fingerprint(&d, &base.clone().with_max_radius(2.0))
        );
        assert_ne!(fp, backend_fingerprint(&d, &ServiceConfig::lnr_lbs(3)));
    }

    #[test]
    fn hits_return_bit_identical_answers() {
        let svc = service(3, None);
        let cache = AnswerCache::unbounded();
        let cached = CachingBackend::over_service(svc.clone(), cache.share(), true);
        let q = Point::new(1.4, 1.0);
        let miss = cached.query(&q).unwrap();
        let hit = cached.query(&q).unwrap();
        assert_eq!(miss, hit);
        assert_eq!(hit, svc.query(&q).unwrap());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn metered_hits_charge_the_ledger_like_queries() {
        let q = Point::new(1.4, 1.0);
        // Reference: an uncached service with the same hard limit.
        let plain = service(3, Some(2));
        plain.query(&q).unwrap();
        plain.query(&q).unwrap();
        let plain_err = plain.query(&q).unwrap_err();

        let svc = service(3, Some(2));
        let cache = AnswerCache::unbounded();
        let cached = CachingBackend::over_service(svc, cache, true);
        cached.query(&q).unwrap(); // miss, charges 1
        cached.query(&q).unwrap(); // hit, charges 1
        assert_eq!(cached.queries_issued(), 2);
        assert_eq!(cached.query(&q).unwrap_err(), plain_err);
    }

    #[test]
    fn unmetered_hits_are_free() {
        let svc = service(3, Some(1));
        let cache = AnswerCache::unbounded();
        let cached = CachingBackend::over_service(svc, cache.share(), false);
        let q = Point::new(1.4, 1.0);
        cached.query(&q).unwrap();
        cached.query(&q).unwrap();
        cached.query(&q).unwrap();
        assert_eq!(cached.queries_issued(), 1);
        assert_eq!(cache.stats().hits, 2);
        // A distinct point is a real query and hits the hard limit.
        assert!(cached.query(&Point::new(2.2, 1.0)).is_err());
    }

    #[test]
    fn insert_outside_the_security_radius_keeps_entries_warm() {
        let mut d = dataset();
        let config = ServiceConfig::lr_lbs(2);
        let cache = AnswerCache::unbounded();
        let v1 = CachingBackend::over_service(
            SimulatedLbs::new(d.clone(), config.clone()),
            cache.share(),
            true,
        );
        let q = Point::new(1.2, 1.0);
        let before = v1.query(&q).unwrap();

        // Far insert: certificate keeps the entry across the version bump.
        d.insert(Tuple::new(100, Point::new(9.5, 9.5)));
        let v2 = CachingBackend::over_service(
            SimulatedLbs::new(d.clone(), config.clone()),
            cache.share(),
            true,
        );
        cache.apply_insert(v1.version(), v2.version(), &Point::new(9.5, 9.5));
        assert_eq!(cache.stats().invalidations, 0);
        let after = v2.query(&q).unwrap();
        assert_eq!(before, after);
        assert_eq!(cache.stats().hits, 1, "migrated entry served the hit");

        // Near insert (closer than the k-th distance): entry dropped, and
        // the fresh answer contains the new tuple.
        d.insert(Tuple::new(101, Point::new(1.2, 1.0)));
        let v3 = CachingBackend::over_service(
            SimulatedLbs::new(d.clone(), config.clone()),
            cache.share(),
            true,
        );
        cache.apply_insert(v2.version(), v3.version(), &Point::new(1.2, 1.0));
        assert_eq!(cache.stats().invalidations, 1);
        let fresh = v3.query(&q).unwrap();
        assert_eq!(fresh.results[0].id, 101);
    }

    #[test]
    fn delete_invalidates_exactly_member_entries() {
        let d = dataset();
        let config = ServiceConfig::lr_lbs(2);
        let cache = AnswerCache::unbounded();
        let v1 = CachingBackend::over_service(
            SimulatedLbs::new(d.clone(), config.clone()),
            cache.share(),
            true,
        );
        // Entry A's members are ids {0, 1}; entry B's are ids {4, 5}.
        let qa = Point::new(1.2, 1.0);
        let qb = Point::new(6.2, 1.0);
        v1.query(&qa).unwrap();
        v1.query(&qb).unwrap();
        assert_eq!(cache.len(), 2);

        let mut d2 = d.clone();
        d2.remove(5).unwrap();
        let v2 = CachingBackend::over_service(SimulatedLbs::new(d2, config), cache.share(), true);
        cache.apply_delete(v1.version(), v2.version(), 5);
        assert_eq!(cache.len(), 1, "only the member entry is dropped");
        assert_eq!(cache.stats().invalidations, 1);
        let a = v2.query(&qa).unwrap();
        assert_eq!(a.results[0].id, 0);
        assert_eq!(cache.stats().hits, 1, "entry A survived the delete");
        // Entry B re-queries and now sees id 3 promoted into the top-2.
        let b = v2.query(&qb).unwrap();
        assert!(b.results.iter().any(|r| r.id == 3));
    }

    #[test]
    fn prominence_ranking_has_no_certificate() {
        let d = dataset();
        let config = ServiceConfig::lr_lbs(2).with_ranking(Ranking::Prominence { weight: 1.0 });
        let cache = AnswerCache::unbounded();
        let v1 = CachingBackend::over_service(
            SimulatedLbs::new(d.clone(), config.clone()),
            cache.share(),
            true,
        );
        v1.query(&Point::new(1.2, 1.0)).unwrap();
        // Even a far insert invalidates: no bound is sound under prominence.
        let mut d2 = d;
        d2.insert(Tuple::new(100, Point::new(9.5, 9.5)));
        let v2 = CachingBackend::over_service(SimulatedLbs::new(d2, config), cache.share(), true);
        cache.apply_insert(v1.version(), v2.version(), &Point::new(9.5, 9.5));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn flush_drops_everything() {
        let cached = CachingBackend::over_service(service(3, None), AnswerCache::unbounded(), true);
        cached.query(&Point::new(1.2, 1.0)).unwrap();
        cached.query(&Point::new(2.2, 1.0)).unwrap();
        cached.cache().flush();
        assert!(cached.cache().is_empty());
        assert_eq!(cached.cache().stats().invalidations, 2);
    }

    #[test]
    fn capacity_evicts_deterministically() {
        let cached =
            CachingBackend::over_service(service(3, None), AnswerCache::with_capacity(2), true);
        for x in [1, 2, 3, 4] {
            cached.query(&Point::new(x as f64, 1.0)).unwrap();
        }
        let stats = cached.cache().stats();
        assert_eq!(cached.cache().len(), 2);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.misses, 4);
    }

    // Satellite: the two lawful compositions with a rate limiter, and their
    // differing metering of cache hits (documented in the struct docs).
    #[test]
    fn cache_outside_the_rate_limit_answers_hits_without_throttle_budget() {
        let svc = service(3, None);
        let ledger = svc.budget().share();
        let version = backend_fingerprint(svc.dataset(), svc.config());
        let limited = RateLimitedBackend::new(svc, 5, Duration::from_millis(0));
        let cached = CachingBackend::new(limited, AnswerCache::unbounded(), ledger, true, version);
        let q = Point::new(1.4, 1.0);
        cached.query(&q).unwrap();
        cached.query(&q).unwrap(); // hit: never reaches the limiter
        assert_eq!(cached.inner().throttled_queries(), 1);
        assert_eq!(cached.queries_issued(), 2, "metered hit still charged");
    }

    #[test]
    fn cache_inside_the_rate_limit_meters_every_call() {
        let svc = service(3, None);
        let cached = CachingBackend::over_service(svc, AnswerCache::unbounded(), true);
        let limited = RateLimitedBackend::new(cached, 5, Duration::from_millis(0));
        let q = Point::new(1.4, 1.0);
        limited.query(&q).unwrap();
        limited.query(&q).unwrap(); // hit, but the limiter saw the call
        assert_eq!(limited.throttled_queries(), 2);
        assert_eq!(limited.inner().cache().stats().hits, 1);
    }

    #[test]
    fn single_flight_counts_one_miss_per_distinct_key() {
        let svc = service(3, None);
        let cache = AnswerCache::unbounded();
        let cached = CachingBackend::over_service(svc, cache.share(), false);
        let q = Point::new(1.4, 1.0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        cached.query(&q).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 31);
        assert_eq!(cached.queries_issued(), 1, "unmetered: one real query");
    }

    #[test]
    fn caching_backend_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CachingBackend<SimulatedLbs>>();
        assert_send_sync::<CachingBackend<RateLimitedBackend<SimulatedLbs>>>();
        assert_send_sync::<Arc<AnswerCache>>();
    }
}
