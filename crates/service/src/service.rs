//! The simulated location based service.
//!
//! [`SimulatedLbs`] wraps an `lbs-data` [`Dataset`] behind the
//! [`LbsBackend`] trait: it ranks tuples by the configured ranking
//! function, truncates to the top-k, enforces the maximum-radius restriction,
//! strips locations for LNR configurations, applies WeChat-style location
//! obfuscation, and charges every answered query to a shared [`QueryBudget`].
//!
//! Pass-through selection conditions (paper §5.1) are modelled with
//! [`SimulatedLbs::filtered`]: the returned view answers kNN queries over the
//! matching subset of tuples only — exactly what appending `NAME =
//! 'STARBUCKS'` to a Google Places query does — while continuing to charge
//! the same budget.

use std::collections::BTreeMap;
use std::sync::Arc;

use lbs_data::{Dataset, Tuple, TupleId};
use lbs_geom::{Point, Rect};
use lbs_index::{BruteForceIndex, GridIndex, KdTree, SpatialIndex};

use crate::backend::LbsBackend;
use crate::budget::QueryBudget;
use crate::config::{IndexKind, Ranking, ReturnMode, ServiceConfig};
use crate::interface::{PassThroughFilter, QueryError, QueryResponse, ReturnedTuple};

/// A simulated LBS over a synthetic dataset.
#[derive(Clone)]
pub struct SimulatedLbs {
    dataset: Arc<Dataset>,
    /// Tuple ids in index order (positions in `index` map to these ids).
    ids: Arc<Vec<TupleId>>,
    /// Positions (ranking locations, possibly obfuscated) in index order.
    ranking_locations: Arc<Vec<Point>>,
    index: Arc<dyn SpatialIndex>,
    config: ServiceConfig,
    budget: Arc<QueryBudget>,
}

impl SimulatedLbs {
    /// Creates a service over the full dataset.
    pub fn new(dataset: Dataset, config: ServiceConfig) -> Self {
        let budget = match config.query_limit {
            Some(l) => QueryBudget::with_limit(l),
            None => QueryBudget::unlimited(),
        };
        Self::with_budget(Arc::new(dataset), config, budget)
    }

    /// Creates a service over a shared dataset charging an existing budget.
    pub fn with_budget(
        dataset: Arc<Dataset>,
        config: ServiceConfig,
        budget: Arc<QueryBudget>,
    ) -> Self {
        let tuples: Vec<&Tuple> = dataset.tuples().iter().collect();
        Self::build(dataset.clone(), &tuples, config, budget)
    }

    fn build(
        dataset: Arc<Dataset>,
        tuples: &[&Tuple],
        config: ServiceConfig,
        budget: Arc<QueryBudget>,
    ) -> Self {
        let ids: Vec<TupleId> = tuples.iter().map(|t| t.id).collect();
        let ranking_locations: Vec<Point> = tuples
            .iter()
            .map(|t| match config.obfuscation_grid {
                Some(grid) if grid > 0.0 => obfuscate(&t.location, grid),
                _ => t.location,
            })
            .collect();
        // Every backend is exact with the same canonical result order, so
        // the choice is answer-preserving (locked by an equivalence test in
        // `lbs-index`).
        let index: Arc<dyn SpatialIndex> = match config.index {
            IndexKind::Grid => Arc::new(GridIndex::build(&ranking_locations)),
            IndexKind::KdTree => Arc::new(KdTree::build(&ranking_locations)),
            IndexKind::Brute => Arc::new(BruteForceIndex::build(&ranking_locations)),
        };
        SimulatedLbs {
            dataset,
            ids: Arc::new(ids),
            ranking_locations: Arc::new(ranking_locations),
            index,
            config,
            budget,
        }
    }

    /// A view of this service restricted to tuples matching `filter`,
    /// charging the same query budget.
    ///
    /// This models pass-through selection conditions: the real interface
    /// would apply the keyword filter server-side before ranking, so the kNN
    /// semantics of the view are "k nearest *matching* tuples".
    pub fn filtered(&self, filter: &PassThroughFilter) -> SimulatedLbs {
        let tuples: Vec<&Tuple> = self
            .dataset
            .tuples()
            .iter()
            .filter(|t| filter.matches(t))
            .collect();
        Self::build(
            self.dataset.clone(),
            &tuples,
            self.config.clone(),
            self.budget.share(),
        )
    }

    /// The underlying dataset (ground truth — used only by the experiment
    /// harness, never by the estimators).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The shared query budget.
    pub fn budget(&self) -> &Arc<QueryBudget> {
        &self.budget
    }

    /// Number of tuples visible through this (possibly filtered) view.
    pub fn visible_tuples(&self) -> usize {
        self.ids.len()
    }

    /// The true location of a tuple, ignoring obfuscation. Used by the
    /// localization-accuracy experiment (Figure 21) to measure the error of
    /// inferred positions; estimators must not call this.
    pub fn true_location(&self, id: TupleId) -> Option<Point> {
        self.dataset.get(id).map(|t| t.location)
    }

    fn candidate_count(&self) -> usize {
        // Enough candidates to fill the answer even after the radius filter.
        self.config.k
    }

    fn score_and_rank(&self, location: &Point) -> Vec<(usize, f64)> {
        // `pos` is the position within the index/ids arrays, not the tuple id.
        match self.config.ranking {
            Ranking::Distance => self
                .index
                .k_nearest(location, self.candidate_count())
                .into_iter()
                .map(|n| (n.id, n.distance))
                .collect(),
            Ranking::Prominence { weight } => {
                // Pull a generous candidate pool by distance, then re-rank by
                // the mixed score. Real services compute the score over the
                // whole database; a pool of 4k candidates approximates that
                // closely because prominence can only promote tuples by a
                // bounded amount of distance (`weight` km per unit).
                let pool = self.index.k_nearest(location, (self.config.k * 4).max(32));
                let mut scored: Vec<(usize, f64)> = pool
                    .into_iter()
                    .map(|n| {
                        let id = self.ids[n.id];
                        let prominence = self
                            .dataset
                            .get(id)
                            .and_then(|t| t.num(lbs_data::attrs::PROMINENCE))
                            .unwrap_or(0.0);
                        (n.id, n.distance - weight * prominence)
                    })
                    .collect();
                // `total_cmp` keeps the sort total even when a prominence
                // attribute is NaN (NaN scores sink to the end instead of
                // panicking), and the tuple-id tie-break makes the ranking of
                // co-located / equidistant tuples deterministic.
                scored.sort_by(|a, b| {
                    a.1.total_cmp(&b.1)
                        .then_with(|| self.ids[a.0].cmp(&self.ids[b.0]))
                });
                scored.truncate(self.config.k);
                scored
            }
        }
    }
}

/// Snaps a location to the centre of an obfuscation grid cell.
fn obfuscate(p: &Point, grid: f64) -> Point {
    Point::new(
        (p.x / grid).floor() * grid + grid * 0.5,
        (p.y / grid).floor() * grid + grid * 0.5,
    )
}

impl LbsBackend for SimulatedLbs {
    fn query(&self, location: &Point) -> Result<QueryResponse, QueryError> {
        if !self.budget.charge() {
            return Err(QueryError::BudgetExhausted {
                issued: self.budget.issued(),
                limit: self.budget.limit().unwrap_or(u64::MAX),
            });
        }

        let ranked = self.score_and_rank(location);
        let mut results = Vec::with_capacity(ranked.len());
        for (rank0, (pos, _score)) in ranked.into_iter().enumerate() {
            let id = self.ids[pos];
            let ranking_loc = self.ranking_locations[pos];
            let distance = location.distance(&ranking_loc);
            // The maximum-radius restriction applies to the distance the
            // service itself computes (i.e. over ranking locations).
            if let Some(max_r) = self.config.max_radius {
                if distance > max_r {
                    continue;
                }
            }
            let tuple = self
                .dataset
                .get(id)
                .expect("indexed tuple must exist in the dataset");
            let attributes: BTreeMap<String, lbs_data::AttrValue> = tuple.attributes.clone();
            let (loc_out, dist_out) = match self.config.return_mode {
                ReturnMode::LocationReturned => (Some(ranking_loc), Some(distance)),
                ReturnMode::RankOnly => (None, None),
            };
            results.push(ReturnedTuple {
                id,
                rank: rank0 + 1,
                location: loc_out,
                distance: dist_out,
                attributes,
            });
        }
        // Re-number ranks after the radius filter so they stay contiguous.
        for (i, r) in results.iter_mut().enumerate() {
            r.rank = i + 1;
        }
        Ok(QueryResponse { results })
    }

    fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn queries_issued(&self) -> u64 {
        self.budget.issued()
    }

    fn bbox(&self) -> Rect {
        self.dataset.bbox()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_data::attrs;
    use lbs_geom::Rect;

    fn toy_dataset() -> Dataset {
        // A 3x3 lattice of POIs spaced 10 km apart, ids 0..9 row-major.
        let mut tuples = Vec::new();
        for j in 0..3 {
            for i in 0..3 {
                let id = (j * 3 + i) as TupleId;
                let category = if id % 2 == 0 { "restaurant" } else { "school" };
                tuples.push(
                    Tuple::new(
                        id,
                        Point::new(10.0 + i as f64 * 10.0, 10.0 + j as f64 * 10.0),
                    )
                    .with_attr(attrs::CATEGORY, category)
                    .with_attr(attrs::PROMINENCE, (id as f64) / 10.0),
                );
            }
        }
        Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 40.0, 40.0))
    }

    #[test]
    fn lr_query_returns_locations_and_distances() {
        let svc = SimulatedLbs::new(toy_dataset(), ServiceConfig::lr_lbs(3));
        let resp = svc.query(&Point::new(11.0, 11.0)).unwrap();
        assert_eq!(resp.results.len(), 3);
        let top = resp.top().unwrap();
        assert_eq!(top.id, 0);
        assert!(top.location.is_some());
        assert!((top.distance.unwrap() - 2.0_f64.sqrt()).abs() < 1e-9);
        assert_eq!(resp.results[0].rank, 1);
        assert_eq!(resp.results[1].rank, 2);
        assert_eq!(svc.queries_issued(), 1);
    }

    #[test]
    fn lnr_query_strips_locations() {
        let svc = SimulatedLbs::new(toy_dataset(), ServiceConfig::lnr_lbs(5));
        let resp = svc.query(&Point::new(11.0, 11.0)).unwrap();
        assert_eq!(resp.results.len(), 5);
        for r in &resp.results {
            assert!(r.location.is_none());
            assert!(r.distance.is_none());
            // Non-location attributes are still there.
            assert!(r.text(attrs::CATEGORY).is_some());
        }
        assert_eq!(resp.top().unwrap().id, 0);
    }

    #[test]
    fn ranking_is_by_distance() {
        let svc = SimulatedLbs::new(toy_dataset(), ServiceConfig::lr_lbs(9));
        let resp = svc.query(&Point::new(20.0, 20.0)).unwrap();
        // Centre tuple (id 4) is nearest.
        assert_eq!(resp.top().unwrap().id, 4);
        // Distances are non-decreasing.
        let dists: Vec<f64> = resp.results.iter().map(|r| r.distance.unwrap()).collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn max_radius_filters_far_tuples() {
        let cfg = ServiceConfig::lr_lbs(9).with_max_radius(12.0);
        let svc = SimulatedLbs::new(toy_dataset(), cfg);
        let resp = svc.query(&Point::new(10.0, 10.0)).unwrap();
        for r in &resp.results {
            assert!(r.distance.unwrap() <= 12.0);
        }
        assert!(resp.results.len() < 9);
        // A query in the far corner of an empty area returns nothing.
        let empty = svc.query(&Point::new(0.0, 40.0)).unwrap();
        assert!(empty.results.len() <= 1);
    }

    #[test]
    fn budget_limit_is_enforced() {
        let cfg = ServiceConfig::lr_lbs(1).with_query_limit(2);
        let svc = SimulatedLbs::new(toy_dataset(), cfg);
        assert!(svc.query(&Point::new(10.0, 10.0)).is_ok());
        assert!(svc.query(&Point::new(10.0, 10.0)).is_ok());
        let err = svc.query(&Point::new(10.0, 10.0)).unwrap_err();
        assert!(matches!(err, QueryError::BudgetExhausted { limit: 2, .. }));
        assert_eq!(svc.queries_issued(), 2);
    }

    #[test]
    fn filtered_view_restricts_candidates_and_shares_budget() {
        let svc = SimulatedLbs::new(toy_dataset(), ServiceConfig::lr_lbs(4));
        let filter = PassThroughFilter::equals(attrs::CATEGORY, "school");
        let schools = svc.filtered(&filter);
        assert_eq!(schools.visible_tuples(), 4); // ids 1,3,5,7
        let resp = schools.query(&Point::new(11.0, 11.0)).unwrap();
        for r in &resp.results {
            assert!(r.text(attrs::CATEGORY).unwrap() == "school");
        }
        // Nearest school to (11,11) is id 1 at (20,10) or id 3 at (10,20) —
        // id 1 wins the tie-break? Both at distance sqrt(81+1)=sqrt(82).
        assert!(resp.top().unwrap().id == 1 || resp.top().unwrap().id == 3);
        // The filtered view charged the same budget as the parent.
        assert_eq!(svc.queries_issued(), 1);
        let _ = svc.query(&Point::new(5.0, 5.0)).unwrap();
        assert_eq!(schools.queries_issued(), 2);
    }

    #[test]
    fn prominence_ranking_can_reorder() {
        // Tuple 8 (prominence 0.8) should beat nearer, less prominent tuples
        // when the weight is large.
        let cfg = ServiceConfig::lr_lbs(3).with_ranking(Ranking::Prominence { weight: 100.0 });
        let svc = SimulatedLbs::new(toy_dataset(), cfg);
        let resp = svc.query(&Point::new(11.0, 11.0)).unwrap();
        assert_eq!(resp.top().unwrap().id, 8);
        // With weight 0 the ordering is by pure distance again.
        let cfg0 = ServiceConfig::lr_lbs(3).with_ranking(Ranking::Prominence { weight: 0.0 });
        let svc0 = SimulatedLbs::new(toy_dataset(), cfg0);
        assert_eq!(
            svc0.query(&Point::new(11.0, 11.0))
                .unwrap()
                .top()
                .unwrap()
                .id,
            0
        );
    }

    #[test]
    fn co_located_tuples_rank_deterministically_by_id() {
        // Five tuples stacked on the same point (plus one distinct) used to
        // hit the `partial_cmp().unwrap()` ranking with genuinely tied
        // scores, where the sort order was implementation-defined. The
        // (score, id) tie-break must rank duplicates by tuple id, for both
        // ranking functions.
        let stack = Point::new(10.0, 10.0);
        let mut tuples: Vec<Tuple> = (0..5)
            .map(|id| {
                Tuple::new(id as TupleId, stack)
                    .with_attr(attrs::CATEGORY, "cafe")
                    .with_attr(attrs::PROMINENCE, 0.5)
            })
            .collect();
        tuples.push(Tuple::new(5, Point::new(30.0, 30.0)).with_attr(attrs::PROMINENCE, 0.5));
        let dataset = Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 40.0, 40.0));

        for ranking in [Ranking::Distance, Ranking::Prominence { weight: 1.0 }] {
            let cfg = ServiceConfig::lr_lbs(5).with_ranking(ranking);
            let svc = SimulatedLbs::new(dataset.clone(), cfg);
            let resp = svc.query(&Point::new(11.0, 11.0)).unwrap();
            let ids: Vec<TupleId> = resp.results.iter().map(|r| r.id).collect();
            assert_eq!(ids, vec![0, 1, 2, 3, 4], "ranking {ranking:?}");
        }
    }

    #[test]
    fn nan_prominence_cannot_panic_the_ranking() {
        // A tuple with a NaN prominence attribute produces a NaN score under
        // prominence ranking; `total_cmp` must sink it to the end of the
        // ranking instead of panicking (the old `partial_cmp().unwrap()`
        // aborted the whole service on this input).
        let tuples = vec![
            Tuple::new(0, Point::new(10.0, 10.0)).with_attr(attrs::PROMINENCE, f64::NAN),
            Tuple::new(1, Point::new(20.0, 10.0)).with_attr(attrs::PROMINENCE, 0.2),
            Tuple::new(2, Point::new(30.0, 10.0)).with_attr(attrs::PROMINENCE, 0.1),
        ];
        let dataset = Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 40.0, 40.0));
        let cfg = ServiceConfig::lr_lbs(3).with_ranking(Ranking::Prominence { weight: 1.0 });
        let svc = SimulatedLbs::new(dataset, cfg);
        let resp = svc.query(&Point::new(10.0, 10.0)).unwrap();
        assert_eq!(resp.results.len(), 3);
        // NaN ranks last; the finite scores keep their relative order.
        assert_eq!(resp.results.last().unwrap().id, 0);
    }

    #[test]
    fn obfuscation_moves_reported_locations_but_keeps_truth() {
        let cfg = ServiceConfig::lr_lbs(1).with_obfuscation(7.0);
        let svc = SimulatedLbs::new(toy_dataset(), cfg);
        let resp = svc.query(&Point::new(10.0, 10.0)).unwrap();
        let reported = resp.top().unwrap().location.unwrap();
        let truth = svc.true_location(resp.top().unwrap().id).unwrap();
        assert!(!reported.approx_eq(&truth));
        assert!(reported.distance(&truth) <= 7.0 * std::f64::consts::SQRT_2 / 2.0 + 1e-9);
    }

    #[test]
    fn k_larger_than_database_returns_all() {
        let svc = SimulatedLbs::new(toy_dataset(), ServiceConfig::lr_lbs(100));
        let resp = svc.query(&Point::new(20.0, 20.0)).unwrap();
        assert_eq!(resp.results.len(), 9);
    }

    #[test]
    fn simulated_lbs_is_send_and_sync() {
        // The parallel sample driver shares one `&SimulatedLbs` across all
        // worker threads; keep that a compile-time guarantee.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimulatedLbs>();
    }

    #[test]
    fn concurrent_queries_respect_the_hard_limit_on_every_thread() {
        // Eight threads hammer a service with a hard limit of 500 queries.
        // The atomic budget must (a) answer exactly 500 queries in total
        // across all threads, and (b) surface exhaustion as a QueryError on
        // *every* thread — each worker keeps probing after its first error
        // and must never see another success.
        let limit = 500u64;
        let svc = SimulatedLbs::new(
            toy_dataset(),
            ServiceConfig::lr_lbs(3).with_query_limit(limit),
        );
        let (total_ok, exhausted_threads) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..8u64 {
                let svc = &svc;
                handles.push(scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut saw_exhaustion = false;
                    // More probes than the whole limit, so even a thread that
                    // runs alone is guaranteed to hit exhaustion.
                    for i in 0..600u64 {
                        let p = Point::new((worker * 7 + i) as f64 % 40.0, (i * 3) as f64 % 40.0);
                        match svc.query(&p) {
                            Ok(_) => {
                                assert!(
                                    !saw_exhaustion,
                                    "a query succeeded after the budget was exhausted"
                                );
                                ok += 1;
                            }
                            Err(QueryError::BudgetExhausted { limit: l, .. }) => {
                                assert_eq!(l, limit);
                                saw_exhaustion = true;
                            }
                        }
                    }
                    (ok, saw_exhaustion)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0u64, 0usize), |(total, threads), (ok, saw)| {
                    (total + ok, threads + usize::from(saw))
                })
        });
        assert_eq!(total_ok, limit, "exactly `limit` queries may be answered");
        assert_eq!(svc.queries_issued(), limit);
        assert_eq!(
            exhausted_threads, 8,
            "every thread must observe BudgetExhausted"
        );
    }
}
