//! Query/response value types of the kNN interface.
//!
//! The trait the estimators program against lives in [`crate::backend`]
//! ([`crate::LbsBackend`]); this module holds the data that flows through
//! it: [`QueryResponse`] / [`ReturnedTuple`] answers, [`QueryError`], and
//! the [`PassThroughFilter`] modelling server-side selection conditions.

use std::collections::BTreeMap;

use lbs_data::{AttrValue, TupleId};
use lbs_geom::Point;

/// One tuple of a query answer.
#[derive(Clone, Debug, PartialEq)]
pub struct ReturnedTuple {
    /// Identifier of the tuple (always returned, also by LNR-LBS).
    pub id: TupleId,
    /// 1-based rank of the tuple within the answer (1 = nearest under the
    /// service's ranking function).
    pub rank: usize,
    /// Location of the tuple — `Some` only for LR-LBS interfaces.
    pub location: Option<Point>,
    /// Distance from the query location — `Some` only for LR-LBS interfaces.
    pub distance: Option<f64>,
    /// Non-location attributes returned alongside the tuple (name, rating,
    /// gender, …).
    pub attributes: BTreeMap<String, AttrValue>,
}

impl ReturnedTuple {
    /// Numeric attribute helper (mirrors [`lbs_data::Tuple::num`]).
    pub fn num(&self, name: &str) -> Option<f64> {
        self.attributes.get(name).and_then(AttrValue::as_f64)
    }

    /// Text attribute helper.
    pub fn text(&self, name: &str) -> Option<&str> {
        self.attributes.get(name).and_then(AttrValue::as_str)
    }

    /// Boolean attribute helper.
    pub fn flag(&self, name: &str) -> Option<bool> {
        self.attributes.get(name).and_then(AttrValue::as_bool)
    }
}

/// A complete answer to one kNN point query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResponse {
    /// The returned tuples, ordered by rank (best first). May be empty when
    /// a maximum-radius restriction filtered everything out.
    pub results: Vec<ReturnedTuple>,
}

impl QueryResponse {
    /// The top-ranked tuple, if any.
    pub fn top(&self) -> Option<&ReturnedTuple> {
        self.results.first()
    }

    /// `true` when the answer contains the given tuple id.
    pub fn contains(&self, id: TupleId) -> bool {
        self.results.iter().any(|r| r.id == id)
    }

    /// The rank (1-based) of the given tuple id within the answer.
    pub fn rank_of(&self, id: TupleId) -> Option<usize> {
        self.results.iter().find(|r| r.id == id).map(|r| r.rank)
    }
}

/// Errors a query can fail with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The service's hard query limit has been exhausted.
    BudgetExhausted {
        /// Queries already issued.
        issued: u64,
        /// The hard limit that was hit.
        limit: u64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BudgetExhausted { issued, limit } => {
                write!(f, "query budget exhausted: {issued} issued, limit {limit}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A selection condition that can be "passed through" to the LBS, i.e.
/// appended to every query the estimator issues (paper §5.1, first scenario).
///
/// Real services support keyword or category filters; the simulator models
/// them as conjunctions of case-insensitive text-equality conditions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassThroughFilter {
    /// Attribute-name / required-value pairs, all of which must match.
    pub conditions: Vec<(String, String)>,
}

impl PassThroughFilter {
    /// A filter with a single condition.
    pub fn equals(attr: &str, value: &str) -> Self {
        PassThroughFilter {
            conditions: vec![(attr.to_string(), value.to_string())],
        }
    }

    /// Adds another condition.
    pub fn and(mut self, attr: &str, value: &str) -> Self {
        self.conditions.push((attr.to_string(), value.to_string()));
        self
    }

    /// `true` when the tuple satisfies every condition.
    pub fn matches(&self, tuple: &lbs_data::Tuple) -> bool {
        self.conditions
            .iter()
            .all(|(attr, value)| tuple.text_eq(attr, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_data::{attrs, Tuple};

    #[test]
    fn response_helpers() {
        let resp = QueryResponse {
            results: vec![
                ReturnedTuple {
                    id: 5,
                    rank: 1,
                    location: Some(Point::new(1.0, 1.0)),
                    distance: Some(0.5),
                    attributes: BTreeMap::new(),
                },
                ReturnedTuple {
                    id: 9,
                    rank: 2,
                    location: None,
                    distance: None,
                    attributes: BTreeMap::new(),
                },
            ],
        };
        assert_eq!(resp.top().unwrap().id, 5);
        assert!(resp.contains(9));
        assert!(!resp.contains(7));
        assert_eq!(resp.rank_of(9), Some(2));
        assert_eq!(resp.rank_of(7), None);
    }

    #[test]
    fn returned_tuple_attribute_helpers() {
        let mut attrs_map = BTreeMap::new();
        attrs_map.insert(attrs::RATING.to_string(), AttrValue::Float(4.5));
        attrs_map.insert(attrs::GENDER.to_string(), AttrValue::Text("female".into()));
        attrs_map.insert(attrs::OPEN_SUNDAY.to_string(), AttrValue::Bool(true));
        let r = ReturnedTuple {
            id: 1,
            rank: 1,
            location: None,
            distance: None,
            attributes: attrs_map,
        };
        assert_eq!(r.num(attrs::RATING), Some(4.5));
        assert_eq!(r.text(attrs::GENDER), Some("female"));
        assert_eq!(r.flag(attrs::OPEN_SUNDAY), Some(true));
        assert!(r.num("missing").is_none());
    }

    #[test]
    fn pass_through_filter_matches_conjunction() {
        let t = Tuple::new(0, Point::ORIGIN)
            .with_attr(attrs::CATEGORY, "cafe")
            .with_attr(attrs::BRAND, "Starbucks");
        let f = PassThroughFilter::equals(attrs::BRAND, "starbucks");
        assert!(f.matches(&t));
        let f2 = f.clone().and(attrs::CATEGORY, "cafe");
        assert!(f2.matches(&t));
        let f3 = f2.and(attrs::CATEGORY, "restaurant");
        assert!(!f3.matches(&t));
        assert!(PassThroughFilter::default().matches(&t));
    }

    #[test]
    fn query_error_displays() {
        let e = QueryError::BudgetExhausted {
            issued: 100,
            limit: 100,
        };
        assert!(e.to_string().contains("100"));
    }
}
