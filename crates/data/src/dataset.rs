//! The hidden database: a collection of tuples plus its bounding box.
//!
//! A [`Dataset`] is what an LBS holds behind its kNN interface. The
//! estimators never see it directly — they only interact with the
//! `lbs-service` interface — but the experiment harness uses it to compute
//! ground-truth aggregates and relative errors, and the simulator is built
//! from it.

use serde::{Deserialize, Serialize};

use lbs_geom::{Point, Rect};

use crate::tuple::{AttrValue, Tuple, TupleId};

/// Canonical bit pattern of an `f64` for fingerprinting: `-0.0` hashes like
/// `+0.0` and every NaN payload alike, so numerically-equal content always
/// fingerprints equal.
fn float_bits(value: f64) -> u64 {
    if value == 0.0 {
        0
    } else if value.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        value.to_bits()
    }
}

/// One splitmix64-style round combining `value` into the accumulator `acc`.
fn mix(acc: u64, value: u64) -> u64 {
    let mut x = acc ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A collection of tuples together with the bounding box of the region of
/// interest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    tuples: Vec<Tuple>,
    bbox: Rect,
}

impl Dataset {
    /// Creates a dataset from tuples and an explicit bounding box.
    ///
    /// Tuples outside the box are kept (the box describes the *query* region,
    /// not a filter), but generators normally place everything inside it.
    pub fn new(tuples: Vec<Tuple>, bbox: Rect) -> Self {
        Dataset { tuples, bbox }
    }

    /// Creates a dataset whose bounding box is the tight box around the
    /// tuples, expanded by `margin` on every side.
    pub fn with_tight_bbox(tuples: Vec<Tuple>, margin: f64) -> Self {
        let bbox = Rect::bounding(tuples.iter().map(|t| t.location))
            .unwrap_or_else(|| Rect::from_bounds(0.0, 0.0, 1.0, 1.0))
            .expanded(margin);
        Dataset { tuples, bbox }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the dataset has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The bounding box of the region of interest.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// The tuples, in id order as produced by the generators.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterator over the tuple locations, in the same order as
    /// [`Dataset::tuples`].
    pub fn locations(&self) -> impl Iterator<Item = Point> + '_ {
        self.tuples.iter().map(|t| t.location)
    }

    /// A cheap content fingerprint of the dataset (tuples in order, plus the
    /// bounding box), suitable as the version stamp of derived artifacts
    /// such as cached kNN answers.
    ///
    /// The fingerprint is derived purely from content, so two datasets with
    /// equal tuples and box always agree, any [`Dataset::insert`] /
    /// [`Dataset::remove`] changes it, and it is stable across processes and
    /// platforms (float coordinates hash by canonicalized IEEE-754 bits:
    /// `-0.0` hashes like `+0.0`, every NaN alike).
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(0x6c62_7265_7375_6e1b, self.tuples.len() as u64);
        h = mix(h, float_bits(self.bbox.min_x));
        h = mix(h, float_bits(self.bbox.min_y));
        h = mix(h, float_bits(self.bbox.max_x));
        h = mix(h, float_bits(self.bbox.max_y));
        for t in &self.tuples {
            h = mix(h, t.id);
            h = mix(h, float_bits(t.location.x));
            h = mix(h, float_bits(t.location.y));
            for (name, value) in &t.attributes {
                for b in name.as_bytes() {
                    h = mix(h, u64::from(*b));
                }
                h = match value {
                    AttrValue::Float(v) => mix(mix(h, 1), float_bits(*v)),
                    AttrValue::Int(v) => mix(mix(h, 2), *v as u64),
                    AttrValue::Text(s) => {
                        let mut inner = mix(h, 3);
                        for b in s.as_bytes() {
                            inner = mix(inner, u64::from(*b));
                        }
                        inner
                    }
                    AttrValue::Bool(v) => mix(mix(h, 4), u64::from(*v)),
                };
            }
        }
        h
    }

    /// Inserts a tuple, changing the content fingerprint.
    ///
    /// Unlike the bulk constructors, mutation keeps existing ids stable (no
    /// reassignment) so that derived artifacts can be invalidated
    /// selectively. The id must be unused.
    pub fn insert(&mut self, tuple: Tuple) {
        assert!(
            self.get(tuple.id).is_none(),
            "Dataset::insert: duplicate tuple id {}",
            tuple.id
        );
        self.tuples.push(tuple);
    }

    /// Removes the tuple with the given id, returning it. Ids of the
    /// remaining tuples are untouched.
    pub fn remove(&mut self, id: TupleId) -> Option<Tuple> {
        let pos = self.tuples.iter().position(|t| t.id == id)?;
        Some(self.tuples.remove(pos))
    }

    /// The smallest id not used by any tuple — what a caller should assign
    /// to the next [`Dataset::insert`].
    pub fn next_id(&self) -> TupleId {
        self.tuples.iter().map(|t| t.id + 1).max().unwrap_or(0)
    }

    /// Looks a tuple up by id.
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        // Generators assign ids equal to the position, so try that first and
        // fall back to a scan for datasets assembled by hand or subsampled.
        if let Some(t) = self.tuples.get(id as usize) {
            if t.id == id {
                return Some(t);
            }
        }
        self.tuples.iter().find(|t| t.id == id)
    }

    /// Ground-truth `COUNT` of tuples matching a predicate.
    pub fn count_where<F: Fn(&Tuple) -> bool>(&self, pred: F) -> usize {
        self.tuples.iter().filter(|t| pred(t)).count()
    }

    /// Ground-truth `SUM` of a numeric attribute over tuples matching a
    /// predicate. Tuples without the attribute contribute zero.
    pub fn sum_where<F: Fn(&Tuple) -> bool>(&self, attr: &str, pred: F) -> f64 {
        self.tuples
            .iter()
            .filter(|t| pred(t))
            .filter_map(|t| t.num(attr))
            .sum()
    }

    /// Ground-truth `AVG` of a numeric attribute over tuples matching a
    /// predicate (`None` when no tuple matches and has the attribute).
    pub fn avg_where<F: Fn(&Tuple) -> bool>(&self, attr: &str, pred: F) -> Option<f64> {
        let values: Vec<f64> = self
            .tuples
            .iter()
            .filter(|t| pred(t))
            .filter_map(|t| t.num(attr))
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// A new dataset containing a uniformly random fraction of the tuples.
    ///
    /// Used by the Figure 18 experiment ("query cost versus database size"),
    /// which evaluates the estimators on 25 %, 50 %, 75 % and 100 % subsets.
    /// Tuple ids are reassigned to stay dense.
    pub fn sample_fraction<R: rand::Rng>(&self, fraction: f64, rng: &mut R) -> Dataset {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut tuples: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|_| rng.gen::<f64>() < fraction)
            .cloned()
            .collect();
        for (i, t) in tuples.iter_mut().enumerate() {
            t.id = i as TupleId;
        }
        Dataset {
            tuples,
            bbox: self.bbox,
        }
    }

    /// A new dataset restricted to tuples matching a predicate, with ids
    /// reassigned to stay dense.
    pub fn filter<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Dataset {
        let mut tuples: Vec<Tuple> = self.tuples.iter().filter(|t| pred(t)).cloned().collect();
        for (i, t) in tuples.iter_mut().enumerate() {
            t.id = i as TupleId;
        }
        Dataset {
            tuples,
            bbox: self.bbox,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::attrs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let tuples = vec![
            Tuple::new(0, Point::new(1.0, 1.0))
                .with_attr(attrs::CATEGORY, "restaurant")
                .with_attr(attrs::RATING, 4.0),
            Tuple::new(1, Point::new(2.0, 2.0))
                .with_attr(attrs::CATEGORY, "restaurant")
                .with_attr(attrs::RATING, 3.0),
            Tuple::new(2, Point::new(3.0, 3.0))
                .with_attr(attrs::CATEGORY, "school")
                .with_attr(attrs::ENROLLMENT, 500.0),
        ];
        Dataset::new(tuples, Rect::from_bounds(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn ground_truth_aggregates() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(
            d.count_where(|t| t.text_eq(attrs::CATEGORY, "restaurant")),
            2
        );
        assert_eq!(
            d.sum_where(attrs::RATING, |t| t.text_eq(attrs::CATEGORY, "restaurant")),
            7.0
        );
        assert_eq!(
            d.avg_where(attrs::RATING, |t| t.text_eq(attrs::CATEGORY, "restaurant")),
            Some(3.5)
        );
        assert_eq!(
            d.avg_where(attrs::RATING, |t| t.text_eq(attrs::CATEGORY, "bank")),
            None
        );
        assert_eq!(d.sum_where(attrs::ENROLLMENT, |_| true), 500.0);
    }

    #[test]
    fn lookup_by_id() {
        let d = toy();
        assert_eq!(d.get(1).unwrap().num(attrs::RATING), Some(3.0));
        assert!(d.get(99).is_none());
    }

    #[test]
    fn lookup_by_id_with_non_positional_ids() {
        let tuples = vec![
            Tuple::new(10, Point::new(1.0, 1.0)),
            Tuple::new(20, Point::new(2.0, 2.0)),
        ];
        let d = Dataset::with_tight_bbox(tuples, 1.0);
        assert_eq!(d.get(20).unwrap().location, Point::new(2.0, 2.0));
        assert!(d.get(15).is_none());
    }

    #[test]
    fn tight_bbox_and_margin() {
        let d = Dataset::with_tight_bbox(
            vec![
                Tuple::new(0, Point::new(5.0, 5.0)),
                Tuple::new(1, Point::new(9.0, 7.0)),
            ],
            2.0,
        );
        assert_eq!(d.bbox(), Rect::from_bounds(3.0, 3.0, 11.0, 9.0));
    }

    #[test]
    fn sample_fraction_bounds() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let none = d.sample_fraction(0.0, &mut rng);
        assert!(none.is_empty());
        let all = d.sample_fraction(1.0, &mut rng);
        assert_eq!(all.len(), 3);
        // Ids stay dense after sampling.
        for (i, t) in all.tuples().iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn filter_reassigns_ids() {
        let d = toy();
        let restaurants = d.filter(|t| t.text_eq(attrs::CATEGORY, "restaurant"));
        assert_eq!(restaurants.len(), 2);
        assert_eq!(restaurants.tuples()[1].id, 1);
        assert_eq!(restaurants.bbox(), d.bbox());
    }

    #[test]
    fn fingerprint_is_content_derived() {
        let d = toy();
        assert_eq!(d.fingerprint(), toy().fingerprint());
        assert_eq!(d.fingerprint(), d.clone().fingerprint());
        let other = Dataset::new(
            toy().tuples().to_vec(),
            Rect::from_bounds(0.0, 0.0, 11.0, 10.0),
        );
        assert_ne!(d.fingerprint(), other.fingerprint(), "bbox is content");
    }

    #[test]
    fn fingerprint_canonicalizes_float_bits() {
        let pos = Dataset::new(
            vec![Tuple::new(0, Point::new(0.0, 1.0))],
            Rect::from_bounds(0.0, 0.0, 4.0, 4.0),
        );
        let neg = Dataset::new(
            vec![Tuple::new(0, Point::new(-0.0, 1.0))],
            Rect::from_bounds(0.0, 0.0, 4.0, 4.0),
        );
        assert_eq!(pos.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn mutations_bump_the_fingerprint_and_keep_ids() {
        let mut d = toy();
        let before = d.fingerprint();
        assert_eq!(d.next_id(), 3);
        d.insert(Tuple::new(3, Point::new(4.0, 4.0)));
        let after_insert = d.fingerprint();
        assert_ne!(before, after_insert);
        assert_eq!(d.get(3).unwrap().location, Point::new(4.0, 4.0));

        let removed = d.remove(1).unwrap();
        assert_eq!(removed.id, 1);
        assert_ne!(d.fingerprint(), after_insert);
        assert!(d.get(1).is_none());
        // Remaining ids are untouched (no reassignment), so lookups by the
        // surviving ids still resolve.
        assert!(d.get(2).is_some());
        assert!(d.remove(99).is_none());

        // Re-inserting the removed tuple restores the original content up to
        // tuple order; order is content, so the fingerprint may differ, but
        // inserting a brand-new id never collides with an existing one.
        assert_eq!(d.next_id(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate tuple id")]
    fn duplicate_insert_panics() {
        let mut d = toy();
        d.insert(Tuple::new(2, Point::new(5.0, 5.0)));
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::with_tight_bbox(vec![], 1.0);
        assert!(d.is_empty());
        assert_eq!(d.count_where(|_| true), 0);
        assert_eq!(d.sum_where(attrs::RATING, |_| true), 0.0);
    }
}
