//! Tuples: the hidden database records behind an LBS.
//!
//! A tuple is a point of interest (map services) or a user (location based
//! social networks): a location plus a bag of named attributes. The paper's
//! aggregates (`COUNT`, `SUM`, `AVG` with optional selection conditions) are
//! evaluated over these attributes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use lbs_geom::Point;

/// Identifier of a tuple, unique within one [`crate::Dataset`].
///
/// LNR-LBS interfaces return *only* tuple ids (plus non-location attributes),
/// so the id is the handle everything else hangs off.
pub type TupleId = u64;

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A real-valued attribute (rating, enrollment, review count, …).
    Float(f64),
    /// An integer attribute.
    Int(i64),
    /// A textual attribute (name, brand, category, gender, …).
    Text(String),
    /// A boolean attribute (open on Sundays, location feature enabled, …).
    Bool(bool),
}

impl AttrValue {
    /// Numeric view of the value: floats and ints as themselves, booleans as
    /// 0/1, text as `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            AttrValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrValue::Text(_) => None,
        }
    }

    /// Textual view of the value (`None` for non-text values).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value (`None` for non-bool values).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Text(s) => write!(f, "{s}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// Well-known attribute names used by the generators and the experiment
/// harness. Keeping them in one place avoids typo-induced "attribute not
/// found" bugs in selection conditions.
pub mod attrs {
    /// POI category: `"restaurant"`, `"school"`, `"bank"`, `"cafe"`, ….
    pub const CATEGORY: &str = "category";
    /// Display name of the POI or user.
    pub const NAME: &str = "name";
    /// Brand of a POI (e.g. `"Starbucks"`).
    pub const BRAND: &str = "brand";
    /// Average review rating of a restaurant (1.0 ..= 5.0).
    pub const RATING: &str = "rating";
    /// Number of reviews of a POI.
    pub const REVIEW_COUNT: &str = "review_count";
    /// Enrollment of a school.
    pub const ENROLLMENT: &str = "enrollment";
    /// Whether a restaurant is open on Sundays.
    pub const OPEN_SUNDAY: &str = "open_sunday";
    /// Gender of a user: `"male"` or `"female"`.
    pub const GENDER: &str = "gender";
    /// Static popularity score used by prominence ranking.
    pub const PROMINENCE: &str = "prominence";
}

/// A database record: location plus attributes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Unique identifier within the dataset.
    pub id: TupleId,
    /// Location of the tuple on the plane (kilometre coordinates).
    pub location: Point,
    /// Named attributes of the tuple.
    pub attributes: BTreeMap<String, AttrValue>,
}

impl Tuple {
    /// Creates a tuple with no attributes.
    pub fn new(id: TupleId, location: Point) -> Self {
        Tuple {
            id,
            location,
            attributes: BTreeMap::new(),
        }
    }

    /// Builder-style attribute insertion.
    pub fn with_attr(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.attributes.insert(name.to_string(), value.into());
        self
    }

    /// Sets an attribute in place.
    pub fn set_attr(&mut self, name: &str, value: impl Into<AttrValue>) {
        self.attributes.insert(name.to_string(), value.into());
    }

    /// Looks up an attribute.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attributes.get(name)
    }

    /// Numeric value of an attribute (`None` when missing or non-numeric).
    pub fn num(&self, name: &str) -> Option<f64> {
        self.attr(name).and_then(AttrValue::as_f64)
    }

    /// Text value of an attribute (`None` when missing or non-text).
    pub fn text(&self, name: &str) -> Option<&str> {
        self.attr(name).and_then(AttrValue::as_str)
    }

    /// Boolean value of an attribute (`None` when missing or non-bool).
    pub fn flag(&self, name: &str) -> Option<bool> {
        self.attr(name).and_then(AttrValue::as_bool)
    }

    /// `true` when the text attribute `name` equals `value`
    /// (case-insensitive), mimicking the keyword filters LBS interfaces
    /// support for pass-through selection conditions.
    pub fn text_eq(&self, name: &str, value: &str) -> bool {
        self.text(name)
            .map(|t| t.eq_ignore_ascii_case(value))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_round_trip() {
        let t = Tuple::new(7, Point::new(1.0, 2.0))
            .with_attr(attrs::CATEGORY, "restaurant")
            .with_attr(attrs::RATING, 4.5)
            .with_attr(attrs::REVIEW_COUNT, 120_i64)
            .with_attr(attrs::OPEN_SUNDAY, true);
        assert_eq!(t.text(attrs::CATEGORY), Some("restaurant"));
        assert_eq!(t.num(attrs::RATING), Some(4.5));
        assert_eq!(t.num(attrs::REVIEW_COUNT), Some(120.0));
        assert_eq!(t.flag(attrs::OPEN_SUNDAY), Some(true));
        assert_eq!(t.num(attrs::OPEN_SUNDAY), Some(1.0));
        assert!(t.attr("missing").is_none());
        assert!(t.num(attrs::CATEGORY).is_none());
    }

    #[test]
    fn text_eq_is_case_insensitive() {
        let t = Tuple::new(1, Point::ORIGIN).with_attr(attrs::BRAND, "Starbucks");
        assert!(t.text_eq(attrs::BRAND, "starbucks"));
        assert!(t.text_eq(attrs::BRAND, "STARBUCKS"));
        assert!(!t.text_eq(attrs::BRAND, "Dunkin"));
        assert!(!t.text_eq("missing", "Starbucks"));
    }

    #[test]
    fn set_attr_overwrites() {
        let mut t = Tuple::new(1, Point::ORIGIN).with_attr(attrs::RATING, 3.0);
        t.set_attr(attrs::RATING, 4.0);
        assert_eq!(t.num(attrs::RATING), Some(4.0));
    }

    #[test]
    fn attr_value_display_and_conversions() {
        assert_eq!(AttrValue::from(2.5).to_string(), "2.5");
        assert_eq!(AttrValue::from(3_i64).to_string(), "3");
        assert_eq!(AttrValue::from("x").to_string(), "x");
        assert_eq!(AttrValue::from(true).to_string(), "true");
        assert_eq!(AttrValue::from("abc").as_str(), Some("abc"));
        assert_eq!(AttrValue::from(false).as_bool(), Some(false));
        assert_eq!(AttrValue::from(2_i64).as_f64(), Some(2.0));
        assert!(AttrValue::from("abc").as_f64().is_none());
    }

    #[test]
    fn serde_round_trip() {
        let t = Tuple::new(42, Point::new(3.0, 4.0))
            .with_attr(attrs::GENDER, "female")
            .with_attr(attrs::PROMINENCE, 0.7);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tuple = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
