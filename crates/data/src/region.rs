//! Named geographic regions used by the experiments.
//!
//! All coordinates in the workspace are planar kilometre coordinates (an
//! equirectangular projection is assumed to have been applied already), so a
//! "USA" region is simply a rectangle roughly 4 500 km × 2 900 km — the same
//! order of magnitude as the real contiguous United States — and "Austin, TX"
//! is a small rectangle inside it. The absolute placement is arbitrary; only
//! relative sizes matter to the estimators.

use lbs_geom::{Point, Rect};

/// Bounding box standing in for the contiguous United States
/// (≈ 4 500 km × 2 900 km).
pub fn usa() -> Rect {
    Rect::from_bounds(0.0, 0.0, 4_500.0, 2_900.0)
}

/// A metropolitan-area-sized rectangle standing in for Austin, TX
/// (≈ 60 km × 60 km), placed in the south-central part of the USA box.
pub fn austin_tx() -> Rect {
    Rect::from_bounds(2_200.0, 600.0, 2_260.0, 660.0)
}

/// A metropolitan-area-sized rectangle standing in for Washington, DC.
pub fn washington_dc() -> Rect {
    Rect::from_bounds(3_900.0, 1_500.0, 3_940.0, 1_540.0)
}

/// Bounding box standing in for China (≈ 5 000 km × 3 500 km), used by the
/// WeChat / Sina Weibo scenarios.
pub fn china() -> Rect {
    Rect::from_bounds(0.0, 0.0, 5_000.0, 3_500.0)
}

/// Urban cluster centres inside the USA box used by the POI generators:
/// a fixed list of "cities" with relative population weights.
///
/// The list is synthetic but shaped like the real urban hierarchy: a few very
/// large metros, a middle tier, and many small cities, which is what produces
/// the heavy-tailed Voronoi-cell-size distribution of the paper's Figure 11.
pub fn usa_cities() -> Vec<(Point, f64)> {
    vec![
        // (centre, relative weight)
        (Point::new(3_950.0, 1_750.0), 10.0), // "New York"
        (Point::new(600.0, 1_400.0), 8.0),    // "Los Angeles"
        (Point::new(2_900.0, 1_950.0), 6.5),  // "Chicago"
        (Point::new(2_350.0, 700.0), 5.5),    // "Houston"
        (Point::new(1_250.0, 950.0), 4.5),    // "Phoenix"
        (Point::new(3_700.0, 1_450.0), 4.5),  // "Philadelphia"
        (Point::new(2_250.0, 640.0), 4.0),    // "San Antonio / Austin"
        (Point::new(350.0, 1_150.0), 4.0),    // "San Diego"
        (Point::new(2_550.0, 850.0), 4.0),    // "Dallas"
        (Point::new(450.0, 2_100.0), 3.5),    // "San Jose / SF"
        (Point::new(3_350.0, 950.0), 3.0),    // "Jacksonville"
        (Point::new(3_150.0, 1_150.0), 3.0),  // "Atlanta"
        (Point::new(3_900.0, 1_520.0), 3.0),  // "Washington DC"
        (Point::new(4_050.0, 1_950.0), 2.5),  // "Boston"
        (Point::new(850.0, 2_450.0), 2.5),    // "Seattle"
        (Point::new(1_650.0, 1_900.0), 2.0),  // "Denver"
        (Point::new(2_750.0, 1_500.0), 2.0),  // "St. Louis"
        (Point::new(3_450.0, 700.0), 2.0),    // "Miami"
        (Point::new(2_950.0, 2_250.0), 1.5),  // "Minneapolis"
        (Point::new(2_050.0, 1_350.0), 1.0),  // "Oklahoma City"
        (Point::new(1_150.0, 1_700.0), 1.0),  // "Salt Lake City"
        (Point::new(3_550.0, 1_800.0), 1.5),  // "Pittsburgh"
        (Point::new(3_250.0, 1_650.0), 1.5),  // "Columbus"
        (Point::new(2_650.0, 1_050.0), 1.0),  // "New Orleans"
        (Point::new(1_900.0, 2_350.0), 0.8),  // "Billings"
    ]
}

/// Urban cluster centres inside the China box used by the user-base
/// generators (WeChat / Sina Weibo scenarios).
pub fn china_cities() -> Vec<(Point, f64)> {
    vec![
        (Point::new(3_900.0, 2_300.0), 10.0), // "Beijing"
        (Point::new(4_200.0, 1_700.0), 10.0), // "Shanghai"
        (Point::new(3_700.0, 900.0), 9.0),    // "Guangzhou / Shenzhen"
        (Point::new(3_000.0, 1_500.0), 6.0),  // "Chengdu / Chongqing"
        (Point::new(3_900.0, 1_950.0), 5.0),  // "Nanjing"
        (Point::new(3_600.0, 2_050.0), 4.5),  // "Zhengzhou"
        (Point::new(4_000.0, 1_350.0), 4.0),  // "Hangzhou"
        (Point::new(3_300.0, 1_850.0), 3.5),  // "Xi'an"
        (Point::new(4_100.0, 2_550.0), 3.0),  // "Shenyang"
        (Point::new(3_450.0, 1_150.0), 3.0),  // "Changsha"
        (Point::new(2_300.0, 2_100.0), 1.0),  // "Lanzhou"
        (Point::new(1_400.0, 2_400.0), 0.5),  // "Urumqi"
        (Point::new(2_600.0, 1_000.0), 1.5),  // "Kunming"
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_regions_are_inside_their_country() {
        assert!(usa().contains_rect(&austin_tx()));
        assert!(usa().contains_rect(&washington_dc()));
    }

    #[test]
    fn city_centres_are_inside_their_country() {
        for (c, w) in usa_cities() {
            assert!(usa().contains(&c), "USA city {c:?} outside the USA box");
            assert!(w > 0.0);
        }
        for (c, w) in china_cities() {
            assert!(
                china().contains(&c),
                "China city {c:?} outside the China box"
            );
            assert!(w > 0.0);
        }
    }

    #[test]
    fn regions_have_realistic_relative_sizes() {
        // A metro area is at least three orders of magnitude smaller than the
        // whole country — that size ratio is what makes weighted sampling
        // worthwhile (paper §5.2).
        assert!(usa().area() / austin_tx().area() > 1_000.0);
        assert!(usa().area() > 1e7);
        assert!(china().area() > usa().area());
    }
}
