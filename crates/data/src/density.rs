//! Population-density grid: the "external knowledge" of paper §5.2.
//!
//! The paper speeds up COUNT estimation by sampling query locations with
//! probability proportional to US-Census population density instead of
//! uniformly: POIs concentrate where people live, so density-weighted
//! sampling makes tuple selection probabilities far more uniform and the
//! inverse-probability estimator far less variable.
//!
//! [`DensityGrid`] is the synthetic substitute: a piecewise-constant density
//! over a regular grid. It supports
//!
//! * drawing random locations with probability proportional to the density
//!   ([`DensityGrid::sample`]),
//! * evaluating the normalised probability density at a point
//!   ([`DensityGrid::pdf`]), and
//! * exactly integrating the density over a convex polygon
//!   ([`DensityGrid::integrate_convex`]), which is what converts a Voronoi
//!   cell into a selection probability under weighted sampling.
//!
//! Because the density is piecewise constant, all three operations are exact
//! — the unbiasedness argument of the paper's equation (1) carries over
//! unchanged.

use serde::{Deserialize, Serialize};

use lbs_geom::{ConvexPolygon, HalfPlane, Line, Point, Rect};

use crate::dataset::Dataset;

/// A piecewise-constant probability density over a regular grid covering a
/// bounding box.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DensityGrid {
    bbox: Rect,
    cols: usize,
    rows: usize,
    /// Per-cell non-negative weights, row-major, normalised to sum to 1.
    weights: Vec<f64>,
    /// Cumulative distribution over cells for inverse-CDF sampling.
    cumulative: Vec<f64>,
}

impl DensityGrid {
    /// Builds a grid from raw non-negative cell weights (row-major,
    /// `cols * rows` entries). Weights are normalised internally; an all-zero
    /// weight vector falls back to the uniform density.
    pub fn from_weights(bbox: Rect, cols: usize, rows: usize, mut weights: Vec<f64>) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert_eq!(weights.len(), cols * rows, "weight vector has wrong length");
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            let uniform = 1.0 / (cols * rows) as f64;
            weights.iter_mut().for_each(|w| *w = uniform);
        } else {
            weights.iter_mut().for_each(|w| *w /= total);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += *w;
            cumulative.push(acc);
        }
        // Guard against floating point drift so the last entry is exactly 1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        DensityGrid {
            bbox,
            cols,
            rows,
            weights,
            cumulative,
        }
    }

    /// The uniform density over a bounding box (a 1×1 grid).
    pub fn uniform(bbox: Rect) -> Self {
        DensityGrid::from_weights(bbox, 1, 1, vec![1.0])
    }

    /// Estimates a density grid from the tuple locations of a dataset by
    /// histogramming them, adding `smoothing` pseudo-counts per cell.
    ///
    /// This mimics using census population counts as a proxy for POI density:
    /// the counts correlate with, but are not identical to, the actual tuple
    /// distribution (the smoothing is the "error" of the external knowledge).
    pub fn from_dataset(dataset: &Dataset, cols: usize, rows: usize, smoothing: f64) -> Self {
        let bbox = dataset.bbox();
        let mut weights = vec![smoothing.max(0.0); cols * rows];
        for loc in dataset.locations() {
            let (cx, cy) = cell_of(&bbox, cols, rows, &loc);
            weights[cy * cols + cx] += 1.0;
        }
        DensityGrid::from_weights(bbox, cols, rows, weights)
    }

    /// The bounding box the density is defined over.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Grid resolution as `(cols, rows)`.
    pub fn resolution(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The rectangle of the grid cell at `(col, row)`.
    pub fn cell_rect(&self, col: usize, row: usize) -> Rect {
        let w = self.bbox.width() / self.cols as f64;
        let h = self.bbox.height() / self.rows as f64;
        Rect::from_bounds(
            self.bbox.min_x + col as f64 * w,
            self.bbox.min_y + row as f64 * h,
            self.bbox.min_x + (col + 1) as f64 * w,
            self.bbox.min_y + (row + 1) as f64 * h,
        )
    }

    /// Probability density at a point (per unit area). Zero outside the box.
    ///
    /// Points lying exactly on the bounding box boundary — including the max
    /// edge, whose fractional coordinate lands exactly on 1.0 — are clamped
    /// into the nearest cell, so a boundary point can never fall "between"
    /// cells and report a spurious zero density (which would blow up to an
    /// infinite Horvitz–Thompson weight under the §5.2 weighted sampling
    /// design).
    ///
    /// The density integrates to 1 over the bounding box.
    pub fn pdf(&self, p: &Point) -> f64 {
        if !self.bbox.contains(p) {
            return 0.0;
        }
        let (cx, cy) = cell_of(&self.bbox, self.cols, self.rows, p);
        let cell_area = self.cell_rect(cx, cy).area();
        self.weights[cy * self.cols + cx] / cell_area
    }

    /// Draws a random location with probability proportional to the density.
    ///
    /// Cell `i` owns the half-open interval `[cumulative[i-1], cumulative[i])`
    /// of the inverse-CDF, so zero-weight cells own an *empty* interval and
    /// can never be selected — not even when the uniform draw lands exactly
    /// on a CDF boundary shared by several zero-weight cells (the old
    /// `binary_search` could return any tied index there, occasionally
    /// emitting a location with `pdf == 0`).
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> Point {
        let u: f64 = rng.gen();
        // First cell whose cumulative weight strictly exceeds `u`; `u < 1`
        // and the forced final cumulative value of 1.0 guarantee a hit.
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1);
        let (cx, cy) = (idx % self.cols, idx / self.cols);
        let cell = self.cell_rect(cx, cy);
        cell.at_fraction(rng.gen(), rng.gen())
    }

    /// Exact integral of the density over a convex polygon (clipped to the
    /// bounding box).
    ///
    /// Under density-weighted query sampling, the probability that a given
    /// tuple is sampled equals the integral of the density over its Voronoi
    /// cell — this method supplies exactly that quantity, keeping the
    /// estimator unbiased.
    pub fn integrate_convex(&self, polygon: &ConvexPolygon) -> f64 {
        if polygon.is_empty() {
            return 0.0;
        }
        let Some(poly_bbox) = polygon.bounding_rect() else {
            return 0.0;
        };
        let mut total = 0.0;
        for row in 0..self.rows {
            for col in 0..self.cols {
                let w = self.weights[row * self.cols + col];
                if w <= 0.0 {
                    continue;
                }
                let cell = self.cell_rect(col, row);
                if !cell.intersects(&poly_bbox) {
                    continue;
                }
                // Clip the polygon against the four half-planes of the cell.
                let clipped = clip_to_rect(polygon, &cell);
                let a = clipped.area();
                if a > 0.0 {
                    total += w * a / cell.area();
                }
            }
        }
        total
    }
}

/// Clips a convex polygon to a rectangle using four axis-aligned half-planes.
fn clip_to_rect(polygon: &ConvexPolygon, rect: &Rect) -> ConvexPolygon {
    let planes = [
        // x >= min_x  <=>  -x <= -min_x
        HalfPlane::new(Line {
            a: -1.0,
            b: 0.0,
            c: -rect.min_x,
        }),
        // x <= max_x
        HalfPlane::new(Line {
            a: 1.0,
            b: 0.0,
            c: rect.max_x,
        }),
        // y >= min_y
        HalfPlane::new(Line {
            a: 0.0,
            b: -1.0,
            c: -rect.min_y,
        }),
        // y <= max_y
        HalfPlane::new(Line {
            a: 0.0,
            b: 1.0,
            c: rect.max_y,
        }),
    ];
    polygon.clip_all(&planes)
}

fn cell_of(bbox: &Rect, cols: usize, rows: usize, p: &Point) -> (usize, usize) {
    let fx = ((p.x - bbox.min_x) / bbox.width()).clamp(0.0, 1.0 - f64::EPSILON);
    let fy = ((p.y - bbox.min_y) / bbox.height()).clamp(0.0, 1.0 - f64::EPSILON);
    (
        ((fx * cols as f64) as usize).min(cols - 1),
        ((fy * rows as f64) as usize).min(rows - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bbox() -> Rect {
        Rect::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn uniform_pdf_integrates_to_one() {
        let g = DensityGrid::uniform(bbox());
        assert!((g.pdf(&Point::new(50.0, 50.0)) - 1.0 / 10_000.0).abs() < 1e-12);
        assert_eq!(g.pdf(&Point::new(200.0, 50.0)), 0.0);
        let full = ConvexPolygon::from_rect(&bbox());
        assert!((g.integrate_convex(&full) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_are_normalised() {
        let g = DensityGrid::from_weights(bbox(), 2, 2, vec![1.0, 1.0, 2.0, 0.0]);
        // pdf in the heavy cell (col 0, row 1 => x<50, y>50) is twice the pdf
        // in a light cell.
        let heavy = g.pdf(&Point::new(25.0, 75.0));
        let light = g.pdf(&Point::new(25.0, 25.0));
        assert!((heavy / light - 2.0).abs() < 1e-9);
        // Zero-weight cell has zero density.
        assert_eq!(g.pdf(&Point::new(75.0, 75.0)), 0.0);
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let g = DensityGrid::from_weights(bbox(), 2, 2, vec![0.0; 4]);
        let p = g.pdf(&Point::new(10.0, 10.0));
        assert!((p - 1.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn wrong_weight_length_panics() {
        let _ = DensityGrid::from_weights(bbox(), 2, 2, vec![1.0; 3]);
    }

    #[test]
    fn sampling_respects_weights() {
        // All mass in the top-right quadrant.
        let g = DensityGrid::from_weights(bbox(), 2, 2, vec![0.0, 0.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let p = g.sample(&mut rng);
            assert!(
                p.x >= 50.0 && p.y >= 50.0,
                "sample {p:?} outside heavy cell"
            );
        }
    }

    #[test]
    fn sampling_distribution_matches_pdf() {
        let g = DensityGrid::from_weights(bbox(), 2, 1, vec![3.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let left = (0..n).filter(|_| g.sample(&mut rng).x < 50.0).count();
        let frac = left as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "left fraction {frac}");
    }

    #[test]
    fn integrate_convex_matches_pdf_for_aligned_rects() {
        let g = DensityGrid::from_weights(bbox(), 2, 2, vec![1.0, 1.0, 1.0, 5.0]);
        // The top-right quadrant holds 5/8 of the mass.
        let quad = ConvexPolygon::from_rect(&Rect::from_bounds(50.0, 50.0, 100.0, 100.0));
        assert!((g.integrate_convex(&quad) - 5.0 / 8.0).abs() < 1e-9);
        // A rectangle spanning the bottom half holds 2/8 of the mass.
        let bottom = ConvexPolygon::from_rect(&Rect::from_bounds(0.0, 0.0, 100.0, 50.0));
        assert!((g.integrate_convex(&bottom) - 0.25).abs() < 1e-9);
        // The empty polygon integrates to zero.
        assert_eq!(g.integrate_convex(&ConvexPolygon::empty()), 0.0);
    }

    #[test]
    fn integrate_triangle_under_uniform_density() {
        let g = DensityGrid::uniform(bbox());
        let tri = ConvexPolygon::from_ccw_vertices(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 100.0),
        ]);
        assert!((g.integrate_convex(&tri) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn from_dataset_histograms_locations() {
        let tuples = vec![
            Tuple::new(0, Point::new(10.0, 10.0)),
            Tuple::new(1, Point::new(12.0, 14.0)),
            Tuple::new(2, Point::new(90.0, 90.0)),
        ];
        let d = Dataset::new(tuples, bbox());
        let g = DensityGrid::from_dataset(&d, 2, 2, 0.0);
        // Two of three tuples are in the bottom-left cell.
        let bl = g.pdf(&Point::new(20.0, 20.0));
        let tr = g.pdf(&Point::new(80.0, 80.0));
        assert!((bl / tr - 2.0).abs() < 1e-9);
        // Empty cells have zero density without smoothing, positive with it.
        assert_eq!(g.pdf(&Point::new(80.0, 20.0)), 0.0);
        let smoothed = DensityGrid::from_dataset(&d, 2, 2, 0.5);
        assert!(smoothed.pdf(&Point::new(80.0, 20.0)) > 0.0);
    }

    /// Minimal `RngCore` that replays a fixed sequence of `u64` words —
    /// used to force `gen::<f64>()` onto exact CDF boundaries (0.0), which a
    /// seeded PRNG will essentially never produce.
    struct WordRng {
        words: Vec<u64>,
        next: usize,
    }

    impl rand::RngCore for WordRng {
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.next % self.words.len()];
            self.next += 1;
            w
        }
    }

    #[test]
    fn pdf_clamps_bbox_max_edge_points_into_the_last_cell() {
        // Regression: a point lying exactly on the max edge of the bounding
        // box has fractional coordinate 1.0 and must be clamped into the
        // last row/column instead of falling off the grid — a zero pdf here
        // becomes an infinite Horvitz–Thompson weight under §5.2 weighted
        // sampling.
        let g = DensityGrid::from_weights(bbox(), 4, 4, (1..=16).map(|i| i as f64).collect());
        let corner = g.pdf(&Point::new(100.0, 100.0));
        assert!(corner > 0.0, "max corner must land in the last cell");
        // It reports exactly the last cell's density.
        assert!((corner - g.pdf(&Point::new(99.0, 99.0))).abs() < 1e-15);
        // Points on the max edges (but not the corner) also stay inside.
        assert!(g.pdf(&Point::new(100.0, 50.0)) > 0.0);
        assert!(g.pdf(&Point::new(50.0, 100.0)) > 0.0);
        // Min edges were always fine; lock that in too.
        assert!(g.pdf(&Point::new(0.0, 0.0)) > 0.0);
        // Strictly outside is still zero.
        assert_eq!(g.pdf(&Point::new(100.1, 50.0)), 0.0);
    }

    #[test]
    fn sample_never_selects_a_zero_weight_cell_on_cdf_boundaries() {
        // Leading zero-weight cell: the CDF starts with an exact 0.0 entry,
        // so a uniform draw of exactly 0.0 sits on a boundary shared with
        // the zero-weight cell. The old binary_search could resolve the tie
        // to the zero-weight cell, returning a location with pdf 0.
        let g = DensityGrid::from_weights(bbox(), 2, 1, vec![0.0, 1.0]);
        let mut rng = WordRng {
            words: vec![0, 0, 0],
            next: 0,
        };
        let p = g.sample(&mut rng);
        assert!(p.x >= 50.0, "sample {p:?} landed in the zero-weight cell");
        assert!(g.pdf(&p) > 0.0, "sampled a zero-density location");

        // Interior boundary between a positive and a zero-weight cell:
        // u == 0.5 exactly must resolve to a positive-weight cell.
        let g2 = DensityGrid::from_weights(bbox(), 4, 1, vec![1.0, 0.0, 0.0, 1.0]);
        // 0.5 * 2^53 word makes gen::<f64>() return exactly 0.5.
        let half = 1u64 << 63;
        let mut rng2 = WordRng {
            words: vec![half, 0, 0],
            next: 0,
        };
        let p2 = g2.sample(&mut rng2);
        assert!(g2.pdf(&p2) > 0.0, "sampled a zero-density location");
    }

    #[test]
    fn every_sampled_location_has_positive_pdf() {
        // Property check tying the two regressions together: whatever the
        // sampler emits, the pdf the HT estimator divides by is positive.
        let weights = vec![0.0, 3.0, 0.0, 1.0, 0.0, 2.0, 0.0, 0.0, 1.0];
        let g = DensityGrid::from_weights(bbox(), 3, 3, weights);
        let mut rng = StdRng::seed_from_u64(2015);
        for _ in 0..2_000 {
            let p = g.sample(&mut rng);
            assert!(g.pdf(&p) > 0.0, "sample {p:?} has zero density");
        }
    }

    #[test]
    fn pdf_integrates_to_one_by_monte_carlo() {
        let g = DensityGrid::from_weights(bbox(), 4, 4, (1..=16).map(|i| i as f64).collect());
        // Riemann sum over a fine grid.
        let n = 200;
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                let p =
                    bbox().at_fraction((i as f64 + 0.5) / n as f64, (j as f64 + 0.5) / n as f64);
                sum += g.pdf(&p);
            }
        }
        sum *= bbox().area() / (n * n) as f64;
        assert!((sum - 1.0).abs() < 1e-6, "integral {sum}");
    }
}
