//! Synthetic dataset generators.
//!
//! These generators stand in for the datasets the paper evaluates on
//! (OpenStreetMap-USA POIs joined with Google-Maps ratings and US-Census
//! enrollments; WeChat and Sina Weibo user bases). What the estimators are
//! sensitive to is reproduced faithfully:
//!
//! * **Spatial skew.** Tuples are drawn from a mixture of dense Gaussian
//!   urban clusters (the cities of [`crate::region`]) and a sparse uniform
//!   rural background. This produces Voronoi cells spanning many orders of
//!   magnitude in area, exactly the situation of the paper's Figure 11, and
//!   is what makes density-weighted sampling (§5.2) pay off.
//! * **Attribute distributions.** Review ratings are truncated-normal,
//!   school enrollments log-normal, review counts heavy-tailed, gender a
//!   Bernoulli draw — and none of them depends on the local tuple density,
//!   so attribute values are essentially independent of Voronoi-cell size.
//! * **Planted ground truth.** The "Starbucks" brand is planted with an
//!   exactly known count so that Table 1's relative error can be computed
//!   against a known truth instead of a press release.

use rand::Rng;

use lbs_geom::{Point, Rect};

use crate::dataset::Dataset;
use crate::region;
use crate::tuple::{attrs, Tuple, TupleId};

/// Spatial placement model for generated tuples.
#[derive(Clone, Debug)]
pub enum SpatialModel {
    /// Uniformly random inside the bounding box.
    Uniform,
    /// Urban/rural mixture: with probability `urban_fraction` the tuple is
    /// placed around a cluster centre (chosen proportionally to the centre's
    /// weight) with isotropic Gaussian spread `sigma_km`; otherwise it is
    /// placed uniformly in the box ("rural background").
    Clustered {
        /// Cluster centres with relative weights.
        centers: Vec<(Point, f64)>,
        /// Standard deviation of the Gaussian spread around a centre, in km.
        sigma_km: f64,
        /// Fraction of tuples placed in clusters rather than the background.
        urban_fraction: f64,
    },
    /// Regular lattice: each tuple picks a uniformly random `cols × rows`
    /// cell and lands at the cell centre, jittered by at most
    /// `jitter` × half-cell in each axis. `jitter = 0` stacks tuples exactly
    /// on the lattice points — the adversarial co-located/equidistant
    /// configuration that exercises deterministic kNN tie-breaking.
    Grid {
        /// Lattice columns.
        cols: usize,
        /// Lattice rows.
        rows: usize,
        /// Jitter as a fraction of the half-cell size, in `[0, 1]`.
        jitter: f64,
    },
    /// Zipf-weighted hotspots: `hotspots` centres are scattered uniformly
    /// (deterministically from the dataset seed), the i-th most popular
    /// hotspot attracts tuples with probability ∝ `1 / (i+1)^exponent`, and
    /// tuples spread around their hotspot with Gaussian σ `sigma_km`. This
    /// is the heavy-tailed "few mega-cities, many villages" skew that makes
    /// Voronoi-cell areas span orders of magnitude.
    ZipfHotspot {
        /// Number of hotspot centres.
        hotspots: usize,
        /// Zipf popularity exponent (≥ 0; larger = more skewed).
        exponent: f64,
        /// Standard deviation of the spread around a hotspot, in km.
        sigma_km: f64,
    },
}

impl SpatialModel {
    /// USA-shaped urban/rural mixture.
    pub fn usa() -> Self {
        SpatialModel::Clustered {
            centers: region::usa_cities(),
            sigma_km: 35.0,
            urban_fraction: 0.82,
        }
    }

    /// China-shaped urban/rural mixture (denser clustering: location-enabled
    /// social network users are overwhelmingly urban).
    pub fn china() -> Self {
        SpatialModel::Clustered {
            centers: region::china_cities(),
            sigma_km: 30.0,
            urban_fraction: 0.93,
        }
    }

    /// Resolves any lazily-specified structure into concrete geometry.
    ///
    /// [`SpatialModel::ZipfHotspot`] describes its hotspots only by count
    /// and popularity law; this draws the actual centres (uniformly in
    /// `bbox`, deterministically from `rng`) and returns the equivalent
    /// [`SpatialModel::Clustered`] model, so that every tuple of a dataset
    /// shares the same hotspot geometry. All other models pass through
    /// unchanged. [`ScenarioBuilder::build`] calls this before sampling.
    pub fn materialize<R: Rng>(self, bbox: &Rect, rng: &mut R) -> SpatialModel {
        match self {
            SpatialModel::ZipfHotspot {
                hotspots,
                exponent,
                sigma_km,
            } => {
                let centers: Vec<(Point, f64)> = (0..hotspots.max(1))
                    .map(|i| {
                        let c = uniform_in(bbox, rng);
                        (c, 1.0 / ((i + 1) as f64).powf(exponent.max(0.0)))
                    })
                    .collect();
                SpatialModel::Clustered {
                    centers,
                    sigma_km,
                    // A thin uniform background keeps rural/empty space
                    // non-empty, mirroring the USA/China mixtures.
                    urban_fraction: 0.92,
                }
            }
            other => other,
        }
    }

    /// Draws one location inside `bbox` according to the model.
    ///
    /// # Panics
    /// Panics for [`SpatialModel::ZipfHotspot`], whose hotspot centres only
    /// exist after [`SpatialModel::materialize`].
    pub fn sample<R: Rng>(&self, bbox: &Rect, rng: &mut R) -> Point {
        match self {
            SpatialModel::Uniform => uniform_in(bbox, rng),
            SpatialModel::Grid { cols, rows, jitter } => {
                let (cols, rows) = ((*cols).max(1), (*rows).max(1));
                let cell_w = bbox.width() / cols as f64;
                let cell_h = bbox.height() / rows as f64;
                let cx = rng.gen_range(0..cols);
                let cy = rng.gen_range(0..rows);
                let jitter = jitter.clamp(0.0, 1.0);
                // Jitter in [-jitter, jitter) half-cells around the centre.
                let jx = (rng.gen::<f64>() * 2.0 - 1.0) * jitter;
                let jy = (rng.gen::<f64>() * 2.0 - 1.0) * jitter;
                Point::new(
                    bbox.min_x + (cx as f64 + 0.5 + jx * 0.5) * cell_w,
                    bbox.min_y + (cy as f64 + 0.5 + jy * 0.5) * cell_h,
                )
            }
            SpatialModel::ZipfHotspot { .. } => {
                panic!("ZipfHotspot must be materialize()d before sampling")
            }
            SpatialModel::Clustered {
                centers,
                sigma_km,
                urban_fraction,
            } => {
                if centers.is_empty() || rng.gen::<f64>() >= *urban_fraction {
                    return uniform_in(bbox, rng);
                }
                let total: f64 = centers.iter().map(|(_, w)| *w).sum();
                let mut pick = rng.gen::<f64>() * total;
                let mut chosen = centers[0].0;
                for (c, w) in centers {
                    pick -= *w;
                    if pick <= 0.0 {
                        chosen = *c;
                        break;
                    }
                }
                // Rejection-sample the Gaussian into the box (at most a few
                // iterations in practice since cities sit well inside it).
                for _ in 0..32 {
                    let p = Point::new(
                        chosen.x + gaussian(rng) * sigma_km,
                        chosen.y + gaussian(rng) * sigma_km,
                    );
                    if bbox.contains(&p) {
                        return p;
                    }
                }
                // A cluster centre that never lands inside the box (e.g. the
                // caller shrank the bounding box): fall back to a uniform
                // placement instead of piling tuples up on the boundary.
                uniform_in(bbox, rng)
            }
        }
    }
}

/// Standard-normal draw via the Box–Muller transform (keeps the dependency
/// set to plain `rand`).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniform draw inside a rectangle.
pub fn uniform_in<R: Rng>(bbox: &Rect, rng: &mut R) -> Point {
    bbox.at_fraction(rng.gen(), rng.gen())
}

/// Truncated-normal draw clamped into `[lo, hi]`.
fn truncated_normal<R: Rng>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    (mean + gaussian(rng) * sd).clamp(lo, hi)
}

/// Log-normal draw with the given log-space parameters.
fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * gaussian(rng)).exp()
}

/// What kind of tuples a scenario generates.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ScenarioKind {
    /// Points of interest with categories, ratings, enrollments, brands.
    Pois,
    /// Social network users with a gender attribute.
    Users {
        /// Probability that a user is male.
        male_fraction_pct: u32,
    },
}

/// Builder for the named data scenarios used throughout the experiments.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    n: usize,
    bbox: Rect,
    spatial: SpatialModel,
    kind: ScenarioKind,
    starbucks: usize,
    restaurant_fraction: f64,
    school_fraction: f64,
}

impl ScenarioBuilder {
    /// USA POI scenario: `n` POIs (restaurants, schools, banks, cafes) spread
    /// over the USA box with urban clustering, carrying ratings, review
    /// counts, open-on-Sunday flags and school enrollments. Roughly 2 % of
    /// the POIs are planted as "Starbucks" cafes (override with
    /// [`ScenarioBuilder::with_starbucks`]).
    pub fn usa_pois(n: usize) -> Self {
        ScenarioBuilder {
            n,
            bbox: region::usa(),
            spatial: SpatialModel::usa(),
            kind: ScenarioKind::Pois,
            starbucks: n / 50,
            restaurant_fraction: 0.55,
            school_fraction: 0.25,
        }
    }

    /// WeChat-like user base over China: gender split ≈ 67 % male — the
    /// figure the paper estimates (Table 1).
    pub fn wechat_users(n: usize) -> Self {
        ScenarioBuilder {
            n,
            bbox: region::china(),
            spatial: SpatialModel::china(),
            kind: ScenarioKind::Users {
                male_fraction_pct: 67,
            },
            starbucks: 0,
            restaurant_fraction: 0.0,
            school_fraction: 0.0,
        }
    }

    /// Sina-Weibo-like user base over China: gender split ≈ 50.4 % male.
    pub fn weibo_users(n: usize) -> Self {
        ScenarioBuilder {
            n,
            bbox: region::china(),
            spatial: SpatialModel::china(),
            kind: ScenarioKind::Users {
                male_fraction_pct: 50,
            },
            starbucks: 0,
            restaurant_fraction: 0.0,
            school_fraction: 0.0,
        }
    }

    /// Uniformly scattered unattributed points — handy for unit tests and
    /// micro-benchmarks where the attribute machinery is irrelevant.
    pub fn uniform_points(n: usize, bbox: Rect) -> Self {
        ScenarioBuilder {
            n,
            bbox,
            spatial: SpatialModel::Uniform,
            kind: ScenarioKind::Pois,
            starbucks: 0,
            restaurant_fraction: 1.0,
            school_fraction: 0.0,
        }
    }

    /// POIs on a jittered `cols × rows` lattice over the USA box. With
    /// `jitter = 0` every lattice point stacks multiple co-located tuples —
    /// the degenerate equidistant configuration that stresses deterministic
    /// kNN tie-breaking and duplicate-distance cell geometry.
    pub fn grid_pois(n: usize, cols: usize, rows: usize, jitter: f64) -> Self {
        ScenarioBuilder {
            n,
            bbox: region::usa(),
            spatial: SpatialModel::Grid { cols, rows, jitter },
            kind: ScenarioKind::Pois,
            starbucks: n / 50,
            restaurant_fraction: 0.55,
            school_fraction: 0.25,
        }
    }

    /// POIs drawn from `hotspots` Zipf-popular hotspots over the USA box —
    /// heavier spatial skew than the city mixture (a handful of hotspots
    /// absorb most tuples), the worst case for uniform query sampling.
    pub fn zipf_hotspot_pois(n: usize, hotspots: usize, exponent: f64) -> Self {
        let bbox = region::usa();
        ScenarioBuilder {
            n,
            bbox,
            spatial: SpatialModel::ZipfHotspot {
                hotspots,
                exponent,
                sigma_km: bbox.diagonal() * 0.008,
            },
            kind: ScenarioKind::Pois,
            starbucks: n / 50,
            restaurant_fraction: 0.55,
            school_fraction: 0.25,
        }
    }

    /// Overrides the bounding box.
    ///
    /// Cluster centres of a clustered spatial model are remapped into the new
    /// box (preserving their relative positions) and the cluster spread is
    /// scaled with the box diagonal, so that shrinking a continental scenario
    /// down to a test-sized box keeps its urban/rural structure instead of
    /// clamping every city onto the boundary.
    pub fn with_bbox(mut self, bbox: Rect) -> Self {
        let old = self.bbox;
        match &mut self.spatial {
            SpatialModel::Clustered {
                centers, sigma_km, ..
            } if old.width() > 0.0 && old.height() > 0.0 => {
                for (c, _) in centers.iter_mut() {
                    let fx = (c.x - old.min_x) / old.width();
                    let fy = (c.y - old.min_y) / old.height();
                    *c = bbox.at_fraction(fx.clamp(0.0, 1.0), fy.clamp(0.0, 1.0));
                }
                let scale = bbox.diagonal() / old.diagonal();
                *sigma_km *= scale;
            }
            // Hotspot centres are drawn inside the final box at build time;
            // only the spread needs rescaling.
            SpatialModel::ZipfHotspot { sigma_km, .. } if old.diagonal() > 0.0 => {
                *sigma_km *= bbox.diagonal() / old.diagonal();
            }
            _ => {}
        }
        self.bbox = bbox;
        self
    }

    /// Overrides the spatial model.
    pub fn with_spatial(mut self, spatial: SpatialModel) -> Self {
        self.spatial = spatial;
        self
    }

    /// Plants exactly `count` "Starbucks" cafes (count is capped at `n`).
    pub fn with_starbucks(mut self, count: usize) -> Self {
        self.starbucks = count.min(self.n);
        self
    }

    /// Number of tuples the builder will generate.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The spatial model tuples will be drawn from.
    pub fn spatial(&self) -> &SpatialModel {
        &self.spatial
    }

    /// Generates the dataset.
    pub fn build<R: Rng>(&self, rng: &mut R) -> Dataset {
        let spatial = self.spatial.clone().materialize(&self.bbox, rng);
        let mut tuples = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let id = i as TupleId;
            let location = spatial.sample(&self.bbox, rng);
            let tuple = match &self.kind {
                ScenarioKind::Pois => self.make_poi(id, location, i, rng),
                ScenarioKind::Users { male_fraction_pct } => {
                    make_user(id, location, *male_fraction_pct, rng)
                }
            };
            tuples.push(tuple);
        }
        Dataset::new(tuples, self.bbox)
    }

    fn make_poi<R: Rng>(&self, id: TupleId, location: Point, index: usize, rng: &mut R) -> Tuple {
        // The first `self.starbucks` POIs become the planted Starbucks cafes;
        // because locations are drawn i.i.d. this does not bias their spatial
        // placement.
        if index < self.starbucks {
            return Tuple::new(id, location)
                .with_attr(attrs::CATEGORY, "cafe")
                .with_attr(attrs::BRAND, "Starbucks")
                .with_attr(attrs::NAME, format!("Starbucks #{id}"))
                .with_attr(attrs::RATING, truncated_normal(rng, 4.0, 0.4, 1.0, 5.0))
                .with_attr(attrs::REVIEW_COUNT, log_normal(rng, 4.0, 1.0).round())
                .with_attr(attrs::OPEN_SUNDAY, rng.gen_bool(0.9))
                .with_attr(attrs::PROMINENCE, rng.gen_range(0.3..1.0));
        }
        let roll: f64 = rng.gen();
        if roll < self.restaurant_fraction {
            Tuple::new(id, location)
                .with_attr(attrs::CATEGORY, "restaurant")
                .with_attr(attrs::NAME, format!("Restaurant #{id}"))
                .with_attr(attrs::RATING, truncated_normal(rng, 3.7, 0.7, 1.0, 5.0))
                .with_attr(attrs::REVIEW_COUNT, log_normal(rng, 3.0, 1.2).round())
                .with_attr(attrs::OPEN_SUNDAY, rng.gen_bool(0.55))
                .with_attr(attrs::PROMINENCE, rng.gen_range(0.0..1.0))
        } else if roll < self.restaurant_fraction + self.school_fraction {
            Tuple::new(id, location)
                .with_attr(attrs::CATEGORY, "school")
                .with_attr(attrs::NAME, format!("School #{id}"))
                .with_attr(attrs::ENROLLMENT, log_normal(rng, 6.0, 0.7).round())
                .with_attr(attrs::PROMINENCE, rng.gen_range(0.0..0.6))
        } else if roll
            < self.restaurant_fraction
                + self.school_fraction
                + 0.5 * (1.0 - self.restaurant_fraction - self.school_fraction)
        {
            Tuple::new(id, location)
                .with_attr(attrs::CATEGORY, "bank")
                .with_attr(attrs::NAME, format!("Bank #{id}"))
                .with_attr(attrs::PROMINENCE, rng.gen_range(0.0..0.8))
        } else {
            Tuple::new(id, location)
                .with_attr(attrs::CATEGORY, "cafe")
                .with_attr(attrs::NAME, format!("Cafe #{id}"))
                .with_attr(attrs::BRAND, "Independent")
                .with_attr(attrs::RATING, truncated_normal(rng, 3.9, 0.6, 1.0, 5.0))
                .with_attr(attrs::REVIEW_COUNT, log_normal(rng, 2.5, 1.0).round())
                .with_attr(attrs::OPEN_SUNDAY, rng.gen_bool(0.6))
                .with_attr(attrs::PROMINENCE, rng.gen_range(0.0..1.0))
        }
    }
}

fn make_user<R: Rng>(id: TupleId, location: Point, male_pct: u32, rng: &mut R) -> Tuple {
    let male = rng.gen_range(0..100) < male_pct;
    Tuple::new(id, location)
        .with_attr(attrs::NAME, format!("user_{id}"))
        .with_attr(attrs::GENDER, if male { "male" } else { "female" })
        .with_attr(attrs::PROMINENCE, rng.gen_range(0.0..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn usa_pois_have_expected_attributes() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = ScenarioBuilder::usa_pois(2_000).build(&mut rng);
        assert_eq!(d.len(), 2_000);
        let restaurants = d.count_where(|t| t.text_eq(attrs::CATEGORY, "restaurant"));
        let schools = d.count_where(|t| t.text_eq(attrs::CATEGORY, "school"));
        // Roughly the configured proportions.
        assert!(
            (restaurants as f64 / 2_000.0 - 0.55).abs() < 0.06,
            "restaurants {restaurants}"
        );
        assert!(
            (schools as f64 / 2_000.0 - 0.25).abs() < 0.05,
            "schools {schools}"
        );
        // Every school has an enrollment; every restaurant a rating in range.
        for t in d.tuples() {
            if t.text_eq(attrs::CATEGORY, "school") {
                assert!(t.num(attrs::ENROLLMENT).unwrap() > 0.0);
            }
            if t.text_eq(attrs::CATEGORY, "restaurant") {
                let r = t.num(attrs::RATING).unwrap();
                assert!((1.0..=5.0).contains(&r));
            }
            assert!(d.bbox().contains(&t.location));
        }
    }

    #[test]
    fn starbucks_count_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = ScenarioBuilder::usa_pois(1_000)
            .with_starbucks(37)
            .build(&mut rng);
        assert_eq!(d.count_where(|t| t.text_eq(attrs::BRAND, "Starbucks")), 37);
    }

    #[test]
    fn starbucks_capped_at_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = ScenarioBuilder::usa_pois(10)
            .with_starbucks(50)
            .build(&mut rng);
        assert_eq!(d.count_where(|t| t.text_eq(attrs::BRAND, "Starbucks")), 10);
    }

    #[test]
    fn wechat_gender_ratio_is_roughly_67_33() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = ScenarioBuilder::wechat_users(20_000).build(&mut rng);
        let male = d.count_where(|t| t.text_eq(attrs::GENDER, "male"));
        let frac = male as f64 / d.len() as f64;
        assert!((frac - 0.67).abs() < 0.02, "male fraction {frac}");
    }

    #[test]
    fn weibo_gender_ratio_is_roughly_even() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = ScenarioBuilder::weibo_users(20_000).build(&mut rng);
        let male = d.count_where(|t| t.text_eq(attrs::GENDER, "male"));
        let frac = male as f64 / d.len() as f64;
        assert!((frac - 0.50).abs() < 0.02, "male fraction {frac}");
    }

    #[test]
    fn clustered_model_is_actually_clustered() {
        // Compare the average nearest-city distance of clustered vs uniform
        // placements: clustered tuples must be much closer to cities.
        let mut rng = StdRng::seed_from_u64(5);
        let clustered = ScenarioBuilder::usa_pois(1_500).build(&mut rng);
        let uniform = ScenarioBuilder::uniform_points(1_500, region::usa()).build(&mut rng);
        let cities = region::usa_cities();
        let avg_city_dist = |d: &Dataset| {
            d.locations()
                .map(|p| {
                    cities
                        .iter()
                        .map(|(c, _)| c.distance(&p))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / d.len() as f64
        };
        let dc = avg_city_dist(&clustered);
        let du = avg_city_dist(&uniform);
        assert!(dc < du * 0.5, "clustered {dc} km vs uniform {du} km");
    }

    #[test]
    fn uniform_points_fill_the_box() {
        let bbox = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let mut rng = StdRng::seed_from_u64(6);
        let d = ScenarioBuilder::uniform_points(500, bbox).build(&mut rng);
        assert_eq!(d.len(), 500);
        // Each quadrant gets a reasonable share.
        let q1 = d.count_where(|t| t.location.x < 5.0 && t.location.y < 5.0);
        assert!(q1 > 80 && q1 < 170, "quadrant count {q1}");
    }

    #[test]
    fn grid_model_stacks_tuples_on_the_lattice_without_jitter() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = ScenarioBuilder::grid_pois(300, 5, 4, 0.0).build(&mut rng);
        // Every location is exactly one of the 20 cell centres.
        let mut distinct: Vec<(u64, u64)> = d
            .locations()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() <= 20,
            "expected at most 20 lattice points, got {}",
            distinct.len()
        );
        // 300 tuples over ≤20 points: co-located stacks are guaranteed.
        assert!(distinct.len() < 300);
        for t in d.tuples() {
            assert!(d.bbox().contains(&t.location));
        }
    }

    #[test]
    fn grid_jitter_spreads_tuples_inside_their_cells() {
        let mut rng = StdRng::seed_from_u64(22);
        let d = ScenarioBuilder::grid_pois(300, 5, 4, 0.8).build(&mut rng);
        let mut distinct: Vec<(u64, u64)> = d
            .locations()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 300, "jittered tuples must not stack");
        for t in d.tuples() {
            assert!(d.bbox().contains(&t.location));
        }
    }

    #[test]
    fn zipf_hotspots_concentrate_mass_on_the_top_hotspot() {
        let mut rng = StdRng::seed_from_u64(23);
        let builder = ScenarioBuilder::zipf_hotspot_pois(4_000, 16, 1.4);
        let d = builder.build(&mut rng);
        assert_eq!(d.len(), 4_000);
        // Recover the materialized hotspot geometry the same way build()
        // does and check the popularity skew: the most popular hotspot
        // holds several times the tuples of a mid-ranked one.
        let mut geom_rng = StdRng::seed_from_u64(23);
        let SpatialModel::Clustered { centers, .. } = builder
            .spatial()
            .clone()
            .materialize(&d.bbox(), &mut geom_rng)
        else {
            panic!("zipf must materialize into a clustered model");
        };
        let nearest_hotspot = |p: &Point| -> usize {
            centers
                .iter()
                .enumerate()
                .min_by(|(_, (a, _)), (_, (b, _))| a.distance(p).total_cmp(&b.distance(p)))
                .map(|(i, _)| i)
                .unwrap()
        };
        let mut counts = vec![0usize; centers.len()];
        for p in d.locations() {
            counts[nearest_hotspot(&p)] += 1;
        }
        let top = counts[0];
        let mid = counts[centers.len() / 2].max(1);
        assert!(
            top > 2 * mid,
            "zipf skew missing: top hotspot {top} vs mid {mid}"
        );
    }

    #[test]
    fn zipf_builds_are_deterministic_given_seed() {
        let b = ScenarioBuilder::zipf_hotspot_pois(200, 8, 1.2);
        let d1 = b.build(&mut StdRng::seed_from_u64(31));
        let d2 = b.build(&mut StdRng::seed_from_u64(31));
        assert_eq!(d1.tuples(), d2.tuples());
    }

    #[test]
    #[should_panic(expected = "materialize")]
    fn sampling_an_unmaterialized_zipf_model_panics() {
        let model = SpatialModel::ZipfHotspot {
            hotspots: 4,
            exponent: 1.0,
            sigma_km: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let _ = model.sample(&region::usa(), &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let d1 = ScenarioBuilder::usa_pois(100).build(&mut StdRng::seed_from_u64(9));
        let d2 = ScenarioBuilder::usa_pois(100).build(&mut StdRng::seed_from_u64(9));
        assert_eq!(d1.tuples(), d2.tuples());
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}

#[cfg(test)]
mod bbox_override_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn with_bbox_rescales_cluster_centres() {
        let small = Rect::from_bounds(0.0, 0.0, 200.0, 200.0);
        let mut rng = StdRng::seed_from_u64(77);
        let d = ScenarioBuilder::usa_pois(400)
            .with_bbox(small)
            .build(&mut rng);
        // Every tuple is inside the new box and the tuples are not piled up
        // on the boundary (the old clamping failure mode).
        let mut on_boundary = 0usize;
        for t in d.tuples() {
            assert!(small.contains(&t.location));
            if !small.contains_strict(&t.location) {
                on_boundary += 1;
            }
        }
        assert!(
            on_boundary < 10,
            "{on_boundary} tuples stuck on the boundary"
        );
        // The data is still clustered: a majority of tuples are within a
        // small fraction of the box of at least one other tuple.
    }
}
