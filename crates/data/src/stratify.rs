//! Region stratifiers: partition a query region into disjoint strata.
//!
//! Stratified estimation splits the query region into disjoint rectangles,
//! runs an independent estimation session inside each, and recombines the
//! per-stratum answers with a stratified Horvitz–Thompson combiner (see
//! `lbs_core::stratified`). This module owns the *partitioning* half of
//! that contract: given a region and a rule, produce a list of [`Stratum`]
//! rectangles that tile the region **exactly** — shared boundary
//! coordinates are computed once, so adjacent strata agree bitwise on their
//! common edge, interiors are disjoint, and the union is the region.
//!
//! Two rules are provided:
//!
//! * [`Stratifier::Grid`] — a near-square uniform tiling with a requested
//!   tile count (the classical areal stratification);
//! * [`Stratifier::Density`] — equal-mass vertical slabs cut at the column
//!   boundaries of a [`DensityGrid`], so each stratum carries roughly the
//!   same probability mass of the external-knowledge density (paper §5.2).
//!   The density only decides *where the boundaries lie*; the statistical
//!   weight of each stratum is computed later against the sampling design
//!   actually in use.

use serde::{Deserialize, Serialize};

use lbs_geom::Rect;

use crate::density::DensityGrid;

/// One stratum of a partitioned query region.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stratum {
    /// Index of the stratum within its partition (0-based, stable across
    /// runs — it feeds the per-stratum RNG seed derivation).
    pub id: usize,
    /// The stratum's rectangle.
    pub rect: Rect,
}

impl Stratum {
    /// The stratum's share of the region by area (the statistical weight
    /// under a *uniform* sampling design).
    pub fn area_weight(&self, region: &Rect) -> f64 {
        self.rect.area() / region.area()
    }
}

/// A rule for partitioning a region into disjoint strata.
#[derive(Clone, Debug)]
pub enum Stratifier {
    /// Near-square uniform grid tiling with (exactly) `count` tiles.
    Grid {
        /// Requested number of tiles (clamped to at least 1). The tiling is
        /// the most nearly square `cols × rows` factorization of the count.
        count: usize,
    },
    /// Equal-mass vertical slabs, cut at the density grid's column
    /// boundaries.
    Density {
        /// The density whose column masses pick the slab boundaries. Its
        /// bounding box is expected to cover the query region (boundaries
        /// are clamped into the region otherwise).
        grid: DensityGrid,
        /// Requested number of slabs (clamped to `[1, grid columns]` so that
        /// every slab spans at least one whole column).
        count: usize,
    },
}

impl Stratifier {
    /// A near-square uniform grid tiling with `count` tiles.
    pub fn grid(count: usize) -> Self {
        Stratifier::Grid { count }
    }

    /// Equal-mass vertical slabs from a density grid.
    pub fn density(grid: DensityGrid, count: usize) -> Self {
        Stratifier::Density { grid, count }
    }

    /// Partitions `region` into disjoint strata whose union is the region.
    ///
    /// Boundary coordinates are computed once and shared between adjacent
    /// strata, so the tiling is exact: no gaps, no overlaps, and the outer
    /// boundary reproduces the region's bounds bitwise.
    pub fn strata(&self, region: &Rect) -> Vec<Stratum> {
        match self {
            Stratifier::Grid { count } => grid_strata(region, (*count).max(1)),
            Stratifier::Density { grid, count } => density_strata(region, grid, (*count).max(1)),
        }
    }
}

/// The most nearly square `cols × rows` factorization of `count`
/// (`cols >= rows`; prime counts degenerate to a `count × 1` strip).
fn near_square_factors(count: usize) -> (usize, usize) {
    let mut rows = (count as f64).sqrt().floor() as usize;
    rows = rows.clamp(1, count);
    while count % rows != 0 {
        rows -= 1;
    }
    (count / rows, rows)
}

fn grid_strata(region: &Rect, count: usize) -> Vec<Stratum> {
    let (cols, rows) = near_square_factors(count);
    // Shared boundary coordinates: tile (c, r) spans [xs[c], xs[c+1]] ×
    // [ys[r], ys[r+1]], so adjacent tiles agree bitwise on their common
    // edge and the outer tiles reproduce the region bounds exactly.
    let xs: Vec<f64> = (0..=cols)
        .map(|i| {
            if i == cols {
                region.max_x
            } else {
                region.min_x + region.width() * i as f64 / cols as f64
            }
        })
        .collect();
    let ys: Vec<f64> = (0..=rows)
        .map(|j| {
            if j == rows {
                region.max_y
            } else {
                region.min_y + region.height() * j as f64 / rows as f64
            }
        })
        .collect();
    let mut strata = Vec::with_capacity(count);
    for r in 0..rows {
        for c in 0..cols {
            strata.push(Stratum {
                id: r * cols + c,
                rect: Rect::from_bounds(xs[c], ys[r], xs[c + 1], ys[r + 1]),
            });
        }
    }
    strata
}

fn density_strata(region: &Rect, grid: &DensityGrid, count: usize) -> Vec<Stratum> {
    let (cols, rows) = grid.resolution();
    let count = count.min(cols);
    // Mass per density-grid column (the density is piecewise constant, so
    // pdf-at-centre × cell area is the exact cell mass).
    let mut prefix = vec![0.0f64; cols + 1];
    for c in 0..cols {
        let mut mass = 0.0;
        for r in 0..rows {
            let cell = grid.cell_rect(c, r);
            mass += grid.pdf(&cell.center()) * cell.area();
        }
        prefix[c + 1] = prefix[c] + mass;
    }
    let total = prefix[cols];

    // Column index after which each cut falls: the first prefix reaching
    // h/count of the total mass, nudged so every slab keeps at least one
    // whole column. A degenerate (zero-mass) grid falls back to equal-width
    // slabs.
    let mut bounds = vec![0usize];
    for h in 1..count {
        let b = if total > 0.0 {
            let target = total * h as f64 / count as f64;
            prefix.partition_point(|&p| p < target)
        } else {
            cols * h / count
        };
        let prev = *bounds.last().expect("bounds starts non-empty");
        bounds.push(b.clamp(prev + 1, cols - (count - h)));
    }
    bounds.push(cols);

    // Column boundary `b` maps to an x coordinate on the grid, clamped into
    // the region; the outermost boundaries are the region bounds bitwise.
    let gb = grid.bbox();
    let x_of = |b: usize| -> f64 {
        if b == 0 {
            region.min_x
        } else if b == cols {
            region.max_x
        } else {
            (gb.min_x + gb.width() * b as f64 / cols as f64).clamp(region.min_x, region.max_x)
        }
    };
    (0..count)
        .map(|h| Stratum {
            id: h,
            rect: Rect::from_bounds(
                x_of(bounds[h]),
                region.min_y,
                x_of(bounds[h + 1]),
                region.max_y,
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::from_bounds(-3.0, 2.0, 97.0, 52.0)
    }

    /// Strata tile the region: shared edges bitwise, outer bounds bitwise,
    /// areas summing to the region area.
    fn assert_tiles(strata: &[Stratum], region: &Rect) {
        assert!(!strata.is_empty());
        for (i, s) in strata.iter().enumerate() {
            assert_eq!(s.id, i, "ids are the partition order");
            assert!(s.rect.min_x >= region.min_x && s.rect.max_x <= region.max_x);
            assert!(s.rect.min_y >= region.min_y && s.rect.max_y <= region.max_y);
        }
        // Interiors are pairwise disjoint.
        for a in strata {
            for b in strata {
                if a.id == b.id {
                    continue;
                }
                let overlap = (a.rect.max_x.min(b.rect.max_x) - a.rect.min_x.max(b.rect.min_x))
                    .max(0.0)
                    * (a.rect.max_y.min(b.rect.max_y) - a.rect.min_y.max(b.rect.min_y)).max(0.0);
                assert!(
                    overlap <= 0.0,
                    "strata {} and {} overlap by {overlap}",
                    a.id,
                    b.id
                );
            }
        }
        let area: f64 = strata.iter().map(|s| s.rect.area()).sum();
        assert!(
            (area - region.area()).abs() <= 1e-9 * region.area(),
            "tiling loses area: {area} vs {}",
            region.area()
        );
        let weight: f64 = strata.iter().map(|s| s.area_weight(region)).sum();
        assert!((weight - 1.0).abs() <= 1e-12, "weights sum to {weight}");
    }

    #[test]
    fn grid_tiling_is_exact_for_many_counts() {
        for count in 1..=16 {
            let strata = Stratifier::grid(count).strata(&region());
            assert_eq!(strata.len(), count);
            assert_tiles(&strata, &region());
        }
    }

    #[test]
    fn grid_count_one_is_the_region_bitwise() {
        let strata = Stratifier::grid(1).strata(&region());
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].rect, region());
    }

    #[test]
    fn grid_shares_boundaries_bitwise() {
        let strata = Stratifier::grid(6).strata(&region());
        // 6 = 3 × 2: tile 0 and tile 1 share an x boundary; tile 0 and
        // tile 3 share a y boundary.
        assert_eq!(
            strata[0].rect.max_x.to_bits(),
            strata[1].rect.min_x.to_bits()
        );
        assert_eq!(
            strata[0].rect.max_y.to_bits(),
            strata[3].rect.min_y.to_bits()
        );
    }

    #[test]
    fn density_slabs_balance_mass() {
        // All mass in the left quarter: the first slab must be narrow.
        let r = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        let mut weights = vec![0.0; 16];
        weights[0] = 6.0;
        weights[1] = 6.0;
        for w in weights.iter_mut().skip(2) {
            *w = 1.0;
        }
        let grid = DensityGrid::from_weights(r, 16, 1, weights);
        let strata = Stratifier::density(grid, 4).strata(&r);
        assert_eq!(strata.len(), 4);
        assert_tiles(&strata, &r);
        // The heavy columns hold ~46% of the mass in the left eighth of the
        // region, so the first slab is far narrower than an equal split.
        assert!(
            strata[0].rect.width() < 25.0,
            "first slab width {}",
            strata[0].rect.width()
        );
    }

    #[test]
    fn density_count_clamps_to_columns() {
        let r = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        let grid = DensityGrid::from_weights(r, 3, 1, vec![1.0, 1.0, 1.0]);
        let strata = Stratifier::density(grid, 9).strata(&r);
        assert_eq!(strata.len(), 3, "one slab per column at most");
        assert_tiles(&strata, &r);
    }

    #[test]
    fn density_uniform_mass_gives_equal_slabs() {
        let r = Rect::from_bounds(0.0, 0.0, 80.0, 40.0);
        let grid = DensityGrid::from_weights(r, 8, 2, vec![1.0; 16]);
        let strata = Stratifier::density(grid, 4).strata(&r);
        assert_tiles(&strata, &r);
        for s in &strata {
            assert!((s.rect.width() - 20.0).abs() < 1e-9);
        }
    }
}
