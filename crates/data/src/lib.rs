//! # lbs-data
//!
//! Dataset model and synthetic data generators for the LBS aggregate
//! estimation reproduction.
//!
//! The paper evaluates its estimators on
//!
//! * the USA portion of **OpenStreetMap** POIs (restaurants, schools, banks,
//!   …) enriched with Google-Maps review ratings and US-Census school
//!   enrollments,
//! * the user bases of **WeChat** and **Sina Weibo** (gender attribute), and
//! * **US-Census population density** as external knowledge for weighted
//!   query sampling.
//!
//! None of those datasets can be shipped, so this crate generates synthetic
//! substitutes that preserve the properties the estimators are sensitive to:
//! a heavily skewed spatial distribution (dense urban clusters over a sparse
//! rural background, producing the 1 km² –100 000 km² spread of Voronoi-cell
//! areas visible in the paper's Figure 11) and aggregate attributes whose
//! values are *not* correlated with Voronoi-cell size (which is what makes
//! inverse-probability weighting necessary in the first place).
//!
//! | module | contents |
//! |--------|----------|
//! | [`mod@tuple`] | [`Tuple`], typed attribute values, attribute name constants |
//! | [`dataset`] | [`Dataset`] container and ground-truth aggregate helpers |
//! | [`generators`] | spatial mixtures and the named scenario builders |
//! | [`density`] | population-density grid (census substitute) |
//! | [`region`] | named bounding boxes (USA, Austin TX, China, …) |
//! | [`stratify`] | region stratifiers for stratified estimation |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod density;
pub mod generators;
pub mod region;
pub mod stratify;
pub mod tuple;

pub use dataset::Dataset;
pub use density::DensityGrid;
pub use generators::{ScenarioBuilder, SpatialModel};
pub use stratify::{Stratifier, Stratum};
pub use tuple::{attrs, AttrValue, Tuple, TupleId};
