//! # lbs-index
//!
//! Exact k-nearest-neighbour spatial indexes over 2-D points.
//!
//! The location based services modelled by the paper answer kNN queries over
//! their hidden tuple databases. This crate is the "database side" of the
//! simulator in `lbs-service`: it stores the tuple locations and answers
//! exact kNN and radius queries. Three interchangeable backends are provided
//! behind the [`SpatialIndex`] trait:
//!
//! * [`BruteForceIndex`] — the obviously-correct `O(n)` scan, used as the
//!   oracle in tests and fine for small databases;
//! * [`GridIndex`] — a uniform bucket grid with ring-expansion search, the
//!   default backend of the simulator (the experiment datasets are roughly
//!   uniform within urban clusters, which grids handle well);
//! * [`KdTree`] — a classic median-split k-d tree with branch-and-bound
//!   search, better for very skewed data.
//!
//! All backends return *exact* results ordered by increasing Euclidean
//! distance with ties broken by point id, so any backend can be substituted
//! for any other without changing simulator behaviour.
//!
//! Every backend is immutable after `build` and `Send + Sync` (enforced by
//! the [`SpatialIndex`] supertraits and a compile-time test), so one index
//! can serve concurrent readers — which is what the parallel sample driver
//! in `lbs-core` does when it fans estimator samples across threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bruteforce;
mod grid;
mod kdtree;

pub use bruteforce::BruteForceIndex;
pub use grid::GridIndex;
pub use kdtree::KdTree;

use lbs_geom::Point;

/// A neighbour returned by a kNN or radius query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the point in the slice the index was built over.
    pub id: usize,
    /// Euclidean distance from the query location to the point.
    pub distance: f64,
}

/// Exact spatial queries over a fixed set of 2-D points.
///
/// Implementations are built once from a slice of points and are immutable
/// afterwards, mirroring the "static hidden database" assumption the paper
/// makes for LBS such as Google Maps (§3.2.2).
pub trait SpatialIndex: Send + Sync {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// `true` when the index contains no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` nearest points to `query`, ordered by increasing distance and
    /// then by id. Returns fewer than `k` neighbours when the index holds
    /// fewer points.
    fn k_nearest(&self, query: &Point, k: usize) -> Vec<Neighbor>;

    /// All points within `radius` of `query`, ordered by increasing distance
    /// and then by id.
    fn within_radius(&self, query: &Point, radius: f64) -> Vec<Neighbor>;

    /// The nearest point to `query`, if the index is non-empty.
    fn nearest(&self, query: &Point) -> Option<Neighbor> {
        self.k_nearest(query, 1).into_iter().next()
    }
}

/// Sorts neighbours by `(distance, id)` — the canonical order every backend
/// must produce so that results are deterministic and backend-independent.
///
/// `total_cmp` orders exactly like `partial_cmp` on the finite distances real
/// queries produce, but stays a total order even if a NaN distance ever
/// sneaks in (a NaN-poisoned comparator would make the sort
/// implementation-defined instead of deterministic).
pub(crate) fn sort_neighbors(neighbors: &mut [Neighbor]) {
    neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    fn backends(points: &[Point]) -> Vec<(&'static str, Box<dyn SpatialIndex>)> {
        vec![
            (
                "brute",
                Box::new(BruteForceIndex::build(points)) as Box<dyn SpatialIndex>,
            ),
            ("grid", Box::new(GridIndex::build(points))),
            ("kdtree", Box::new(KdTree::build(points))),
        ]
    }

    #[test]
    fn all_backends_agree_on_knn() {
        let points = random_points(400, 11);
        let oracle = BruteForceIndex::build(&points);
        let mut rng = StdRng::seed_from_u64(99);
        for (name, idx) in backends(&points) {
            for _ in 0..50 {
                let q = Point::new(rng.gen_range(-100.0..1100.0), rng.gen_range(-100.0..1100.0));
                let k = rng.gen_range(1..20);
                let got = idx.k_nearest(&q, k);
                let expected = oracle.k_nearest(&q, k);
                assert_eq!(got.len(), expected.len(), "{name}: result length");
                for (g, e) in got.iter().zip(expected.iter()) {
                    assert_eq!(g.id, e.id, "{name}: neighbour id mismatch");
                    assert!((g.distance - e.distance).abs() < 1e-9, "{name}: distance");
                }
            }
        }
    }

    #[test]
    fn radius_queries_are_bit_identical_across_backends() {
        // The hot loops of all three `within_radius` implementations compare
        // *squared* distances and take a single sqrt per emitted neighbour,
        // over the same `(dx² + dy²)` expression — so the returned distances
        // must agree to the last bit, not merely within a tolerance. This
        // locks the invariant the simulator's pluggable `index` knob relies
        // on: swapping backends can never perturb an estimate.
        let points = random_points(350, 91);
        let oracle = BruteForceIndex::build(&points);
        let mut rng = StdRng::seed_from_u64(17);
        for (name, idx) in backends(&points) {
            for _ in 0..40 {
                let q = Point::new(rng.gen_range(-50.0..1050.0), rng.gen_range(-50.0..1050.0));
                let r = rng.gen_range(0.0..400.0);
                let got: Vec<(usize, u64)> = idx
                    .within_radius(&q, r)
                    .iter()
                    .map(|n| (n.id, n.distance.to_bits()))
                    .collect();
                let want: Vec<(usize, u64)> = oracle
                    .within_radius(&q, r)
                    .iter()
                    .map(|n| (n.id, n.distance.to_bits()))
                    .collect();
                assert_eq!(got, want, "{name}: radius {r} at {q:?}");
            }
        }
    }

    #[test]
    fn knn_distances_are_bit_identical_across_backends() {
        // Same bit-level contract for the kNN path: every backend derives
        // the emitted distance as sqrt(distance_sq) of the identical
        // squared-distance expression.
        let points = random_points(280, 57);
        let oracle = BruteForceIndex::build(&points);
        let mut rng = StdRng::seed_from_u64(23);
        for (name, idx) in backends(&points) {
            for _ in 0..40 {
                let q = Point::new(rng.gen_range(-50.0..1050.0), rng.gen_range(-50.0..1050.0));
                let k = rng.gen_range(1..25);
                let got: Vec<(usize, u64)> = idx
                    .k_nearest(&q, k)
                    .iter()
                    .map(|n| (n.id, n.distance.to_bits()))
                    .collect();
                let want: Vec<(usize, u64)> = oracle
                    .k_nearest(&q, k)
                    .iter()
                    .map(|n| (n.id, n.distance.to_bits()))
                    .collect();
                assert_eq!(got, want, "{name}: k {k} at {q:?}");
            }
        }
    }

    #[test]
    fn all_backends_agree_on_radius() {
        let points = random_points(300, 5);
        let oracle = BruteForceIndex::build(&points);
        let mut rng = StdRng::seed_from_u64(123);
        for (name, idx) in backends(&points) {
            for _ in 0..30 {
                let q = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                let r = rng.gen_range(1.0..200.0);
                let got = idx.within_radius(&q, r);
                let expected = oracle.within_radius(&q, r);
                assert_eq!(
                    got.iter().map(|n| n.id).collect::<Vec<_>>(),
                    expected.iter().map(|n| n.id).collect::<Vec<_>>(),
                    "{name}: radius query mismatch"
                );
            }
        }
    }

    #[test]
    fn empty_index_behaviour() {
        for (name, idx) in backends(&[]) {
            assert!(idx.is_empty(), "{name}");
            assert!(idx.k_nearest(&Point::ORIGIN, 3).is_empty(), "{name}");
            assert!(idx.within_radius(&Point::ORIGIN, 10.0).is_empty(), "{name}");
            assert!(idx.nearest(&Point::ORIGIN).is_none(), "{name}");
        }
    }

    #[test]
    fn k_larger_than_size_returns_everything() {
        let points = random_points(7, 3);
        for (name, idx) in backends(&points) {
            let all = idx.k_nearest(&Point::new(500.0, 500.0), 50);
            assert_eq!(all.len(), 7, "{name}");
        }
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let points = random_points(200, 17);
        for (name, idx) in backends(&points) {
            let res = idx.k_nearest(&Point::new(321.0, 654.0), 25);
            for w in res.windows(2) {
                assert!(w[0].distance <= w[1].distance + 1e-12, "{name}: unsorted");
            }
        }
    }

    #[test]
    fn clustered_points_exercise_grid_rings_and_kdtree_depth() {
        // Points concentrated in two tight clusters far apart, plus a query
        // in the empty middle — this stresses ring expansion and pruning.
        let mut points = Vec::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..150 {
            points.push(Point::new(
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
            ));
        }
        for _ in 0..150 {
            points.push(Point::new(
                rng.gen_range(990.0..1000.0),
                rng.gen_range(990.0..1000.0),
            ));
        }
        let oracle = BruteForceIndex::build(&points);
        for (name, idx) in backends(&points) {
            let q = Point::new(500.0, 500.0);
            let got = idx.k_nearest(&q, 10);
            let expected = oracle.k_nearest(&q, 10);
            assert_eq!(
                got.iter().map(|n| n.id).collect::<Vec<_>>(),
                expected.iter().map(|n| n.id).collect::<Vec<_>>(),
                "{name}"
            );
        }
    }

    #[test]
    fn all_backends_are_send_and_sync() {
        // Compile-time guarantee the parallel sample driver in `lbs-core`
        // relies on: a built index can be shared by reference across worker
        // threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BruteForceIndex>();
        assert_send_sync::<GridIndex>();
        assert_send_sync::<KdTree>();
    }

    #[test]
    fn concurrent_readers_see_identical_answers() {
        // Smoke test for shared read access: several threads hammer the same
        // index and every answer must match the single-threaded oracle.
        let points = random_points(500, 77);
        let grid = GridIndex::build(&points);
        let kdtree = KdTree::build(&points);
        let oracle = BruteForceIndex::build(&points);

        let queries: Vec<(Point, usize)> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..200)
                .map(|_| {
                    (
                        Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                        rng.gen_range(1..15),
                    )
                })
                .collect()
        };
        let expected: Vec<Vec<usize>> = queries
            .iter()
            .map(|(q, k)| oracle.k_nearest(q, *k).iter().map(|n| n.id).collect())
            .collect();

        std::thread::scope(|scope| {
            for worker in 0..4usize {
                let (grid, kdtree, queries, expected) = (&grid, &kdtree, &queries, &expected);
                scope.spawn(move || {
                    // Each worker walks the query list from a different
                    // offset so the threads interleave distinct probes.
                    for i in 0..queries.len() {
                        let slot = (i + worker * 53) % queries.len();
                        let (q, k) = &queries[slot];
                        let got: Vec<usize> = grid.k_nearest(q, *k).iter().map(|n| n.id).collect();
                        assert_eq!(got, expected[slot], "grid, query {slot}");
                        let got: Vec<usize> =
                            kdtree.k_nearest(q, *k).iter().map(|n| n.id).collect();
                        assert_eq!(got, expected[slot], "kdtree, query {slot}");
                    }
                });
            }
        });
    }
}
