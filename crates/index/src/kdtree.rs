//! Median-split k-d tree with branch-and-bound kNN search.
//!
//! The tree recursively splits the point set on the wider axis of its
//! bounding box at the median coordinate. Queries descend into the child
//! containing the query point first and prune the sibling subtree whenever
//! its bounding box cannot contain anything closer than the current k-th best
//! candidate, which keeps the search exact.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lbs_geom::{Point, Rect};

use crate::{sort_neighbors, Neighbor, SpatialIndex};

const LEAF_SIZE: usize = 16;

/// A node of the k-d tree: either a leaf holding point ids or an internal
/// split node.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        ids: Vec<usize>,
    },
    Split {
        /// `true` when the split is on x, `false` for y.
        axis_x: bool,
        /// Split coordinate.
        value: f64,
        /// Child with coordinates `<= value`.
        left: usize,
        /// Child with coordinates `> value`.
        right: usize,
        /// Bounding box of all points in this subtree (for pruning).
        bbox: Rect,
    },
}

/// Median-split k-d tree over 2-D points.
#[derive(Clone, Debug)]
pub struct KdTree {
    points: Vec<Point>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl KdTree {
    /// Builds the tree over a slice of points (the slice is copied).
    pub fn build(points: &[Point]) -> Self {
        let mut tree = KdTree {
            points: points.to_vec(),
            nodes: Vec::new(),
            root: None,
        };
        if !points.is_empty() {
            let ids: Vec<usize> = (0..points.len()).collect();
            let root = tree.build_node(ids);
            tree.root = Some(root);
        }
        tree
    }

    fn build_node(&mut self, mut ids: Vec<usize>) -> usize {
        if ids.len() <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { ids });
            return self.nodes.len() - 1;
        }
        let bbox = Rect::bounding(ids.iter().map(|&i| self.points[i]))
            .expect("non-empty id set always has a bounding box");
        let axis_x = bbox.width() >= bbox.height();
        let mid = ids.len() / 2;
        ids.sort_by(|&a, &b| {
            let (pa, pb) = (self.points[a], self.points[b]);
            let (ka, kb) = if axis_x { (pa.x, pb.x) } else { (pa.y, pb.y) };
            ka.total_cmp(&kb)
        });
        let split_point = self.points[ids[mid]];
        let value = if axis_x { split_point.x } else { split_point.y };
        let right_ids = ids.split_off(mid);
        // Degenerate case: all coordinates equal on this axis — fall back to
        // a leaf to avoid infinite recursion.
        if ids.is_empty() || right_ids.is_empty() {
            let mut all = ids;
            all.extend(right_ids);
            self.nodes.push(Node::Leaf { ids: all });
            return self.nodes.len() - 1;
        }
        let left = self.build_node(ids);
        let right = self.build_node(right_ids);
        self.nodes.push(Node::Split {
            axis_x,
            value,
            left,
            right,
            bbox,
        });
        self.nodes.len() - 1
    }

    fn subtree_bbox(&self, node: usize) -> Option<Rect> {
        match &self.nodes[node] {
            Node::Leaf { ids } => Rect::bounding(ids.iter().map(|&i| self.points[i])),
            Node::Split { bbox, .. } => Some(*bbox),
        }
    }
}

/// Max-heap entry for the running best-k set.
struct Candidate {
    distance_sq: f64,
    id: usize,
}
impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.distance_sq == other.distance_sq && self.id == other.id
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance_sq
            .total_cmp(&other.distance_sq)
            .then(self.id.cmp(&other.id))
    }
}

impl KdTree {
    fn knn_recurse(&self, node: usize, query: &Point, k: usize, heap: &mut BinaryHeap<Candidate>) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &id in ids {
                    let d = query.distance_sq(&self.points[id]);
                    if heap.len() < k {
                        heap.push(Candidate { distance_sq: d, id });
                    } else if let Some(top) = heap.peek() {
                        if d < top.distance_sq || (d == top.distance_sq && id < top.id) {
                            heap.pop();
                            heap.push(Candidate { distance_sq: d, id });
                        }
                    }
                }
            }
            Node::Split {
                axis_x,
                value,
                left,
                right,
                ..
            } => {
                let q_coord = if *axis_x { query.x } else { query.y };
                let (near, far) = if q_coord <= *value {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.knn_recurse(near, query, k, heap);
                // Visit the far side only if its bounding box might contain a
                // better candidate.
                let worst = heap.peek().map(|c| c.distance_sq).unwrap_or(f64::INFINITY);
                let must_visit = heap.len() < k
                    || self
                        .subtree_bbox(far)
                        .map(|b| b.distance_sq_to_point(query) <= worst)
                        .unwrap_or(false);
                if must_visit {
                    self.knn_recurse(far, query, k, heap);
                }
            }
        }
    }

    fn radius_recurse(&self, node: usize, query: &Point, r_sq: f64, out: &mut Vec<Neighbor>) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &id in ids {
                    let d = query.distance_sq(&self.points[id]);
                    if d <= r_sq {
                        out.push(Neighbor {
                            id,
                            distance: d.sqrt(),
                        });
                    }
                }
            }
            Node::Split { left, right, .. } => {
                for child in [*left, *right] {
                    if let Some(bbox) = self.subtree_bbox(child) {
                        if bbox.distance_sq_to_point(query) <= r_sq {
                            self.radius_recurse(child, query, r_sq, out);
                        }
                    }
                }
            }
        }
    }
}

impl SpatialIndex for KdTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn k_nearest(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut heap = BinaryHeap::with_capacity(k + 1);
        self.knn_recurse(root, query, k, &mut heap);
        let mut out: Vec<Neighbor> = heap
            .into_iter()
            .map(|c| Neighbor {
                id: c.id,
                distance: c.distance_sq.sqrt(),
            })
            .collect();
        sort_neighbors(&mut out);
        out
    }

    fn within_radius(&self, query: &Point, radius: f64) -> Vec<Neighbor> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        if radius < 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.radius_recurse(root, query, radius * radius, &mut out);
        sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;

    #[test]
    fn matches_bruteforce_on_skewed_data() {
        // Exponentially spaced points (heavy skew) — the worst case for grid
        // indexes and a good test of the k-d tree pruning.
        let points: Vec<Point> = (0..200)
            .map(|i| {
                let t = i as f64 / 10.0;
                Point::new(t.exp() % 1000.0, (t * 1.7).exp() % 1000.0)
            })
            .collect();
        let tree = KdTree::build(&points);
        let oracle = BruteForceIndex::build(&points);
        for q in [
            Point::new(1.0, 1.0),
            Point::new(500.0, 2.0),
            Point::new(999.0, 999.0),
            Point::new(-10.0, 500.0),
        ] {
            for k in [1, 3, 10, 50] {
                let got: Vec<usize> = tree.k_nearest(&q, k).iter().map(|n| n.id).collect();
                let want: Vec<usize> = oracle.k_nearest(&q, k).iter().map(|n| n.id).collect();
                assert_eq!(got, want, "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn all_identical_points_do_not_recurse_forever() {
        let points = vec![Point::new(3.0, 3.0); 100];
        let tree = KdTree::build(&points);
        let res = tree.k_nearest(&Point::new(3.0, 3.0), 5);
        assert_eq!(res.len(), 5);
        assert_eq!(res[0].id, 0);
    }

    #[test]
    fn collinear_points() {
        let points: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        let tree = KdTree::build(&points);
        let oracle = BruteForceIndex::build(&points);
        let q = Point::new(42.3, 5.0);
        assert_eq!(
            tree.k_nearest(&q, 7)
                .iter()
                .map(|n| n.id)
                .collect::<Vec<_>>(),
            oracle
                .k_nearest(&q, 7)
                .iter()
                .map(|n| n.id)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn radius_query_matches_bruteforce() {
        let points: Vec<Point> = (0..300)
            .map(|i| Point::new((i * 37 % 211) as f64, (i * 53 % 197) as f64))
            .collect();
        let tree = KdTree::build(&points);
        let oracle = BruteForceIndex::build(&points);
        for r in [5.0, 25.0, 100.0] {
            let q = Point::new(100.0, 100.0);
            assert_eq!(
                tree.within_radius(&q, r)
                    .iter()
                    .map(|n| n.id)
                    .collect::<Vec<_>>(),
                oracle
                    .within_radius(&q, r)
                    .iter()
                    .map(|n| n.id)
                    .collect::<Vec<_>>(),
                "radius {r}"
            );
        }
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.k_nearest(&Point::ORIGIN, 3).is_empty());
        assert!(tree.within_radius(&Point::ORIGIN, 5.0).is_empty());
    }
}
