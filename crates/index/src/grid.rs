//! Uniform-grid spatial index with ring-expansion kNN search.
//!
//! The grid partitions the bounding box of the points into roughly
//! `sqrt(n) × sqrt(n)` buckets. A kNN query inspects buckets in growing
//! Chebyshev rings around the query's bucket; the search stops once the
//! closest possible distance of the next unvisited ring exceeds the current
//! k-th best distance, which makes the result exact.

use lbs_geom::{Point, Rect};

use crate::{sort_neighbors, Neighbor, SpatialIndex};

/// Uniform bucket-grid index.
#[derive(Clone, Debug)]
pub struct GridIndex {
    points: Vec<Point>,
    bbox: Rect,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    buckets: Vec<Vec<usize>>,
}

impl GridIndex {
    /// Builds the index over a slice of points (the slice is copied).
    pub fn build(points: &[Point]) -> Self {
        Self::build_with_resolution(points, 0)
    }

    /// Builds the index with an explicit grid resolution (`cols == rows ==
    /// resolution`). A resolution of `0` picks `ceil(sqrt(n))` clamped to
    /// `[1, 1024]`.
    pub fn build_with_resolution(points: &[Point], resolution: usize) -> Self {
        let bbox = Rect::bounding(points.iter().copied())
            .unwrap_or_else(|| Rect::from_bounds(0.0, 0.0, 1.0, 1.0));
        // Guard against a degenerate (zero-extent) bounding box.
        let bbox = if bbox.width() <= 0.0 || bbox.height() <= 0.0 {
            bbox.expanded(1.0)
        } else {
            bbox
        };
        let n = points.len().max(1);
        let res = if resolution == 0 {
            ((n as f64).sqrt().ceil() as usize).clamp(1, 1024)
        } else {
            resolution.clamp(1, 4096)
        };
        let cols = res;
        let rows = res;
        let cell_w = bbox.width() / cols as f64;
        let cell_h = bbox.height() / rows as f64;
        let mut buckets = vec![Vec::new(); cols * rows];
        let mut idx = GridIndex {
            points: points.to_vec(),
            bbox,
            cols,
            rows,
            cell_w,
            cell_h,
            buckets: Vec::new(),
        };
        for (i, p) in points.iter().enumerate() {
            let (cx, cy) = idx.bucket_of(p);
            buckets[cy * cols + cx].push(i);
        }
        idx.buckets = buckets;
        idx
    }

    fn bucket_of(&self, p: &Point) -> (usize, usize) {
        let cx = (((p.x - self.bbox.min_x) / self.cell_w) as isize).clamp(0, self.cols as isize - 1)
            as usize;
        let cy = (((p.y - self.bbox.min_y) / self.cell_h) as isize).clamp(0, self.rows as isize - 1)
            as usize;
        (cx, cy)
    }

    /// Visits the bucket indices on the Chebyshev ring at distance `ring`
    /// from `(cx, cy)`, calling `f` for each existing bucket.
    fn for_ring_buckets<F: FnMut(&[usize])>(&self, cx: usize, cy: usize, ring: usize, mut f: F) {
        let r = ring as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                if dx.abs().max(dy.abs()) != r {
                    continue;
                }
                let nx = cx as isize + dx;
                let ny = cy as isize + dy;
                if nx < 0 || ny < 0 || nx >= self.cols as isize || ny >= self.rows as isize {
                    continue;
                }
                f(&self.buckets[ny as usize * self.cols + nx as usize]);
            }
        }
    }

    fn max_ring(&self) -> usize {
        self.cols.max(self.rows)
    }
}

impl SpatialIndex for GridIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn k_nearest(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let clamped = self.bbox.clamp(query);
        let (cx, cy) = self.bucket_of(&clamped);
        let min_cell = self.cell_w.min(self.cell_h);

        let mut candidates: Vec<Neighbor> = Vec::new();
        let mut ring = 0usize;
        loop {
            self.for_ring_buckets(cx, cy, ring, |bucket| {
                for &id in bucket {
                    candidates.push(Neighbor {
                        id,
                        distance: query.distance(&self.points[id]),
                    });
                }
            });
            // Can we stop? Only when we already have k candidates and the
            // next ring cannot contain anything closer than the current k-th
            // best. A point in ring `r+1` is at least `r * min_cell` away
            // from the query's bucket (conservative bound that also covers a
            // query outside the bounding box via the clamp above).
            if candidates.len() >= k {
                sort_neighbors(&mut candidates);
                let kth = candidates[k - 1].distance;
                let next_ring_min_dist =
                    (ring as f64) * min_cell - query.distance(&clamped) - min_cell;
                if next_ring_min_dist > kth {
                    break;
                }
            }
            ring += 1;
            if ring > self.max_ring() {
                break;
            }
        }
        sort_neighbors(&mut candidates);
        candidates.truncate(k);
        candidates
    }

    fn within_radius(&self, query: &Point, radius: f64) -> Vec<Neighbor> {
        if self.points.is_empty() || radius < 0.0 {
            return Vec::new();
        }
        let clamped = self.bbox.clamp(query);
        let (cx, cy) = self.bucket_of(&clamped);
        let min_cell = self.cell_w.min(self.cell_h);
        // Enough rings to cover `radius` around the query plus the clamp gap.
        let reach = radius + query.distance(&clamped);
        let rings_needed = ((reach / min_cell).ceil() as usize + 2).min(self.max_ring());

        let mut out = Vec::new();
        let r_sq = radius * radius;
        for ring in 0..=rings_needed {
            self.for_ring_buckets(cx, cy, ring, |bucket| {
                for &id in bucket {
                    let d = query.distance_sq(&self.points[id]);
                    if d <= r_sq {
                        out.push(Neighbor {
                            id,
                            distance: d.sqrt(),
                        });
                    }
                }
            });
        }
        sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;

    #[test]
    fn matches_bruteforce_on_grid_layout() {
        // Points on a lattice: many exact ties, stressing tie-breaking.
        let mut points = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                points.push(Point::new(i as f64, j as f64));
            }
        }
        let grid = GridIndex::build(&points);
        let oracle = BruteForceIndex::build(&points);
        for q in [
            Point::new(10.5, 10.5),
            Point::new(0.0, 0.0),
            Point::new(19.0, 19.0),
            Point::new(-5.0, 8.0),
            Point::new(25.0, 25.0),
        ] {
            let got: Vec<usize> = grid.k_nearest(&q, 8).iter().map(|n| n.id).collect();
            let want: Vec<usize> = oracle.k_nearest(&q, 8).iter().map(|n| n.id).collect();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn explicit_resolution_is_respected_and_correct() {
        let points: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 13 % 97) as f64, (i * 29 % 89) as f64))
            .collect();
        let coarse = GridIndex::build_with_resolution(&points, 2);
        let fine = GridIndex::build_with_resolution(&points, 64);
        let oracle = BruteForceIndex::build(&points);
        let q = Point::new(40.0, 40.0);
        let want: Vec<usize> = oracle.k_nearest(&q, 5).iter().map(|n| n.id).collect();
        assert_eq!(
            coarse
                .k_nearest(&q, 5)
                .iter()
                .map(|n| n.id)
                .collect::<Vec<_>>(),
            want
        );
        assert_eq!(
            fine.k_nearest(&q, 5)
                .iter()
                .map(|n| n.id)
                .collect::<Vec<_>>(),
            want
        );
    }

    #[test]
    fn identical_points_handled() {
        let points = vec![Point::new(5.0, 5.0); 10];
        let grid = GridIndex::build(&points);
        let res = grid.k_nearest(&Point::new(5.0, 5.0), 4);
        assert_eq!(
            res.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn radius_far_outside_bbox() {
        let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let grid = GridIndex::build(&points);
        let res = grid.within_radius(&Point::new(100.0, 100.0), 150.0);
        assert_eq!(res.len(), 2);
        let none = grid.within_radius(&Point::new(100.0, 100.0), 10.0);
        assert!(none.is_empty());
    }
}
