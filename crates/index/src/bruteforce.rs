//! Linear-scan spatial index.
//!
//! The brute-force backend is the correctness oracle for the other backends
//! and is perfectly adequate for the small databases used in unit tests. Its
//! kNN query keeps a bounded binary heap of the best `k` candidates, so the
//! cost is `O(n log k)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lbs_geom::Point;

use crate::{sort_neighbors, Neighbor, SpatialIndex};

/// Exact kNN by scanning every point.
#[derive(Clone, Debug, Default)]
pub struct BruteForceIndex {
    points: Vec<Point>,
}

/// Max-heap entry ordered by distance (largest distance on top) so that the
/// heap always holds the current best `k` candidates.
struct HeapEntry {
    distance_sq: f64,
    id: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.distance_sq == other.distance_sq && self.id == other.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Larger distance first; ties resolved by larger id first so that the
        // kept set prefers smaller ids, matching the canonical order.
        self.distance_sq
            .total_cmp(&other.distance_sq)
            .then(self.id.cmp(&other.id))
    }
}

impl BruteForceIndex {
    /// Builds the index over a slice of points (the slice is copied).
    pub fn build(points: &[Point]) -> Self {
        BruteForceIndex {
            points: points.to_vec(),
        }
    }

    /// The indexed points, in id order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }
}

impl SpatialIndex for BruteForceIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn k_nearest(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for (id, p) in self.points.iter().enumerate() {
            let d = query.distance_sq(p);
            if heap.len() < k {
                heap.push(HeapEntry { distance_sq: d, id });
            } else if let Some(top) = heap.peek() {
                if d < top.distance_sq || (d == top.distance_sq && id < top.id) {
                    heap.pop();
                    heap.push(HeapEntry { distance_sq: d, id });
                }
            }
        }
        let mut out: Vec<Neighbor> = heap
            .into_iter()
            .map(|e| Neighbor {
                id: e.id,
                distance: e.distance_sq.sqrt(),
            })
            .collect();
        sort_neighbors(&mut out);
        out
    }

    fn within_radius(&self, query: &Point, radius: f64) -> Vec<Neighbor> {
        let r_sq = radius * radius;
        let mut out: Vec<Neighbor> = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(id, p)| {
                let d = query.distance_sq(p);
                if d <= r_sq {
                    Some(Neighbor {
                        id,
                        distance: d.sqrt(),
                    })
                } else {
                    None
                }
            })
            .collect();
        sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_on_a_line() {
        let points: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let idx = BruteForceIndex::build(&points);
        let res = idx.k_nearest(&Point::new(3.2, 0.0), 3);
        assert_eq!(res.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 4, 2]);
        assert!((res[0].distance - 0.2).abs() < 1e-12);
    }

    #[test]
    fn radius_query_includes_boundary() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let idx = BruteForceIndex::build(&points);
        let res = idx.within_radius(&Point::new(0.0, 0.0), 5.0);
        assert_eq!(res.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn nearest_of_single_point() {
        let idx = BruteForceIndex::build(&[Point::new(7.0, 7.0)]);
        let n = idx.nearest(&Point::new(0.0, 0.0)).unwrap();
        assert_eq!(n.id, 0);
        assert!((n.distance - (98.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_k_returns_empty() {
        let idx = BruteForceIndex::build(&[Point::new(1.0, 1.0)]);
        assert!(idx.k_nearest(&Point::ORIGIN, 0).is_empty());
    }

    #[test]
    fn tie_breaking_prefers_smaller_id() {
        // Two points at the same distance from the query.
        let points = vec![
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(5.0, 0.0),
        ];
        let idx = BruteForceIndex::build(&points);
        let res = idx.k_nearest(&Point::ORIGIN, 1);
        assert_eq!(res[0].id, 0);
        let res2 = idx.k_nearest(&Point::ORIGIN, 2);
        assert_eq!(res2.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1]);
    }
}
