//! Concurrent-load probe of the event-driven serving layer (`repro
//! loadtest`).
//!
//! Starts an in-process [`Server`] on an ephemeral loopback port with a
//! deliberately small submission queue, then hammers it from N concurrent
//! [`HttpClient`]s, each submitting a stream of distinct seed-pinned
//! scenarios over one keep-alive connection. Backpressure (`429 Too Many
//! Requests`) is retried — never counted as a drop — and every served
//! result can be verified bitwise against a local batch run of the same
//! scenario (`check_batch`), which is the determinism contract under
//! concurrent load: admission order may vary run to run, but each job's
//! estimate may not.
//!
//! The outcome is the `loadtest` block of `BENCH_repro.json`
//! ([`LoadtestBenchReport`]): p50/p95/p99 submit→first-estimate latency,
//! jobs/s, keep-alive reuse rate, and the `429` split, gate-checked by
//! [`LoadtestBenchReport::violations`].
//!
//! This module measures wall-clock latencies by design; it is allowlisted
//! for the `ambient-time` lint the way the other probes are. No served
//! estimate depends on any clock read here.

use std::time::{Duration, Instant};

use lbs_bench::{LoadtestBenchReport, Scale, Scenario, ScenarioContext};
use serde::{Deserialize, Value};

use crate::event_loop::{Server, ServerConfig, ServerState};
use crate::http::HttpClient;
use crate::scheduler::{Scheduler, SchedulerConfig};

/// Knobs of [`run_loadtest`], mirroring the `repro loadtest` flags.
///
/// ```
/// use lbs_server::LoadtestOptions;
///
/// let options = LoadtestOptions {
///     clients: 8,                  // --clients
///     jobs_per_client: 2,          // --jobs
///     queue_depth: 4,              // --queue-depth
///     check_batch: true,           // --check-batch
///     ..LoadtestOptions::default()
/// };
/// assert_eq!(options.budget, 120); // --budget
/// assert_eq!(options.seed, 2015);  // --seed
/// assert_eq!(options.threads, 1);  // --threads
/// ```
#[derive(Clone, Debug)]
pub struct LoadtestOptions {
    /// Concurrent client threads (`--clients`).
    pub clients: usize,
    /// Jobs each client submits (`--jobs`).
    pub jobs_per_client: usize,
    /// Submission-queue bound of the probed server (`--queue-depth`) —
    /// small on purpose, so saturation and `429` retries are reachable.
    pub queue_depth: usize,
    /// Query budget of each probe scenario (`--budget`).
    pub budget: u64,
    /// Root seed; every scenario pins a seed derived from it (`--seed`).
    pub seed: u64,
    /// Scheduler worker threads (`--threads`; never changes bits).
    pub threads: usize,
    /// Verify every served result bitwise against a local batch run
    /// (`--check-batch`).
    pub check_batch: bool,
}

impl Default for LoadtestOptions {
    fn default() -> Self {
        LoadtestOptions {
            clients: 4,
            jobs_per_client: 3,
            queue_depth: 8,
            budget: 120,
            seed: 2015,
            threads: 1,
            check_batch: true,
        }
    }
}

/// Builds the scenario client `c` submits as its `j`-th job: a tiny uniform
/// COUNT workload with a pinned per-job seed, so the expected estimate is a
/// pure function of `(c, j, root seed, budget)` — reproducible by the batch
/// check no matter the admission order.
fn loadtest_scenario(c: usize, j: usize, options: &LoadtestOptions) -> (Value, Scenario) {
    let toml = format!(
        "id = \"lt_{c}_{j}\"\nseed = {}\n\n[dataset]\nmodel = \"uniform\"\nsize = {}\n\n\
         [interface]\nkind = \"lr\"\nk = 5\n\n[aggregate]\nkind = \"count\"\n\n\
         [estimator]\nalgorithm = \"lr\"\nbudget = {}\n\n[session]\nwave_size = 8\n",
        options.seed ^ (0x10AD + 97 * c as u64 + j as u64),
        40 + 10 * ((c + j) % 4),
        options.budget + 20 * (j as u64 % 3),
    );
    let value = lbs_bench::toml_lite::parse(&toml).expect("loadtest scenario TOML is well-formed");
    let scenario = Scenario::from_value(&value).expect("loadtest scenario deserializes");
    scenario.validate().expect("loadtest scenario validates");
    (value, scenario)
}

/// Reads a `u64` out of a JSON map field.
fn value_u64(value: &Value, key: &str) -> Option<u64> {
    match value.get(key) {
        Some(Value::U64(n)) => Some(*n),
        Some(Value::I64(n)) => u64::try_from(*n).ok(),
        Some(Value::F64(n)) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// What one client thread brings home.
struct ClientOutcome {
    /// Submit→first-estimate latency of each completed job, milliseconds.
    first_estimate_ms: Vec<f64>,
    /// `(job index, served estimate)` of each completed job.
    served: Vec<(usize, f64)>,
    requests: u64,
    connections: u64,
    /// Errors of jobs that never completed (each one is a dropped job).
    errors: Vec<String>,
}

fn run_client(addr: &str, c: usize, options: &LoadtestOptions) -> ClientOutcome {
    let mut client = HttpClient::new(addr);
    let mut outcome = ClientOutcome {
        first_estimate_ms: Vec::new(),
        served: Vec::new(),
        requests: 0,
        connections: 0,
        errors: Vec::new(),
    };
    for j in 0..options.jobs_per_client {
        match run_job(&mut client, c, j, options) {
            Ok((latency_ms, served_value)) => {
                outcome.first_estimate_ms.push(latency_ms);
                outcome.served.push((j, served_value));
            }
            Err(e) => outcome.errors.push(format!("client {c} job {j}: {e}")),
        }
    }
    outcome.requests = client.requests_sent();
    outcome.connections = client.connections_opened();
    outcome
}

/// Submits one job (retrying `429` backpressure), waits for its first
/// anytime estimate and then its final result. Returns
/// `(submit→first-estimate ms, served estimate)`.
fn run_job(
    client: &mut HttpClient,
    c: usize,
    j: usize,
    options: &LoadtestOptions,
) -> Result<(f64, f64), String> {
    let (scenario_value, _) = loadtest_scenario(c, j, options);
    let body = serde_json::to_string(&Value::Map(vec![
        ("tenant".to_string(), Value::Str(format!("lt_{c}"))),
        ("scenario".to_string(), scenario_value),
    ]))
    .map_err(|e| e.to_string())?;

    let submitted = Instant::now();
    let deadline = submitted + Duration::from_secs(120);
    // Admission: `429 Too Many Requests` is the server saying "not now",
    // not "no" — honour it with a short back-off and retry until admitted.
    let job_id = loop {
        let (status, reply) = client.request("POST", "/jobs", Some(&body))?;
        match status {
            201 => {
                let reply: Value =
                    serde_json::from_str(&reply).map_err(|e| format!("bad submit reply: {e}"))?;
                break value_u64(&reply, "job_id")
                    .ok_or_else(|| "submit reply without job_id".to_string())?;
            }
            429 => {
                if Instant::now() >= deadline {
                    return Err("still backpressured at the deadline".to_string());
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            other => return Err(format!("submit failed (HTTP {other}): {reply}")),
        }
    };

    // First anytime estimate: the first snapshot with ≥ 1 completed sample.
    let first_estimate_ms = loop {
        let (status, reply) = client.request("GET", &format!("/jobs/{job_id}"), None)?;
        if status != 200 {
            return Err(format!("poll failed (HTTP {status}): {reply}"));
        }
        let parsed: Value =
            serde_json::from_str(&reply).map_err(|e| format!("bad poll reply: {e}"))?;
        let samples = parsed
            .get("snapshot")
            .and_then(|s| value_u64(s, "samples"))
            .unwrap_or(0);
        if samples > 0 {
            break submitted.elapsed().as_secs_f64() * 1e3;
        }
        let running = matches!(parsed.get("state"), Some(Value::Str(s)) if s == "Running");
        if !running {
            return Err("job settled without a single sample".to_string());
        }
        if Instant::now() >= deadline {
            return Err("no first estimate before the deadline".to_string());
        }
        std::thread::sleep(Duration::from_millis(2));
    };

    // Final result (long-poll; tiny jobs settle in milliseconds).
    loop {
        let (status, reply) =
            client.request("GET", &format!("/jobs/{job_id}/result?wait_ms=2000"), None)?;
        match status {
            200 => {
                let result: Value =
                    serde_json::from_str(&reply).map_err(|e| format!("bad result reply: {e}"))?;
                let value = result
                    .get("estimate")
                    .and_then(|e| e.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "job settled without an estimate".to_string())?;
                return Ok((first_estimate_ms, value));
            }
            202 => {
                if Instant::now() >= deadline {
                    return Err("job never settled before the deadline".to_string());
                }
            }
            other => return Err(format!("result fetch failed (HTTP {other}): {reply}")),
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.saturating_sub(1).min(sorted_ms.len() - 1)]
}

/// Runs the concurrent-load probe and returns the `loadtest` record of
/// `BENCH_repro.json`. Errors only on setup failure (e.g. no loopback
/// port); client-side job failures are reported as `dropped_jobs` so the
/// gate — not an early return — judges them.
pub fn run_loadtest(options: &LoadtestOptions) -> Result<LoadtestBenchReport, String> {
    let scheduler = Scheduler::new(SchedulerConfig {
        threads: options.threads,
        seed: options.seed,
        smoke: false,
    });
    let state = ServerState::new(scheduler);
    let config = ServerConfig {
        queue_depth: options.queue_depth,
        ..ServerConfig::default()
    };
    let server = Server::start_with_config("127.0.0.1:0", state, config)
        .map_err(|e| format!("cannot bind a loopback port: {e}"))?;
    let addr = server.addr().to_string();

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || run_client(&addr, c, options))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadtest client thread panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let http = server.http_stats();
    let state = server.state();
    state.request_shutdown();
    server.join();

    let mut latencies: Vec<f64> = Vec::new();
    let mut requests = 0u64;
    let mut connections = 0u64;
    let mut completed = 0usize;
    let mut batch_identical = true;
    for (c, outcome) in outcomes.iter().enumerate() {
        latencies.extend_from_slice(&outcome.first_estimate_ms);
        requests += outcome.requests;
        connections += outcome.connections;
        completed += outcome.served.len();
        for error in &outcome.errors {
            eprintln!("loadtest: {error}");
        }
        if options.check_batch {
            // Re-run each served scenario through the local batch path and
            // require bitwise equality. The context mirrors the server's
            // `scenario_context()`; the pinned per-scenario seed makes the
            // root seed irrelevant, and thread count never changes bits.
            let ctx = ScenarioContext {
                scale: Scale::Small,
                seed: options.seed,
                threads: 1,
                smoke: false,
            };
            for &(j, served_value) in &outcome.served {
                let (_, scenario) = loadtest_scenario(c, j, options);
                let workload = lbs_bench::build_workload(&scenario, &ctx)?;
                let backend = workload.backend();
                let mut session = workload.start_session(backend, workload.session_config(1, 0))?;
                while !session.is_finished() {
                    session.step();
                }
                let local = session
                    .finalize()
                    .map_err(|e| format!("local batch run of lt_{c}_{j} failed: {e}"))?;
                if local.value.to_bits() != served_value.to_bits() {
                    eprintln!(
                        "loadtest: lt_{c}_{j} served {served_value} but batch produced {} \
                         (bitwise comparison)",
                        local.value
                    );
                    batch_identical = false;
                }
            }
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));

    let expected = options.clients * options.jobs_per_client;
    Ok(LoadtestBenchReport {
        clients: options.clients,
        jobs_per_client: options.jobs_per_client,
        completed_jobs: completed,
        dropped_jobs: expected.saturating_sub(completed),
        wall_s,
        jobs_per_s: completed as f64 / wall_s.max(1e-9),
        p50_first_estimate_ms: percentile(&latencies, 50.0),
        p95_first_estimate_ms: percentile(&latencies, 95.0),
        p99_first_estimate_ms: percentile(&latencies, 99.0),
        http_requests: requests,
        connections,
        keep_alive_reuse: if requests > 0 {
            1.0 - connections as f64 / requests as f64
        } else {
            0.0
        },
        queue_429: http.queue_429,
        quota_429: http.quota_429,
        queue_depth: http.queue_capacity,
        queue_high_water: http.queue_high_water,
        check_batch: options.check_batch,
        batch_identical: options.check_batch && batch_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadtest_probe_completes_and_matches_batch() {
        let report = run_loadtest(&LoadtestOptions {
            clients: 2,
            jobs_per_client: 2,
            queue_depth: 2,
            budget: 60,
            ..LoadtestOptions::default()
        })
        .expect("loadtest runs");
        assert_eq!(report.completed_jobs, 4);
        assert_eq!(report.dropped_jobs, 0);
        assert!(
            report.batch_identical,
            "served estimates diverged from batch"
        );
        assert!(report.jobs_per_s > 0.0);
        assert!(report.p95_first_estimate_ms >= report.p50_first_estimate_ms);
        assert!(report.p99_first_estimate_ms >= report.p95_first_estimate_ms);
        // One keep-alive connection per client unless a retry reconnected.
        assert!(report.connections >= 2);
        assert!(report.http_requests > report.connections);
        assert!(report.violations().is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 50.0), 2.0);
        assert_eq!(percentile(&sorted, 95.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }
}
