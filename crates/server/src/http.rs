//! Wire-level HTTP/1.1: incremental request parsing, response rendering,
//! and the two clients (`http_request` one-shot, [`HttpClient`] keep-alive).
//!
//! The serving endpoints themselves live in [`crate::event_loop`]; this
//! module owns only the byte format. Endpoints for reference:
//!
//! | method & path            | body / query                 | reply |
//! |--------------------------|------------------------------|-------|
//! | `GET /healthz`           | —                            | `{"ok":true}` |
//! | `POST /jobs`             | `{"tenant"?, "scenario": {…}}` (declarative scenario, JSON form of the TOML schema) | `{"job_id": n}` |
//! | `GET /jobs/{id}`         | —                            | [`JobStatus`] JSON (anytime estimate, CI, queries, stop reason) |
//! | `GET /jobs/{id}/result`  | `?wait_ms=N` long-poll       | final estimate JSON, or `{"pending":true}` after the wait |
//! | `DELETE /jobs/{id}`      | —                            | `{"cancelled":bool}` |
//! | `GET /stats`             | —                            | [`SchedulerStats`] JSON plus an `http` / `queue` block |
//! | `POST /shutdown`         | —                            | `{"ok":true}`, then the server drains and exits |
//!
//! Requests are parsed **incrementally**: the event loop appends whatever
//! bytes the socket yields into a per-connection buffer and calls
//! `find_head_end` / `RequestHead::parse` until a full head (and then a
//! full `Content-Length` body) is available. Nothing here blocks.
//!
//! [`JobStatus`]: crate::scheduler::JobStatus
//! [`SchedulerStats`]: crate::scheduler::SchedulerStats

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::{Serialize, Value};

/// Default socket timeout used by the blocking clients.
pub(crate) const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Incremental request parsing.
// ---------------------------------------------------------------------------

/// A wire-level protocol error mapped to the status line it should produce.
#[derive(Debug, Clone)]
pub(crate) struct HttpError {
    /// Status code to reply with (`400`, `413`, `501`, …).
    pub status: u16,
    /// Reason phrase matching `status`.
    pub reason: &'static str,
    /// Human-readable detail for the JSON error body.
    pub message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            reason: "Bad Request",
            message: message.into(),
        }
    }
}

/// Returns the length of the header block (terminator included) once the
/// buffer holds a complete `\r\n\r\n`- or `\n\n`-terminated head.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

/// The parsed request line + headers of one HTTP/1.1 request.
#[derive(Debug, Clone)]
pub(crate) struct RequestHead {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// Decoded `?key=value` pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Whether the connection survives this exchange (HTTP/1.1 default
    /// keep-alive, overridden by `Connection:` headers; HTTP/1.0 defaults
    /// to close).
    pub keep_alive: bool,
}

impl RequestHead {
    /// Parses a complete header block (as delimited by [`find_head_end`]).
    pub fn parse(head: &[u8]) -> Result<RequestHead, HttpError> {
        let text = std::str::from_utf8(head)
            .map_err(|_| HttpError::bad_request("header block is not UTF-8"))?;
        let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));

        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("").to_ascii_uppercase();
        let target = parts.next().unwrap_or("").to_string();
        let version = parts.next().unwrap_or("HTTP/1.1");
        if method.is_empty() || target.is_empty() {
            return Err(HttpError::bad_request("malformed request line"));
        }
        let http11 = version != "HTTP/1.0";

        let mut content_length = 0usize;
        let mut keep_alive = http11;
        for line in lines {
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError {
                    status: 501,
                    reason: "Not Implemented",
                    message: "transfer-encoding is not supported; send Content-Length".to_string(),
                });
            }
        }

        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q),
            None => (target, ""),
        };
        let query = query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (kv.to_string(), String::new()),
            })
            .collect();
        Ok(RequestHead {
            method,
            path,
            query,
            content_length,
            keep_alive,
        })
    }

    /// Looks up an integer query parameter.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }
}

// ---------------------------------------------------------------------------
// Response rendering.
// ---------------------------------------------------------------------------

/// One response ready to be rendered onto the wire.
#[derive(Debug, Clone)]
pub(crate) struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// JSON body.
    pub body: String,
    /// Optional `Retry-After` header in seconds (backpressure replies).
    pub retry_after_s: Option<u64>,
}

impl Response {
    /// A JSON response with the given status line.
    pub fn json(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            reason,
            body: body.into(),
            retry_after_s: None,
        }
    }

    /// A `{"error": message}` response with the given status line.
    pub fn error(status: u16, reason: &'static str, message: &str) -> Response {
        Response::json(status, reason, error_body(message))
    }

    /// Renders the full wire bytes, `Connection:` header included.
    pub fn render(&self, keep_alive: bool) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let retry_after = match self.retry_after_s {
            Some(s) => format!("Retry-After: {s}\r\n"),
            None => String::new(),
        };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n{retry_after}Connection: {connection}\r\n\r\n{}",
            self.status,
            self.reason,
            self.body.len(),
            self.body
        )
        .into_bytes()
    }
}

impl From<HttpError> for Response {
    fn from(e: HttpError) -> Response {
        Response::error(e.status, e.reason, &e.message)
    }
}

/// Serializes any `Serialize` value to a JSON string.
pub(crate) fn json_of<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

/// A `{"error": message}` JSON body.
pub(crate) fn error_body(message: &str) -> String {
    json_of(&Value::Map(vec![(
        "error".to_string(),
        Value::Str(message.to_string()),
    )]))
}

// ---------------------------------------------------------------------------
// Clients (used by `repro client`, `repro loadtest`, and the e2e tests).
// ---------------------------------------------------------------------------

/// Reads one response off `reader`; returns `(status, body, server_closes)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, String, bool), String> {
    let mut status_line = String::new();
    let n = reader
        .read_line(&mut status_line)
        .map_err(|e| e.to_string())?;
    if n == 0 {
        return Err("connection closed before status line".to_string());
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{}`", status_line.trim()))?;

    let mut content_length = None;
    let mut server_closes = false;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end();
        if n == 0 || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                server_closes = true;
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut bytes = vec![0u8; n];
            reader.read_exact(&mut bytes).map_err(|e| e.to_string())?;
            body = String::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
        }
        None => {
            // No length: the body runs to EOF and the connection is spent.
            server_closes = true;
            reader
                .read_to_string(&mut body)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok((status, body, server_closes))
}

/// Issues one HTTP request against `addr` and returns `(status, body)`.
///
/// Opens a fresh `Connection: close` socket per call — the simplest correct
/// client, used by `repro client` and the smoke tests. Load generators that
/// care about connection reuse should hold an [`HttpClient`] instead.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(SOCKET_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let (status, body, _) = read_response(&mut reader)?;
    Ok((status, body))
}

/// A keep-alive HTTP/1.1 client: many requests over one connection.
///
/// Tracks how many requests it sent and how many TCP connections it had to
/// open, so the loadtest probe can report the keep-alive reuse rate. A
/// stale pooled connection (server closed it between requests) is retried
/// once on a fresh socket before an error is surfaced.
///
/// ```no_run
/// use lbs_server::HttpClient;
///
/// let mut client = HttpClient::new("127.0.0.1:8080");
/// let (status, body) = client.request("GET", "/healthz", None)?;
/// assert_eq!(status, 200);
/// // Subsequent requests reuse the same TCP connection.
/// let _ = client.request("GET", "/stats", None)?;
/// assert_eq!(client.connections_opened(), 1);
/// assert_eq!(client.requests_sent(), 2);
/// # drop(body);
/// # Ok::<(), String>(())
/// ```
pub struct HttpClient {
    addr: String,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
    requests: u64,
    connections: u64,
}

impl HttpClient {
    /// A client for `addr` (`host:port`) with the default 30 s timeout.
    pub fn new(addr: &str) -> HttpClient {
        HttpClient::with_timeout(addr, SOCKET_TIMEOUT)
    }

    /// A client for `addr` with an explicit per-request socket timeout.
    pub fn with_timeout(addr: &str, timeout: Duration) -> HttpClient {
        HttpClient {
            addr: addr.to_string(),
            timeout,
            conn: None,
            requests: 0,
            connections: 0,
        }
    }

    /// Issues `method path` with an optional JSON body; returns
    /// `(status, body)`. Reuses the pooled connection when the server keeps
    /// it alive.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        for attempt in 0..2 {
            let reused = self.conn.is_some();
            if self.conn.is_none() {
                let stream = TcpStream::connect(&self.addr)
                    .map_err(|e| format!("connect {}: {e}", self.addr))?;
                stream
                    .set_read_timeout(Some(self.timeout))
                    .map_err(|e| e.to_string())?;
                stream
                    .set_write_timeout(Some(self.timeout))
                    .map_err(|e| e.to_string())?;
                self.connections += 1;
                self.conn = Some(BufReader::new(stream));
            }
            let reader = self.conn.as_mut().expect("connection just ensured");
            let payload = body.unwrap_or("");
            let request = format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{payload}",
                self.addr,
                payload.len()
            );
            let outcome = reader
                .get_ref()
                .write_all(request.as_bytes())
                .map_err(|e| e.to_string())
                .and_then(|_| read_response(reader));
            match outcome {
                Ok((status, body, server_closes)) => {
                    self.requests += 1;
                    if server_closes {
                        self.conn = None;
                    }
                    return Ok((status, body));
                }
                // A pooled connection the server quietly closed (idle
                // timeout, drain) fails mid-request; one retry on a fresh
                // socket is safe because nothing was answered.
                Err(_) if reused && attempt == 0 => {
                    self.conn = None;
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        unreachable!("second attempt always returns")
    }

    /// Total requests answered over this client's lifetime.
    pub fn requests_sent(&self) -> u64 {
        self.requests
    }

    /// TCP connections this client had to open (1 == perfect keep-alive).
    pub fn connections_opened(&self) -> u64 {
        self.connections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_handles_both_terminators() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn parse_head_defaults_and_overrides() {
        let head = RequestHead::parse(b"GET /stats?wait_ms=5 HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("parses");
        assert_eq!(head.method, "GET");
        assert_eq!(head.path, "/stats");
        assert_eq!(head.query_u64("wait_ms"), Some(5));
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(head.content_length, 0);

        let close = RequestHead::parse(
            b"POST /jobs HTTP/1.1\r\nConnection: close\r\nContent-Length: 2\r\n\r\n",
        )
        .expect("parses");
        assert!(!close.keep_alive);
        assert_eq!(close.content_length, 2);

        let legacy = RequestHead::parse(b"GET / HTTP/1.0\r\n\r\n").expect("parses");
        assert!(!legacy.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn parse_head_rejects_garbage() {
        assert!(RequestHead::parse(b"\r\n\r\n").is_err());
        assert!(RequestHead::parse(b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n").is_err());
        let chunked = RequestHead::parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .expect_err("chunked unsupported");
        assert_eq!(chunked.status, 501);
    }

    #[test]
    fn response_renders_retry_after_and_connection() {
        let mut resp = Response::error(429, "Too Many Requests", "queue full");
        resp.retry_after_s = Some(1);
        let text = String::from_utf8(resp.render(true)).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        let text = String::from_utf8(Response::json(200, "OK", "{}").render(false)).expect("utf8");
        assert!(text.contains("Connection: close\r\n"));
    }
}
