//! Dependency-free HTTP/1.1 JSON front-end over [`std::net::TcpListener`].
//!
//! The wire surface of the serving layer. Endpoints:
//!
//! | method & path            | body / query                 | reply |
//! |--------------------------|------------------------------|-------|
//! | `GET /healthz`           | —                            | `{"ok":true}` |
//! | `POST /jobs`             | `{"tenant"?, "scenario": {…}}` (declarative scenario, JSON form of the TOML schema) | `{"job_id": n}` |
//! | `GET /jobs/{id}`         | —                            | [`JobStatus`] JSON (anytime estimate, CI, queries, stop reason) |
//! | `GET /jobs/{id}/result`  | `?wait_ms=N` long-poll       | final estimate JSON, or `{"pending":true}` after the wait |
//! | `DELETE /jobs/{id}`      | —                            | `{"cancelled":bool}` |
//! | `GET /stats`             | —                            | [`SchedulerStats`] JSON |
//! | `POST /shutdown`         | —                            | `{"ok":true}`, then the server drains and exits |
//!
//! The implementation is deliberately minimal — request line + headers +
//! `Content-Length` body, `Connection: close`, one thread per connection —
//! because the paper's workload is long-running estimation jobs, not HTTP
//! throughput: all the concurrency that matters lives in the scheduler's
//! wave interleaving, which a background ticker thread drives continuously.
//!
//! [`JobStatus`]: crate::scheduler::JobStatus
//! [`SchedulerStats`]: crate::scheduler::SchedulerStats

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lbs_bench::Scenario;
use serde::{Deserialize, Serialize, Value};

use crate::scheduler::Scheduler;

/// Longest accepted header block.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Longest accepted request body.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-connection socket timeout.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);
/// Longest honoured `wait_ms` long-poll.
const MAX_WAIT_MS: u64 = 120_000;

/// Shared state of a running server.
pub struct ServerState {
    /// The scheduler behind the API (public so embedders and the session
    /// probe can drive it directly).
    pub scheduler: Mutex<Scheduler>,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Wraps a scheduler for serving.
    pub fn new(scheduler: Scheduler) -> Arc<Self> {
        Arc::new(ServerState {
            scheduler: Mutex::new(scheduler),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Signals every server thread to exit after its current step.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// `true` once shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A running HTTP server: ticker thread (drives the scheduler) plus
/// acceptor thread (serves the API).
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving in background threads.
    pub fn start(addr: &str, state: Arc<ServerState>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let ticker_state = Arc::clone(&state);
        let ticker = std::thread::spawn(move || {
            while !ticker_state.shutting_down() {
                let progressed = ticker_state
                    .scheduler
                    .lock()
                    .expect("scheduler lock")
                    .tick()
                    .is_some();
                if !progressed {
                    // Idle: nothing runnable. Sleep briefly instead of
                    // spinning on the lock.
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        });

        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::spawn(move || {
            let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !acceptor_state.shutting_down() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_state = Arc::clone(&acceptor_state);
                        workers.push(std::thread::spawn(move || {
                            let _ = handle_connection(stream, &conn_state);
                        }));
                        workers.retain(|w| !w.is_finished());
                    }
                    // Transient accept errors (ECONNABORTED, EINTR, fd
                    // exhaustion, …) must not kill the accept loop — a dead
                    // acceptor would leave the ticker running forever with
                    // no way to deliver POST /shutdown. Back off briefly and
                    // retry; the shutdown flag is the only exit.
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
            for worker in workers {
                let _ = worker.join();
            }
        });

        Ok(Server {
            state,
            addr: local,
            threads: vec![ticker, acceptor],
        })
    }

    /// The bound address (useful with an ephemeral `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state handle.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Blocks until the server shuts down (via `POST /shutdown` or
    /// [`ServerState::request_shutdown`]).
    pub fn join(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: String,
}

impl Request {
    fn query_u64(&self, key: &str) -> Option<u64> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }
}

fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(SOCKET_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(SOCKET_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    // The header block reads through a hard byte cap: `read_line` on a raw
    // stream would otherwise buffer a newline-free flood without limit
    // before any post-hoc length check could run.
    let mut header_reader = (&mut reader).take(MAX_HEADER_BYTES as u64);
    let mut request_line = String::new();
    header_reader
        .read_line(&mut request_line)
        .map_err(|e| e.to_string())?;
    if request_line.len() >= MAX_HEADER_BYTES && !request_line.ends_with('\n') {
        return Err("header block too large".to_string());
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || target.is_empty() {
        return Err("malformed request line".to_string());
    }

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = header_reader
            .read_line(&mut line)
            .map_err(|e| e.to_string())?;
        if n > 0 && !line.ends_with('\n') && header_reader.limit() == 0 {
            return Err("header block too large".to_string());
        }
        let line = line.trim_end();
        if n == 0 || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".to_string());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn write_response(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn json_of<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

fn error_body(message: &str) -> String {
    json_of(&Value::Map(vec![(
        "error".to_string(),
        Value::Str(message.to_string()),
    )]))
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) -> Result<(), String> {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            write_response(&mut stream, 400, "Bad Request", &error_body(&e));
            return Ok(());
        }
    };
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();

    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            write_response(&mut stream, 200, "OK", r#"{"ok":true}"#);
        }
        ("GET", ["stats"]) => {
            let stats = state.scheduler.lock().expect("scheduler lock").stats();
            write_response(&mut stream, 200, "OK", &json_of(&stats));
        }
        ("POST", ["shutdown"]) => {
            write_response(&mut stream, 200, "OK", r#"{"ok":true}"#);
            state.request_shutdown();
        }
        ("POST", ["jobs"]) => match submit_job(state, &request.body) {
            Ok(id) => {
                let reply = Value::Map(vec![("job_id".to_string(), Value::U64(id))]);
                write_response(&mut stream, 201, "Created", &json_of(&reply));
            }
            Err(e) => {
                write_response(&mut stream, 400, "Bad Request", &error_body(&e));
            }
        },
        ("GET", ["jobs", id]) => match id.parse::<u64>() {
            Ok(id) => {
                let status = state.scheduler.lock().expect("scheduler lock").poll(id);
                match status {
                    Some(status) => write_response(&mut stream, 200, "OK", &json_of(&status)),
                    None => {
                        write_response(&mut stream, 404, "Not Found", &error_body("no such job"))
                    }
                }
            }
            Err(_) => write_response(&mut stream, 400, "Bad Request", &error_body("bad job id")),
        },
        ("GET", ["jobs", id, "result"]) => match id.parse::<u64>() {
            Ok(id) => {
                let wait_ms = request.query_u64("wait_ms").unwrap_or(0).min(MAX_WAIT_MS);
                serve_result(&mut stream, state, id, wait_ms);
            }
            Err(_) => write_response(&mut stream, 400, "Bad Request", &error_body("bad job id")),
        },
        ("DELETE", ["jobs", id]) => match id.parse::<u64>() {
            Ok(id) => {
                let cancelled = state.scheduler.lock().expect("scheduler lock").cancel(id);
                let reply = Value::Map(vec![("cancelled".to_string(), Value::Bool(cancelled))]);
                write_response(&mut stream, 200, "OK", &json_of(&reply));
            }
            Err(_) => write_response(&mut stream, 400, "Bad Request", &error_body("bad job id")),
        },
        _ => {
            write_response(&mut stream, 404, "Not Found", &error_body("no such route"));
        }
    }
    Ok(())
}

fn submit_job(state: &Arc<ServerState>, body: &str) -> Result<u64, String> {
    let value: Value = serde_json::from_str(body).map_err(|e| format!("bad JSON body: {e}"))?;
    let tenant: Option<String> = match value.get("tenant") {
        Some(v) => Some(String::from_value(v).map_err(|e| format!("tenant: {e}"))?),
        None => None,
    };
    let scenario_value = value
        .get("scenario")
        .ok_or_else(|| "body needs a `scenario` object".to_string())?;
    let scenario = Scenario::from_value(scenario_value).map_err(|e| e.to_string())?;
    scenario.validate()?;
    // Build the workload (dataset generation, the expensive part) *outside*
    // the scheduler lock so running jobs keep ticking and polls keep
    // answering while a large submission materialises.
    let ctx = state
        .scheduler
        .lock()
        .expect("scheduler lock")
        .scenario_context();
    let workload = lbs_bench::build_workload(&scenario, &ctx)?;
    state
        .scheduler
        .lock()
        .expect("scheduler lock")
        .submit_workload(workload, tenant.as_deref())
}

/// Long-polls a job result: replies with the final estimate once the job is
/// settled, or `{"pending":true}` after `wait_ms`.
fn serve_result(stream: &mut TcpStream, state: &Arc<ServerState>, id: u64, wait_ms: u64) {
    // lbs-lint: allow(ambient-time, reason = "long-poll timeout decides when to reply, never what the reply contains")
    let deadline = std::time::Instant::now() + Duration::from_millis(wait_ms);
    loop {
        let reply = {
            let scheduler = state.scheduler.lock().expect("scheduler lock");
            match scheduler.poll(id) {
                None => {
                    write_response(stream, 404, "Not Found", &error_body("no such job"));
                    return;
                }
                Some(status) if status.state != crate::scheduler::JobState::Running => {
                    let mut fields = vec![
                        ("status".to_string(), status.state.to_value()),
                        ("scenario_id".to_string(), Value::Str(status.scenario_id)),
                        ("tenant".to_string(), Value::Str(status.tenant)),
                        ("snapshot".to_string(), status.snapshot.to_value()),
                    ];
                    if let Some(estimate) = scheduler.result(id) {
                        fields.push(("estimate".to_string(), estimate.to_value()));
                    }
                    Some(Value::Map(fields))
                }
                Some(_) => None,
            }
        };
        match reply {
            Some(reply) => {
                write_response(stream, 200, "OK", &json_of(&reply));
                return;
            }
            // Give up on the deadline — or immediately on shutdown, so an
            // in-flight long-poll cannot keep the server alive for the
            // full `wait_ms`.
            // lbs-lint: allow(ambient-time, reason = "long-poll timeout decides when to reply, never what the reply contains")
            None if std::time::Instant::now() >= deadline || state.shutting_down() => {
                write_response(stream, 202, "Accepted", r#"{"pending":true}"#);
                return;
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

// ---------------------------------------------------------------------------
// A tiny HTTP client (used by `repro client` and the end-to-end tests).
// ---------------------------------------------------------------------------

/// Issues one HTTP request against `addr` and returns `(status, body)`.
///
/// This is the client half of the smoke pair: enough HTTP/1.1 to talk to
/// [`Server`] (and to any reverse proxy that speaks `Connection: close`).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(SOCKET_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| e.to_string())?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{}`", status_line.trim()))?;

    let mut content_length = None;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end();
        if n == 0 || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut bytes = vec![0u8; n];
            reader.read_exact(&mut bytes).map_err(|e| e.to_string())?;
            body = String::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
        }
        None => {
            reader
                .read_to_string(&mut body)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok((status, body))
}
