//! # lbs-server
//!
//! The multi-tenant aggregate-serving layer: what turns the paper's
//! estimators into a system that can serve partial answers to many
//! concurrent clients over shared query budgets.
//!
//! Three pieces, bottom to top:
//!
//! * [`scheduler`] — a **deterministic round-robin scheduler** over
//!   [`lbs_core::EstimationSession`] jobs. Each tick advances one job by one
//!   wave; every job charges its tenant's shared
//!   [`lbs_service::QueryBudget`], so quotas are enforced across jobs; and
//!   because sessions derive all randomness from `(root_seed,
//!   sample_index)`, every job's estimate stream is bit-identical no matter
//!   how jobs interleave or in which order they arrived.
//! * [`event_loop`] + [`http`] + [`queue`] — a **dependency-free,
//!   event-driven HTTP/1.1 JSON front-end**: one loop thread multiplexes
//!   every connection over the vendored `poll(2)` shim with keep-alive and
//!   incremental parsing, and a bounded [`queue::SubmissionQueue`] with a
//!   single drain worker turns socket chaos into one serial admission
//!   stream (backpressure is explicit: `429` + `Retry-After`). Submit a
//!   job from a declarative scenario spec, poll its anytime estimate
//!   (value, running confidence interval, queries spent, stop reason),
//!   long-poll the final result, cancel.
//! * [`probe`] — the session-throughput probe (`jobs/s`, mean
//!   time-to-first-estimate, shuffled-arrival determinism check) recorded in
//!   `BENCH_repro.json` by every `repro` run.
//!
//! The `repro` binary lives in this crate (its `serve` / `client`
//! subcommands need the server; everything experiment-shaped still comes
//! from `lbs-bench`). `repro serve` starts the front-end; `repro client`
//! submits a scenario file, streams anytime estimates, and can verify the
//! served result against a local batch run (`--check-batch`) — the
//! end-to-end smoke pair CI runs on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event_loop;
pub mod http;
pub mod loadtest;
pub mod probe;
pub mod queue;
pub mod scheduler;

pub use event_loop::{HttpStats, Server, ServerConfig, ServerState};
pub use http::{http_request, HttpClient};
pub use loadtest::{run_loadtest, LoadtestOptions};
pub use probe::{run_cache_probe, run_session_probe};
pub use queue::SubmissionQueue;
pub use scheduler::{
    CacheCounters, JobState, JobStatus, Scheduler, SchedulerConfig, SchedulerStats, TenantStatus,
    DEFAULT_TENANT,
};
