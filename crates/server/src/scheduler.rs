//! Deterministic multi-tenant job scheduler over anytime estimation
//! sessions.
//!
//! A [`Scheduler`] owns many concurrent estimation **jobs** — each one an
//! [`EstimationSession`] built from a declarative scenario spec — and
//! advances them **one wave per tick** in strict round-robin order of
//! submission. Nothing in the schedule depends on wall-clock time or thread
//! interleaving, so the estimate stream of every job is bit-identical
//! regardless of how many other jobs run beside it, in which order jobs of
//! *different* tenants arrived, or how often the driving loop paused: each
//! session's samples draw private RNGs seeded from `(root_seed,
//! sample_index)`, and sessions share no mutable state.
//!
//! **Tenants** give the serving layer its quota model: every job charges the
//! shared [`QueryBudget`] of its tenant, so one tenant's greedy aggregate
//! cannot starve another's — the budget refuses further queries once the
//! quota is spent and the affected jobs finish with whatever samples they
//! completed (an anytime answer; jobs with zero samples fail). The one
//! caveat mirrors the driver's hard-limit caveat: *which* of a tenant's jobs
//! hits the wall depends on the interleave, so arrival-order invariance is
//! only bit-exact while no hard quota binds mid-run.
//!
//! Job lifecycle: [`Scheduler::submit`] → (ticks) → `Done` / `Failed`, with
//! [`Scheduler::poll`] serving anytime snapshots at every point,
//! [`Scheduler::cancel`] stopping a job early (its partial estimate stays
//! readable — anytime by construction), and [`Scheduler::result`] returning
//! the final [`Estimate`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use lbs_bench::{build_workload, CacheMode, Scale, Scenario, ScenarioContext, Workload};
use lbs_core::{AnytimeSnapshot, Estimate, EstimationSession, SessionConfig};
use lbs_service::{AnswerCache, CacheStats, LbsBackend, QueryBudget};
use serde::Serialize;

/// Default tenant name for submissions that do not specify one.
pub const DEFAULT_TENANT: &str = "default";

/// Construction knobs of a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker threads each wave fans out to (bit-identical at any value).
    pub threads: usize,
    /// Default root seed for scenarios that do not pin one.
    pub seed: u64,
    /// Apply the scenario smoke caps (small datasets/budgets) to every job.
    pub smoke: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: 1,
            seed: 2015,
            smoke: false,
        }
    }
}

/// Lifecycle state of a job.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum JobState {
    /// Queued or mid-run; waves are still being scheduled.
    Running,
    /// Finished with a final estimate.
    Done,
    /// Cancelled by the owner; a partial estimate may still be readable.
    Cancelled,
    /// Finished without a single completed sample (e.g. quota exhausted
    /// immediately); carries the reason.
    Failed(String),
}

/// Everything a caller polling a job can know.
#[derive(Clone, Debug, Serialize)]
pub struct JobStatus {
    /// Job id (assigned at submission, strictly increasing).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Scenario id the job was built from.
    pub scenario_id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Anytime estimate, confidence interval, cost and stop reason.
    pub snapshot: AnytimeSnapshot,
    /// Scheduler ticks this job has received.
    pub ticks: u64,
    /// Milliseconds from submission to the first snapshot with at least one
    /// completed sample (wall clock; telemetry only).
    pub time_to_first_estimate_ms: Option<u64>,
}

/// Per-tenant accounting.
#[derive(Clone, Debug, Serialize)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Hard query quota, if any.
    pub quota: Option<u64>,
    /// Queries charged to the tenant's shared budget so far. Jobs whose
    /// scenario pins its own `query_limit` under a quota-less tenant meter
    /// privately and are not in this ledger (see
    /// [`Scheduler::submit_workload`]).
    pub queries_issued: u64,
    /// Jobs ever submitted under this tenant.
    pub jobs_submitted: u64,
}

/// Scheduler-wide counters.
#[derive(Clone, Debug, Serialize)]
pub struct SchedulerStats {
    /// Default root seed jobs are built with (scenarios may pin their own).
    pub seed: u64,
    /// Whether smoke caps apply to every job.
    pub smoke: bool,
    /// Worker threads per wave.
    pub threads: usize,
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs currently runnable.
    pub running: usize,
    /// Jobs finished with a result.
    pub done: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Jobs failed.
    pub failed: usize,
    /// Total scheduler ticks served.
    pub ticks: u64,
    /// Per-tenant accounting, sorted by name.
    pub tenants: Vec<TenantStatus>,
    /// Counters of the cross-tenant shared answer cache.
    pub shared_cache: CacheCounters,
}

/// Serializable snapshot of an answer cache's counters.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the backend (with single-flight
    /// population, the number of distinct keys ever populated).
    pub misses: u64,
    /// Entries dropped by dataset-version migrations.
    pub invalidations: u64,
    /// Entries dropped by the capacity bound.
    pub evictions: u64,
}

impl From<CacheStats> for CacheCounters {
    fn from(stats: CacheStats) -> Self {
        CacheCounters {
            hits: stats.hits,
            misses: stats.misses,
            invalidations: stats.invalidations,
            evictions: stats.evictions,
        }
    }
}

struct TenantState {
    budget: Arc<QueryBudget>,
    quota: Option<u64>,
    jobs_submitted: u64,
    /// Per-tenant answer cache: jobs whose scenario says `cache = "private"`
    /// share it with this tenant's other jobs, never across tenants.
    cache: Arc<AnswerCache>,
}

struct Job {
    tenant: String,
    scenario_id: String,
    truth: f64,
    /// Live while the job is runnable; dropped when it settles so a
    /// long-running server does not pin every finished job's dataset,
    /// backend and estimator state in memory.
    session: Option<EstimationSession<Box<dyn LbsBackend>>>,
    /// Final snapshot, captured when the session is dropped.
    final_snapshot: Option<AnytimeSnapshot>,
    state: JobState,
    result: Option<Estimate>,
    ticks: u64,
    submitted_at: Instant,
    first_estimate_ms: Option<u64>,
}

impl Job {
    fn snapshot(&self) -> AnytimeSnapshot {
        match (&self.session, &self.final_snapshot) {
            (Some(session), _) => session.snapshot(),
            (None, Some(snapshot)) => snapshot.clone(),
            (None, None) => unreachable!("settled jobs keep their final snapshot"),
        }
    }

    /// Settles the job into `state`, storing the final estimate and
    /// snapshot and releasing the session (dataset, backend, history).
    fn settle(&mut self, state: JobState) {
        if let Some(session) = self.session.take() {
            self.final_snapshot = Some(session.snapshot());
            self.result = session.finalize().ok();
        }
        self.state = state;
    }
}

/// The deterministic round-robin scheduler (see the module docs).
pub struct Scheduler {
    config: SchedulerConfig,
    jobs: BTreeMap<u64, Job>,
    /// Runnable job ids in round-robin order.
    queue: VecDeque<u64>,
    next_id: u64,
    ticks: u64,
    tenants: BTreeMap<String, TenantState>,
    /// Cross-tenant answer cache: jobs whose scenario says `cache =
    /// "shared"` all use it. Entries are keyed by the dataset/config
    /// fingerprint, so tenants with different workloads never collide; only
    /// genuinely identical queries over identical data are shared.
    shared_cache: Arc<AnswerCache>,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            next_id: 1,
            ticks: 0,
            tenants: BTreeMap::new(),
            shared_cache: AnswerCache::unbounded(),
        }
    }

    /// The cross-tenant shared answer cache (counters feed the bench cache
    /// probe).
    pub fn shared_cache(&self) -> &Arc<AnswerCache> {
        &self.shared_cache
    }

    /// Counter snapshot of a tenant's private answer cache.
    pub fn tenant_cache_stats(&self, tenant: &str) -> Option<CacheStats> {
        self.tenants.get(tenant).map(|t| t.cache.stats())
    }

    /// Registers a tenant with an optional hard query quota shared by all of
    /// its jobs. Re-registering an existing tenant is an error (quotas are
    /// not silently replaced). Unknown tenants named at submission are
    /// implicitly registered without a quota.
    pub fn register_tenant(&mut self, name: &str, quota: Option<u64>) -> Result<(), String> {
        if self.tenants.contains_key(name) {
            return Err(format!("tenant `{name}` is already registered"));
        }
        let budget = match quota {
            Some(limit) => QueryBudget::with_limit(limit),
            None => QueryBudget::unlimited(),
        };
        self.tenants.insert(
            name.to_string(),
            TenantState {
                budget,
                quota,
                jobs_submitted: 0,
                cache: AnswerCache::unbounded(),
            },
        );
        Ok(())
    }

    /// `true` when `tenant` has a hard quota and it is fully spent — every
    /// further submission under it is doomed to fail with zero samples, so
    /// the HTTP layer rejects such jobs up front with `429 Too Many
    /// Requests` instead of admitting them into the queue.
    ///
    /// Quota-less tenants (and unknown names, which would be implicitly
    /// registered without a quota) are never saturated.
    ///
    /// ```
    /// use lbs_server::{Scheduler, SchedulerConfig};
    ///
    /// let mut scheduler = Scheduler::new(SchedulerConfig::default());
    /// scheduler.register_tenant("capped", Some(50))?;
    /// assert!(!scheduler.tenant_quota_saturated("capped"));
    /// assert!(!scheduler.tenant_quota_saturated("unknown"));
    /// # Ok::<(), String>(())
    /// ```
    pub fn tenant_quota_saturated(&self, tenant: &str) -> bool {
        let tenant = if tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            tenant
        };
        self.tenants
            .get(tenant)
            .is_some_and(|t| t.quota.is_some() && t.budget.remaining() == 0)
    }

    /// The scenario-building context of this scheduler (what job workloads
    /// are built with). Cheap to copy — the HTTP layer reads it under the
    /// scheduler lock, then builds the (potentially large) workload
    /// *outside* the lock so running jobs keep ticking.
    pub fn scenario_context(&self) -> ScenarioContext {
        ScenarioContext {
            // Scale only matters to built-in experiment scenarios, which
            // cannot be submitted as jobs; Small is a placeholder.
            scale: Scale::Small,
            seed: self.config.seed,
            threads: self.config.threads,
            smoke: self.config.smoke,
        }
    }

    /// Submits a declarative scenario as a job under `tenant` (empty/None →
    /// [`DEFAULT_TENANT`]) and returns its id. The job runs repetition 0 of
    /// the scenario; with no `[session]` overrides its final estimate is
    /// byte-identical to the batch path at the same seed.
    pub fn submit(&mut self, scenario: &Scenario, tenant: Option<&str>) -> Result<u64, String> {
        let workload = build_workload(scenario, &self.scenario_context())?;
        self.submit_workload(workload, tenant)
    }

    /// Submits an already-built [`Workload`] (see
    /// [`Scheduler::scenario_context`] for the build-outside-the-lock
    /// pattern).
    ///
    /// Budget resolution: a tenant **quota** supersedes the scenario's own
    /// `query_limit` (the tenant-wide cap is the stronger contract); for a
    /// tenant without a quota the scenario's `query_limit` is honoured with
    /// a private budget — exactly like the batch path, so default-tenant
    /// jobs stay byte-identical to offline runs. Privately-metered jobs do
    /// not appear in the tenant's `queries_issued` ledger.
    ///
    /// Cache resolution: `cache = "private"` uses the tenant's cache (warm
    /// across that tenant's jobs), `cache = "shared"` the scheduler-wide
    /// cross-tenant cache. A shared cache with unmetered hits is refused:
    /// whether a query is free would then depend on which tenant's job ran
    /// it first, coupling every ledger to arrival order and breaking the
    /// scheduler's arrival-order-invariance contract.
    pub fn submit_workload(
        &mut self,
        workload: Workload,
        tenant: Option<&str>,
    ) -> Result<u64, String> {
        let tenant = match tenant {
            Some(t) if !t.is_empty() => t,
            _ => DEFAULT_TENANT,
        };
        if workload.cache_mode() == CacheMode::Shared && !workload.cache_hits_metered() {
            return Err(format!(
                "{}: a shared cache with unmetered hits would couple tenants' ledgers \
                 to arrival order — use `cache = \"private\"` or drop \
                 `cache_hits_metered = false`",
                workload.id
            ));
        }
        if !self.tenants.contains_key(tenant) {
            self.register_tenant(tenant, None)?;
        }
        let shared_cache = self.shared_cache.share();
        let tenant_state = self.tenants.get_mut(tenant).expect("registered above");
        let cache = match workload.cache_mode() {
            CacheMode::Off => None,
            CacheMode::Private => Some(tenant_state.cache.share()),
            CacheMode::Shared => Some(shared_cache),
        };
        let budget =
            if tenant_state.quota.is_none() && workload.service_config.query_limit.is_some() {
                workload.fresh_budget()
            } else {
                tenant_state.budget.share()
            };
        let backend = workload.backend_with_budget_and_cache(budget, cache);
        let cfg: SessionConfig = workload.session_config(self.config.threads, 0);
        let session = workload.start_session(backend, cfg)?;
        tenant_state.jobs_submitted += 1;

        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                tenant: tenant.to_string(),
                scenario_id: workload.id.clone(),
                truth: workload.truth,
                session: Some(session),
                final_snapshot: None,
                state: JobState::Running,
                result: None,
                ticks: 0,
                // lbs-lint: allow(ambient-time, reason = "feeds the first_estimate_ms latency stat only, never an estimate")
                submitted_at: Instant::now(),
                first_estimate_ms: None,
            },
        );
        self.queue.push_back(id);
        Ok(id)
    }

    /// Advances the next runnable job by one wave (strict round-robin) and
    /// returns its id, or `None` when every job is settled.
    pub fn tick(&mut self) -> Option<u64> {
        let id = self.queue.pop_front()?;
        self.ticks += 1;
        let job = self.jobs.get_mut(&id).expect("queued jobs exist");
        let session = job.session.as_mut().expect("queued jobs are live");
        session.step();
        job.ticks += 1;
        if job.first_estimate_ms.is_none() && session.snapshot().samples > 0 {
            job.first_estimate_ms =
                Some(u64::try_from(job.submitted_at.elapsed().as_millis()).unwrap_or(u64::MAX));
        }
        if session.is_finished() {
            let state = match session.finalize() {
                Ok(_) => JobState::Done,
                Err(e) => JobState::Failed(e.to_string()),
            };
            job.settle(state);
        } else {
            self.queue.push_back(id);
        }
        Some(id)
    }

    /// Ticks until every job is settled; returns the number of ticks served.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut ticks = 0;
        while self.tick().is_some() {
            ticks += 1;
        }
        ticks
    }

    /// `true` while at least one job is runnable.
    pub fn has_runnable_jobs(&self) -> bool {
        !self.queue.is_empty()
    }

    /// The anytime status of a job.
    pub fn poll(&self, id: u64) -> Option<JobStatus> {
        let job = self.jobs.get(&id)?;
        Some(JobStatus {
            id,
            tenant: job.tenant.clone(),
            scenario_id: job.scenario_id.clone(),
            state: job.state.clone(),
            snapshot: job.snapshot(),
            ticks: job.ticks,
            time_to_first_estimate_ms: job.first_estimate_ms,
        })
    }

    /// The final estimate of a finished job (`Done`), or the partial
    /// estimate of a cancelled one, if it completed any sample.
    pub fn result(&self, id: u64) -> Option<&Estimate> {
        self.jobs.get(&id).and_then(|j| j.result.as_ref())
    }

    /// Ground truth of a job's aggregate (the scheduler generated the data,
    /// so it knows; exposed for harnesses and smoke checks, never used by
    /// the estimators).
    pub fn truth(&self, id: u64) -> Option<f64> {
        self.jobs.get(&id).map(|j| j.truth)
    }

    /// Cancels a running job. Its partial (anytime) estimate, if any sample
    /// completed, becomes the job's result. Returns `false` for unknown or
    /// already-settled jobs.
    pub fn cancel(&mut self, id: u64) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Running {
            return false;
        }
        if let Some(session) = job.session.as_mut() {
            session.cancel();
        }
        job.settle(JobState::Cancelled);
        self.queue.retain(|&queued| queued != id);
        true
    }

    /// Scheduler-wide counters.
    pub fn stats(&self) -> SchedulerStats {
        let mut done = 0;
        let mut cancelled = 0;
        let mut failed = 0;
        let mut running = 0;
        for job in self.jobs.values() {
            match job.state {
                JobState::Running => running += 1,
                JobState::Done => done += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::Failed(_) => failed += 1,
            }
        }
        SchedulerStats {
            seed: self.config.seed,
            smoke: self.config.smoke,
            threads: self.config.threads,
            submitted: self.next_id - 1,
            running,
            done,
            cancelled,
            failed,
            ticks: self.ticks,
            tenants: self
                .tenants
                .iter()
                .map(|(name, t)| TenantStatus {
                    name: name.clone(),
                    quota: t.quota,
                    queries_issued: t.budget.issued(),
                    jobs_submitted: t.jobs_submitted,
                })
                .collect(),
            shared_cache: self.shared_cache.stats().into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_bench::load_scenario;

    fn count_scenario(id: &str, seed: u64, budget: u64) -> Scenario {
        let toml = format!(
            "id = \"{id}\"\nseed = {seed}\n\n[dataset]\nmodel = \"uniform\"\nsize = 60\n\n\
             [interface]\nkind = \"lr\"\nk = 5\n\n[aggregate]\nkind = \"count\"\n\n\
             [estimator]\nalgorithm = \"lr\"\nbudget = {budget}\n"
        );
        let dir = std::env::temp_dir().join(format!("lbs-server-test-{id}-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{id}.toml"));
        std::fs::write(&path, toml).unwrap();
        load_scenario(&path).unwrap()
    }

    #[test]
    fn submit_tick_poll_result_lifecycle() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let id = sched
            .submit(&count_scenario("lifecycle", 7, 150), None)
            .unwrap();
        let status = sched.poll(id).unwrap();
        assert_eq!(status.state, JobState::Running);
        assert_eq!(status.snapshot.samples, 0);
        assert!(sched.result(id).is_none());

        sched.run_until_idle();
        let status = sched.poll(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(status.snapshot.finished);
        assert!(status.snapshot.samples > 0);
        let estimate = sched.result(id).expect("finished job has a result");
        assert!(estimate.value.is_finite());
        assert!(estimate.query_cost >= 150);
        assert!(sched.truth(id).unwrap() > 0.0);
    }

    #[test]
    fn interleaved_jobs_match_solo_runs_bitwise() {
        // Run the same scenario alone and interleaved with two other jobs:
        // the estimate must be bit-identical — sessions share no state.
        let scenario = count_scenario("interleave", 21, 200);

        let mut solo = Scheduler::new(SchedulerConfig::default());
        let solo_id = solo.submit(&scenario, None).unwrap();
        solo.run_until_idle();
        let solo_est = solo.result(solo_id).unwrap().clone();

        let mut busy = Scheduler::new(SchedulerConfig::default());
        let _a = busy
            .submit(&count_scenario("interleave-a", 5, 120), Some("other"))
            .unwrap();
        let id = busy.submit(&scenario, Some("main")).unwrap();
        let _b = busy
            .submit(&count_scenario("interleave-b", 9, 120), Some("other"))
            .unwrap();
        busy.run_until_idle();
        let busy_est = busy.result(id).unwrap();

        assert_eq!(solo_est.value.to_bits(), busy_est.value.to_bits());
        assert_eq!(solo_est.ci95, busy_est.ci95);
        assert_eq!(solo_est.samples, busy_est.samples);
        assert_eq!(solo_est.query_cost, busy_est.query_cost);
    }

    #[test]
    fn arrival_order_does_not_change_estimates() {
        let specs: Vec<Scenario> = (0..3)
            .map(|i| count_scenario(&format!("order-{i}"), 30 + i, 150))
            .collect();

        let run_in_order = |order: &[usize]| -> BTreeMap<String, (u64, u64)> {
            let mut sched = Scheduler::new(SchedulerConfig::default());
            let ids: Vec<u64> = order
                .iter()
                .map(|&i| sched.submit(&specs[i], None).unwrap())
                .collect();
            sched.run_until_idle();
            order
                .iter()
                .zip(ids)
                .map(|(&i, id)| {
                    let est = sched.result(id).unwrap();
                    (specs[i].id.clone(), (est.value.to_bits(), est.query_cost))
                })
                .collect()
        };

        let forward = run_in_order(&[0, 1, 2]);
        let reversed = run_in_order(&[2, 0, 1]);
        assert_eq!(forward, reversed, "arrival order changed an estimate");
    }

    #[test]
    fn tenant_quota_stops_jobs_with_anytime_answers() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        // Quota far below the job budget: the job must stop at the quota
        // with a partial (but non-empty) sample set.
        sched.register_tenant("capped", Some(60)).unwrap();
        let id = sched
            .submit(&count_scenario("quota", 11, 500), Some("capped"))
            .unwrap();
        sched.run_until_idle();
        let status = sched.poll(id).unwrap();
        assert_eq!(status.state, JobState::Done, "{status:?}");
        assert!(status.snapshot.samples > 0);
        let stats = sched.stats();
        let capped = stats.tenants.iter().find(|t| t.name == "capped").unwrap();
        assert_eq!(capped.queries_issued, 60, "quota must be spent exactly");
        assert_eq!(capped.quota, Some(60));

        // A second job under the spent quota fails: zero queries allowed.
        let id2 = sched
            .submit(&count_scenario("quota-2", 12, 500), Some("capped"))
            .unwrap();
        sched.run_until_idle();
        assert!(matches!(
            sched.poll(id2).unwrap().state,
            JobState::Failed(_)
        ));
    }

    #[test]
    fn scenario_query_limit_is_honoured_without_a_tenant_quota() {
        // A quota-less tenant must not lift the scenario's own hard
        // `query_limit`: the served job has to behave exactly like the batch
        // path, which enforces it.
        let toml = "id = \"limited\"\nseed = 19\n\n[dataset]\nmodel = \"uniform\"\nsize = 60\n\n\
             [interface]\nkind = \"lr\"\nk = 5\nquery_limit = 70\n\n[aggregate]\nkind = \"count\"\n\n\
             [estimator]\nalgorithm = \"lr\"\nbudget = 500\n";
        let dir = std::env::temp_dir().join("lbs-server-test-limited");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("limited.toml");
        std::fs::write(&path, toml).unwrap();
        let scenario = load_scenario(&path).unwrap();

        let mut sched = Scheduler::new(SchedulerConfig::default());
        let id = sched.submit(&scenario, None).unwrap();
        sched.run_until_idle();
        let served = sched.result(id).expect("job finishes").clone();

        // Local batch-equivalent run with the scenario's own budget rules.
        let ctx = sched.scenario_context();
        let workload = build_workload(&scenario, &ctx).unwrap();
        let mut session = workload
            .start_session(workload.backend(), workload.session_config(1, 0))
            .unwrap();
        while !session.is_finished() {
            session.step();
        }
        let local = session.finalize().unwrap();
        assert_eq!(served.value.to_bits(), local.value.to_bits());
        assert_eq!(served.samples, local.samples);
        // The hard limit actually bit: far fewer queries than the soft
        // budget asked for.
        assert!(served.query_cost <= 70, "{}", served.query_cost);
        // Privately-metered job: the default tenant's shared ledger is
        // untouched.
        let stats = sched.stats();
        let tenant = stats
            .tenants
            .iter()
            .find(|t| t.name == DEFAULT_TENANT)
            .unwrap();
        assert_eq!(tenant.queries_issued, 0);
    }

    #[test]
    fn cancel_keeps_partial_estimate() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let id = sched
            .submit(&count_scenario("cancel", 13, 100_000), None)
            .unwrap();
        // A few ticks, then cancel long before the budget is spent.
        for _ in 0..3 {
            sched.tick();
        }
        assert!(sched.cancel(id));
        let status = sched.poll(id).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert!(status.snapshot.samples > 0, "partial samples survive");
        assert!(sched.result(id).is_some(), "anytime estimate is readable");
        // Cancelled jobs leave the run queue and cannot be cancelled twice.
        assert!(!sched.has_runnable_jobs());
        assert!(!sched.cancel(id));
    }

    #[test]
    fn unknown_tenant_is_registered_implicitly_and_duplicates_rejected() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched
            .submit(&count_scenario("implicit", 14, 100), Some("newcomer"))
            .unwrap();
        assert!(sched.register_tenant("newcomer", Some(10)).is_err());
        let stats = sched.stats();
        assert!(stats.tenants.iter().any(|t| t.name == "newcomer"));
    }

    fn cached_scenario(id: &str, seed: u64, budget: u64, backend: &str) -> Scenario {
        let toml = format!(
            "id = \"{id}\"\nseed = {seed}\n\n[dataset]\nmodel = \"uniform\"\nsize = 60\n\n\
             [interface]\nkind = \"lr\"\nk = 5\n\n[backend]\n{backend}\n\n\
             [aggregate]\nkind = \"count\"\n\n\
             [estimator]\nalgorithm = \"lr\"\nbudget = {budget}\n"
        );
        let dir = std::env::temp_dir().join(format!("lbs-server-test-{id}-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{id}.toml"));
        std::fs::write(&path, toml).unwrap();
        load_scenario(&path).unwrap()
    }

    #[test]
    fn shared_cache_serves_identical_answers_across_tenants() {
        let scenario = cached_scenario("shared-cache", 23, 150, "cache = \"shared\"");
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let a = sched.submit(&scenario, Some("alice")).unwrap();
        sched.run_until_idle();
        // The cold run may already hit (estimators do revisit some query
        // points within one run); what matters is that it pays a miss for
        // every distinct key.
        let cold = sched.shared_cache().stats();
        assert!(cold.misses > 0);

        let b = sched.submit(&scenario, Some("bob")).unwrap();
        sched.run_until_idle();
        let first = sched.result(a).unwrap().clone();
        let second = sched.result(b).unwrap();
        assert_eq!(first.value.to_bits(), second.value.to_bits());
        assert_eq!(first.ci95, second.ci95);
        assert_eq!(first.samples, second.samples);
        assert_eq!(first.query_cost, second.query_cost);

        let warm = sched.shared_cache().stats();
        assert!(
            warm.hits > cold.hits,
            "replay under a second tenant must hit: {cold:?} -> {warm:?}"
        );
        assert_eq!(warm.misses, cold.misses, "replay adds no distinct keys");
        // Metered hits: both tenants' ledgers record the same spend even
        // though bob's queries never touched the dataset.
        let stats = sched.stats();
        let spend = |name: &str| {
            stats
                .tenants
                .iter()
                .find(|t| t.name == name)
                .unwrap()
                .queries_issued
        };
        assert_eq!(spend("alice"), spend("bob"));
        assert_eq!(stats.shared_cache.hits, warm.hits);
    }

    #[test]
    fn private_caches_never_cross_tenants() {
        let scenario = cached_scenario("private-cache", 29, 120, "cache = \"private\"");
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let a1 = sched.submit(&scenario, Some("alice")).unwrap();
        sched.run_until_idle();
        let alice_cold = sched.tenant_cache_stats("alice").unwrap();
        let a2 = sched.submit(&scenario, Some("alice")).unwrap();
        sched.run_until_idle();
        let alice_warm = sched.tenant_cache_stats("alice").unwrap();
        assert!(
            alice_warm.hits > alice_cold.hits,
            "same-tenant replay is warm: {alice_cold:?} -> {alice_warm:?}"
        );
        assert_eq!(alice_warm.misses, alice_cold.misses);

        let b = sched.submit(&scenario, Some("bob")).unwrap();
        sched.run_until_idle();
        // Bob's cache starts cold: identical workload, so his counters match
        // Alice's first (cold) run exactly — no cross-tenant warmth.
        let bob = sched.tenant_cache_stats("bob").unwrap();
        assert_eq!(
            bob, alice_cold,
            "a private cache must not leak across tenants"
        );
        assert_eq!(sched.shared_cache().stats().misses, 0);

        // Isolation never costs correctness: all three runs agree bitwise.
        let bits: Vec<u64> = [a1, a2, b]
            .iter()
            .map(|&id| sched.result(id).unwrap().value.to_bits())
            .collect();
        assert_eq!(bits[0], bits[1]);
        assert_eq!(bits[0], bits[2]);
    }

    #[test]
    fn shared_unmetered_submissions_are_refused_by_name() {
        let scenario = cached_scenario(
            "shared-unmetered",
            31,
            100,
            "cache = \"shared\"\ncache_hits_metered = false",
        );
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let err = sched.submit(&scenario, None).unwrap_err();
        assert!(err.contains("arrival order"), "{err}");
        // The private flavour of the same spec is fine.
        let private = cached_scenario(
            "private-unmetered",
            31,
            100,
            "cache = \"private\"\ncache_hits_metered = false",
        );
        sched.submit(&private, None).unwrap();
        sched.run_until_idle();
    }

    #[test]
    fn builtin_scenarios_are_rejected() {
        let dir = std::env::temp_dir().join("lbs-server-test-builtin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("builtin.toml");
        std::fs::write(&path, "id = \"builtin\"\nexperiment = \"fig11\"\n").unwrap();
        let scenario = load_scenario(&path).unwrap();
        let mut sched = Scheduler::new(SchedulerConfig::default());
        assert!(sched.submit(&scenario, None).is_err());
    }
}
