//! `repro` — regenerate the paper's tables and figures from the command
//! line, and drive the aggregate-serving layer.
//!
//! ```text
//! repro [--experiment <id>|all] [--scale tiny|small|paper] [--seed N]
//!       [--threads N] [--out DIR]
//!       [--scenario FILE]... [--scenario-dir DIR] [--smoke] [--alloc-smoke]
//! repro serve  [--addr 127.0.0.1:4157] [--threads N] [--seed N] [--smoke]
//!              [--quota TENANT=LIMIT]...
//! repro client --scenario FILE [--addr 127.0.0.1:4157] [--tenant NAME]
//!              [--poll-ms N] [--timeout-s N] [--check-batch] [--shutdown]
//! ```
//!
//! Results are printed as text tables and written as CSV files under the
//! output directory (default `bench-results/`). Every run also writes
//! `BENCH_repro.json` there: a machine-readable summary with per-experiment
//! wall time, the deepest query cost exercised, the mean relative error and
//! a session-throughput probe of the serving layer (see `EXPERIMENTS.md`
//! for the field-by-field description).
//!
//! `--scenario FILE` (repeatable) and `--scenario-dir DIR` switch the run
//! from the built-in experiment list to declarative scenario specs
//! (TOML/JSON, schema in `EXPERIMENTS.md`); report rows are then keyed by
//! scenario id. `--smoke` shrinks every scenario to a fast CI-sized sweep.
//!
//! `--threads N` fans the estimator samples of every experiment across `N`
//! worker threads (`0` = all cores). Results are **bit-identical for every
//! thread count** — the flag only changes wall-clock time. When more than
//! one thread is requested, the run additionally times a serial-versus-
//! parallel COUNT probe and records the measured speedup (plus a determinism
//! check) in `BENCH_repro.json`.
//!
//! `repro serve` starts the multi-tenant HTTP front-end (`lbs-server`);
//! `repro client` submits a scenario to a running server, streams its
//! anytime estimates while polling, fetches the final result, and — with
//! `--check-batch` — re-runs the same scenario locally through the batch
//! path and asserts the served estimate matches bit for bit.

#![forbid(unsafe_code)]

/// Counting allocator for the `--alloc-smoke` gate: every run pays one
/// relaxed atomic increment per heap allocation (noise next to the
/// allocation itself) and in exchange the hot-path probe can prove the
/// scratch arena keeps steady-state cell construction allocation-free.
#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use lbs_bench::{
    all_experiment_ids,
    report::{gate_against, run_hot_path_probe, run_speedup_probe, run_stratified_probe},
    run_experiment_threaded, BenchRecord, BenchReport, Scale, Scenario, ScenarioContext,
};
use lbs_server::{
    http_request, run_cache_probe, run_loadtest, run_session_probe, LoadtestOptions, Scheduler,
    SchedulerConfig, Server, ServerState,
};

struct Options {
    experiments: Vec<String>,
    scale: Scale,
    seed: u64,
    threads: usize,
    out_dir: PathBuf,
    gate: Option<PathBuf>,
    scenarios: Vec<PathBuf>,
    scenario_dir: Option<PathBuf>,
    smoke: bool,
    alloc_smoke: bool,
}

struct ServeOptions {
    addr: String,
    threads: usize,
    seed: u64,
    smoke: bool,
    quotas: Vec<(String, u64)>,
}

struct ClientOptions {
    addr: String,
    scenario: PathBuf,
    tenant: Option<String>,
    poll_ms: u64,
    timeout_s: u64,
    check_batch: bool,
    shutdown: bool,
}

struct LoadtestCliOptions {
    probe: LoadtestOptions,
    out_dir: PathBuf,
}

enum Command {
    Run(Options),
    Serve(ServeOptions),
    Client(ClientOptions),
    Loadtest(LoadtestCliOptions),
    Help,
}

fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<Command, String> {
    let mut options = ServeOptions {
        addr: "127.0.0.1:4157".to_string(),
        threads: 1,
        seed: 2015,
        smoke: false,
        quotas: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => options.addr = args.next().ok_or("--addr needs a value")?,
            "--threads" | "-t" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads = value
                    .parse()
                    .map_err(|_| format!("bad thread count `{value}`"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                options.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--smoke" => options.smoke = true,
            "--quota" => {
                let value = args.next().ok_or("--quota needs TENANT=LIMIT")?;
                let (tenant, limit) = value
                    .split_once('=')
                    .ok_or(format!("bad quota `{value}` (want TENANT=LIMIT)"))?;
                let limit: u64 = limit
                    .parse()
                    .map_err(|_| format!("bad quota limit `{limit}`"))?;
                options.quotas.push((tenant.to_string(), limit));
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown serve argument `{other}`\n{}", usage())),
        }
    }
    Ok(Command::Serve(options))
}

fn parse_client_args(args: impl Iterator<Item = String>) -> Result<Command, String> {
    let mut addr = "127.0.0.1:4157".to_string();
    let mut scenario: Option<PathBuf> = None;
    let mut tenant: Option<String> = None;
    let mut poll_ms = 100u64;
    let mut timeout_s = 300u64;
    let mut check_batch = false;
    let mut shutdown = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr needs a value")?,
            "--scenario" => {
                scenario = Some(PathBuf::from(
                    args.next().ok_or("--scenario needs a file path")?,
                ))
            }
            "--tenant" => tenant = Some(args.next().ok_or("--tenant needs a value")?),
            "--poll-ms" => {
                let value = args.next().ok_or("--poll-ms needs a value")?;
                poll_ms = value
                    .parse()
                    .map_err(|_| format!("bad poll interval `{value}`"))?;
            }
            "--timeout-s" => {
                let value = args.next().ok_or("--timeout-s needs a value")?;
                timeout_s = value
                    .parse()
                    .map_err(|_| format!("bad timeout `{value}`"))?;
            }
            "--check-batch" => check_batch = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown client argument `{other}`\n{}", usage())),
        }
    }
    Ok(Command::Client(ClientOptions {
        addr,
        scenario: scenario.ok_or("client needs --scenario FILE")?,
        tenant,
        poll_ms: poll_ms.max(1),
        timeout_s,
        check_batch,
        shutdown,
    }))
}

fn parse_loadtest_args(args: impl Iterator<Item = String>) -> Result<Command, String> {
    let mut probe = LoadtestOptions::default();
    let mut out_dir = PathBuf::from("bench-results");
    fn parse_usize(flag: &str, value: Option<String>) -> Result<usize, String> {
        let value = value.ok_or(format!("{flag} needs a value"))?;
        value
            .parse()
            .map_err(|_| format!("bad {flag} value `{value}`"))
    }
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => probe.clients = parse_usize("--clients", args.next())?.max(1),
            "--jobs" => probe.jobs_per_client = parse_usize("--jobs", args.next())?.max(1),
            "--queue-depth" => probe.queue_depth = parse_usize("--queue-depth", args.next())?,
            "--threads" | "-t" => probe.threads = parse_usize("--threads", args.next())?,
            "--budget" => {
                let value = args.next().ok_or("--budget needs a value")?;
                probe.budget = value.parse().map_err(|_| format!("bad budget `{value}`"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                probe.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--check-batch" => probe.check_batch = true,
            "--no-check-batch" => probe.check_batch = false,
            "--out" | "-o" => out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown loadtest argument `{other}`\n{}", usage())),
        }
    }
    Ok(Command::Loadtest(LoadtestCliOptions { probe, out_dir }))
}

fn parse_args() -> Result<Command, String> {
    let mut experiments: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut seed = 2015u64; // the paper's publication year, for determinism
    let mut threads = 1usize;
    let mut out_dir = PathBuf::from("bench-results");
    let mut gate: Option<PathBuf> = None;
    let mut scenarios: Vec<PathBuf> = Vec::new();
    let mut scenario_dir: Option<PathBuf> = None;
    let mut smoke = false;
    let mut alloc_smoke = false;

    let mut args = env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("serve") => {
            args.next();
            return parse_serve_args(args);
        }
        Some("client") => {
            args.next();
            return parse_client_args(args);
        }
        Some("loadtest") => {
            args.next();
            return parse_loadtest_args(args);
        }
        _ => {}
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                let value = args.next().ok_or("--experiment needs a value")?;
                if value == "all" {
                    experiments = all_experiment_ids().iter().map(|s| s.to_string()).collect();
                } else {
                    experiments.push(value);
                }
            }
            "--scale" | "-s" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&value).ok_or(format!("unknown scale `{value}`"))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--threads" | "-t" => {
                let value = args.next().ok_or("--threads needs a value")?;
                threads = value
                    .parse()
                    .map_err(|_| format!("bad thread count `{value}`"))?;
            }
            "--out" | "-o" => {
                out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--gate" | "-g" => {
                gate = Some(PathBuf::from(args.next().ok_or("--gate needs a value")?));
            }
            "--scenario" => {
                scenarios.push(PathBuf::from(
                    args.next().ok_or("--scenario needs a file path")?,
                ));
            }
            "--scenario-dir" => {
                scenario_dir = Some(PathBuf::from(
                    args.next().ok_or("--scenario-dir needs a directory")?,
                ));
            }
            "--smoke" => {
                smoke = true;
            }
            "--alloc-smoke" => {
                alloc_smoke = true;
            }
            "--help" | "-h" => {
                return Ok(Command::Help);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if experiments.is_empty() {
        experiments = all_experiment_ids().iter().map(|s| s.to_string()).collect();
    }
    Ok(Command::Run(Options {
        experiments,
        scale,
        seed,
        threads,
        out_dir,
        gate,
        scenarios,
        scenario_dir,
        smoke,
        alloc_smoke,
    }))
}

fn usage() -> String {
    format!(
        "usage: repro [--experiment <id>|all] [--scale tiny|small|paper] [--seed N]\n\
         \x20            [--threads N] [--out DIR] [--gate REFERENCE.json]\n\
         \x20            [--scenario FILE]... [--scenario-dir DIR] [--smoke]\n\
         \x20      repro serve  [--addr HOST:PORT] [--threads N] [--seed N] [--smoke]\n\
         \x20                   [--quota TENANT=LIMIT]...\n\
         \x20      repro client --scenario FILE [--addr HOST:PORT] [--tenant NAME]\n\
         \x20                   [--poll-ms N] [--timeout-s N] [--check-batch] [--shutdown]\n\
         \x20      repro loadtest [--clients N] [--jobs N] [--queue-depth N] [--budget N]\n\
         \x20                   [--seed N] [--threads N] [--no-check-batch] [--out DIR]\n\
         --threads N       run estimator samples on N worker threads (0 = all cores);\n\
         \x20                 results are bit-identical for every N\n\
         --gate FILE       after the run, diff the fresh BENCH_repro.json against the\n\
         \x20                 reference JSON and exit non-zero on a bench regression\n\
         --scenario FILE   run a declarative scenario spec (TOML/JSON) instead of the\n\
         \x20                 built-in experiment list; repeatable\n\
         --scenario-dir D  run every .toml/.json scenario in a directory (sorted)\n\
         --smoke           shrink scenarios to a fast smoke sweep (micro scale /\n\
         \x20                 capped sizes and budgets)\n\
         --alloc-smoke     run the hot-path allocation smoke probe under the\n\
         \x20                 counting allocator and fail if steady-state\n\
         \x20                 allocations per cell exceed the committed budget\n\
         serve             start the multi-tenant aggregate-serving HTTP front-end\n\
         client            submit a scenario to a running server, stream its anytime\n\
         \x20                 estimates, fetch the result; --check-batch verifies the\n\
         \x20                 served estimate against a local batch run bit for bit;\n\
         \x20                 --shutdown stops the server afterwards\n\
         loadtest          start an in-process server on a loopback port and hammer it\n\
         \x20                 from N concurrent keep-alive clients; records latency\n\
         \x20                 percentiles, jobs/s, reuse rate and the 429 split to\n\
         \x20                 BENCH_loadtest.json and exits non-zero on dropped jobs,\n\
         \x20                 premature backpressure or a served!=batch divergence\n\
         experiments: {}",
        all_experiment_ids().join(", ")
    )
}

/// Prints a finished result, records it in the report, and writes its CSV.
/// Shared by the scenario and experiment paths so their output handling
/// cannot drift apart.
fn emit_result(
    result: &lbs_bench::ExperimentResult,
    wall_time_s: f64,
    out_dir: &std::path::Path,
    report: &mut BenchReport,
) -> Result<(), String> {
    println!("{}", result.to_table());
    if let Some(line) = result.engine_summary_line() {
        println!("  engine: {line}");
    }
    println!("  ({wall_time_s:.1}s)\n");
    report
        .experiments
        .push(BenchRecord::from_result(result, wall_time_s));
    let path = out_dir.join(format!("{}.csv", result.id));
    fs::write(&path, result.to_csv()).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(Command::Run(o)) => o,
        Ok(Command::Serve(o)) => return run_serve(o),
        Ok(Command::Client(o)) => return run_client(o),
        Ok(Command::Loadtest(o)) => return run_loadtest_cmd(o),
        Ok(Command::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = fs::create_dir_all(&options.out_dir) {
        eprintln!("cannot create {}: {e}", options.out_dir.display());
        return ExitCode::FAILURE;
    }
    let scenario_mode = !options.scenarios.is_empty() || options.scenario_dir.is_some();
    let mut report = BenchReport::new(options.scale, options.seed, options.threads);

    if scenario_mode {
        let mut scenarios: Vec<Scenario> = Vec::new();
        for path in &options.scenarios {
            match lbs_bench::load_scenario(path) {
                Ok(s) => scenarios.push(s),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        if let Some(dir) = &options.scenario_dir {
            match lbs_bench::load_scenario_dir(dir) {
                Ok(mut from_dir) => scenarios.append(&mut from_dir),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        // Ids must be unique across --scenario files and --scenario-dir
        // combined: the id keys both the CSV file name and the report
        // record, so a duplicate would silently overwrite its twin.
        let mut seen_ids = std::collections::BTreeSet::new();
        for scenario in &scenarios {
            if !seen_ids.insert(scenario.id.as_str()) {
                eprintln!(
                    "duplicate scenario id `{}` across --scenario/--scenario-dir inputs",
                    scenario.id
                );
                return ExitCode::from(2);
            }
        }
        // lbs-lint: allow(nondet-debug-fmt, reason = "Scale is a fieldless enum; Debug prints a fixed variant name")
        println!(
            "Running {} scenario(s) at {:?} scale (seed {}, {} thread(s){})\n",
            scenarios.len(),
            options.scale,
            options.seed,
            options.threads,
            if options.smoke { ", smoke" } else { "" },
        );
        let ctx = ScenarioContext {
            scale: options.scale,
            seed: options.seed,
            threads: options.threads,
            smoke: options.smoke,
        };
        for scenario in &scenarios {
            // lbs-lint: allow(ambient-time, reason = "CLI wall-time reporting only; no estimate depends on it")
            let started = std::time::Instant::now();
            let result = match lbs_bench::run_scenario(scenario, &ctx) {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("scenario failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let wall_time_s = started.elapsed().as_secs_f64();
            if let Err(e) = emit_result(&result, wall_time_s, &options.out_dir, &mut report) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let valid = all_experiment_ids();
        for id in &options.experiments {
            if !valid.contains(&id.as_str()) {
                eprintln!("unknown experiment `{id}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
        // lbs-lint: allow(nondet-debug-fmt, reason = "Scale is a fieldless enum; Debug prints a fixed variant name")
        println!(
            "Reproducing {} experiment(s) at {:?} scale (seed {}, {} thread(s))\n",
            options.experiments.len(),
            options.scale,
            options.seed,
            options.threads,
        );
        for id in &options.experiments {
            // lbs-lint: allow(ambient-time, reason = "CLI wall-time reporting only; no estimate depends on it")
            let started = std::time::Instant::now();
            let result = run_experiment_threaded(id, options.scale, options.seed, options.threads);
            let wall_time_s = started.elapsed().as_secs_f64();
            if let Err(e) = emit_result(&result, wall_time_s, &options.out_dir, &mut report) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !scenario_mode {
        // Session-scheduler probe: a fixed bundle of small jobs through the
        // serving layer, timed in submission order and re-run shuffled for
        // the determinism check. Cheap (tiny workloads) and recorded in
        // every experiment-mode BENCH_repro.json.
        println!("Timing the session-scheduler probe...");
        let probe_threads = lbs_core::SampleDriver::new(options.threads).threads();
        let sessions = run_session_probe(options.seed, probe_threads);
        println!(
            "  {} jobs in {:.2}s -> {:.1} jobs/s, mean time to first estimate {:.0} ms \
             (deterministic: {})\n",
            sessions.jobs,
            sessions.wall_s,
            sessions.jobs_per_s,
            sessions.mean_time_to_first_estimate_ms,
            sessions.deterministic,
        );
        report.sessions = Some(sessions);

        // Shared answer-cache probe: the same cached scenario submitted
        // twice under two tenants; the replay must be served from the warm
        // cross-tenant cache while reproducing the estimate bit for bit.
        println!("Timing the shared answer-cache probe...");
        let cache = run_cache_probe(options.seed, probe_threads);
        println!(
            "  {} hits / {} misses ({:.0}% hit rate), {} invalidations, {} evictions \
             (deterministic: {})\n",
            cache.hits,
            cache.misses,
            cache.hit_rate * 100.0,
            cache.invalidations,
            cache.evictions,
            cache.deterministic,
        );
        report.cache = Some(cache);

        // Concurrent-load probe: an in-process event-loop server hammered
        // by a few keep-alive clients, every served estimate verified
        // bitwise against a batch re-run. Small on purpose; `repro
        // loadtest` runs the same probe with operator-chosen knobs.
        println!("Timing the concurrent-load probe...");
        match run_loadtest(&LoadtestOptions {
            clients: 4,
            jobs_per_client: 2,
            queue_depth: 8,
            budget: 100,
            seed: options.seed,
            threads: probe_threads,
            check_batch: true,
        }) {
            Ok(loadtest) => {
                print_loadtest(&loadtest);
                report.loadtest = Some(loadtest);
            }
            Err(e) => {
                eprintln!("concurrent-load probe failed: {e}");
                return ExitCode::FAILURE;
            }
        }

        // Stratified-estimation probe: the same COUNT workload estimated
        // flat and through the stratified Horvitz-Thompson combiner at an
        // equal query budget; records the measured variance ratio and a
        // thread-count determinism check.
        println!("Timing the stratified-estimation probe...");
        let stratified = run_stratified_probe(options.scale, options.seed, probe_threads);
        println!(
            "  {} ({} strata, {} allocation): std error {:.3} vs flat {:.3} -> \
             variance ratio {:.3} at budget {} (deterministic: {})\n",
            stratified.partition,
            stratified.count,
            stratified.allocation,
            stratified.stratified_std_error,
            stratified.unstratified_std_error,
            stratified.variance_ratio,
            stratified.budget,
            stratified.deterministic,
        );
        report.stratified = Some(stratified);
    }

    if options.alloc_smoke {
        // Hot-path allocation smoke: the same cell batch built with cold
        // and warm scratch arenas under the counting global allocator; the
        // warm (steady-state) allocations per cell are gated against the
        // committed budget.
        println!("Running the hot-path allocation smoke probe...");
        let hot_path =
            run_hot_path_probe(options.scale, options.seed, &|| ALLOC.allocation_count());
        println!(
            "  {}: cold {:.1} allocs/cell, warm {:.2} allocs/cell (budget {:.1}, counted: {})\n",
            hot_path.probe,
            hot_path.cold_allocs_per_cell,
            hot_path.warm_allocs_per_cell,
            hot_path.budget_allocs_per_cell,
            hot_path.counted,
        );
        let violations = hot_path.violations();
        report.hot_path = Some(hot_path);
        if !violations.is_empty() {
            for violation in &violations {
                eprintln!("  - {violation}");
            }
            return ExitCode::FAILURE;
        }
    }

    if options.threads != 1 {
        println!("Timing the serial-versus-parallel COUNT probe...");
        // Resolve `0 = all cores` the same way the experiments do, so the
        // probe measures the thread count the run actually used.
        let probe_threads = lbs_core::SampleDriver::new(options.threads)
            .threads()
            .max(2);
        let probe = run_speedup_probe(options.scale, options.seed, probe_threads);
        println!(
            "  serial {:.2}s, {} threads {:.2}s -> speedup {:.2}x ({} CPU(s) available, deterministic: {})\n",
            probe.serial_wall_s,
            probe.threads,
            probe.parallel_wall_s,
            probe.speedup,
            probe.available_parallelism,
            probe.deterministic,
        );
        report.speedup = Some(probe);
    }

    let json_path = options.out_dir.join("BENCH_repro.json");
    if let Err(e) = fs::write(&json_path, report.to_json()) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "CSV files and BENCH_repro.json written to {}",
        options.out_dir.display()
    );

    if let Some(reference_path) = &options.gate {
        let reference: BenchReport = match fs::read_to_string(reference_path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
        {
            Ok(reference) => reference,
            Err(e) => {
                eprintln!(
                    "cannot load gate reference {}: {e}",
                    reference_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let violations = gate_against(&report, &reference);
        if violations.is_empty() {
            println!(
                "bench gate PASSED against {} ({} experiments compared)",
                reference_path.display(),
                reference.experiments.len()
            );
        } else {
            eprintln!("bench gate FAILED against {}:", reference_path.display());
            for violation in &violations {
                eprintln!("  - {violation}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Prints the shared human-readable summary of a loadtest report — used by
/// both the experiment-mode probe and the `repro loadtest` subcommand.
fn print_loadtest(report: &lbs_bench::LoadtestBenchReport) {
    println!(
        "  {} clients x {} jobs: {} completed, {} dropped in {:.2}s -> {:.1} jobs/s",
        report.clients,
        report.jobs_per_client,
        report.completed_jobs,
        report.dropped_jobs,
        report.wall_s,
        report.jobs_per_s,
    );
    println!(
        "  submit->first-estimate p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        report.p50_first_estimate_ms, report.p95_first_estimate_ms, report.p99_first_estimate_ms,
    );
    println!(
        "  {} requests over {} connections ({:.0}% keep-alive reuse), \
         429s: {} queue / {} quota (queue high water {}/{})",
        report.http_requests,
        report.connections,
        report.keep_alive_reuse * 100.0,
        report.queue_429,
        report.quota_429,
        report.queue_high_water,
        report.queue_depth,
    );
    if report.check_batch {
        println!(
            "  served == batch bitwise: {}\n",
            if report.batch_identical { "yes" } else { "NO" }
        );
    } else {
        println!("  (batch check skipped)\n");
    }
}

/// `repro loadtest` — the concurrent-load probe with operator-chosen knobs,
/// written to `BENCH_loadtest.json` and gated on its own violations.
fn run_loadtest_cmd(options: LoadtestCliOptions) -> ExitCode {
    if let Err(e) = fs::create_dir_all(&options.out_dir) {
        eprintln!("cannot create {}: {e}", options.out_dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "Load-testing the event-loop server ({} clients x {} jobs, queue depth {})...",
        options.probe.clients, options.probe.jobs_per_client, options.probe.queue_depth,
    );
    let loadtest = match run_loadtest(&options.probe) {
        Ok(loadtest) => loadtest,
        Err(e) => {
            eprintln!("loadtest failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_loadtest(&loadtest);
    let violations = loadtest.violations();

    let mut report = BenchReport::new(Scale::Small, options.probe.seed, options.probe.threads);
    report.loadtest = Some(loadtest);
    let json_path = options.out_dir.join("BENCH_loadtest.json");
    if let Err(e) = fs::write(&json_path, report.to_json()) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("loadtest report written to {}", json_path.display());

    if violations.is_empty() {
        println!("loadtest gate PASSED");
        ExitCode::SUCCESS
    } else {
        eprintln!("loadtest gate FAILED:");
        for violation in &violations {
            eprintln!("  - {violation}");
        }
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// `repro serve` / `repro client`
// ---------------------------------------------------------------------------

fn run_serve(options: ServeOptions) -> ExitCode {
    use std::io::Write as _;

    let mut scheduler = Scheduler::new(SchedulerConfig {
        threads: options.threads,
        seed: options.seed,
        smoke: options.smoke,
    });
    for (tenant, limit) in &options.quotas {
        if let Err(e) = scheduler.register_tenant(tenant, Some(*limit)) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        println!("tenant `{tenant}`: quota {limit} queries");
    }
    let state = ServerState::new(scheduler);
    let server = match Server::start(&options.addr, state) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("lbs-server listening on http://{}", server.addr());
    println!(
        "  POST /jobs | GET /jobs/<id> | GET /jobs/<id>/result?wait_ms=N | \
         DELETE /jobs/<id> | GET /stats | POST /shutdown"
    );
    // The smoke harness greps for the listening line from a redirected
    // stdout; make sure it is on disk before the first client connects.
    let _ = std::io::stdout().flush();
    server.join();
    println!("server stopped");
    ExitCode::SUCCESS
}

/// Reads a `u64` out of a JSON map field.
fn value_u64(value: &serde::Value, key: &str) -> Option<u64> {
    match value.get(key) {
        Some(serde::Value::U64(n)) => Some(*n),
        Some(serde::Value::I64(n)) => u64::try_from(*n).ok(),
        Some(serde::Value::F64(n)) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn run_client(options: ClientOptions) -> ExitCode {
    match client_inner(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn client_inner(options: &ClientOptions) -> Result<(), String> {
    use serde::{Deserialize as _, Value};

    // Parse the spec to its raw Value (that is what ships over the wire)
    // and validate it locally for a friendly error before submitting.
    let text = fs::read_to_string(&options.scenario)
        .map_err(|e| format!("cannot read {}: {e}", options.scenario.display()))?;
    let is_json = options
        .scenario
        .extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("json"));
    let scenario_value: Value = if is_json {
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", options.scenario.display()))?
    } else {
        lbs_bench::toml_lite::parse(&text)
            .map_err(|e| format!("{}: {e}", options.scenario.display()))?
    };
    let scenario = Scenario::from_value(&scenario_value)
        .map_err(|e| format!("{}: {e}", options.scenario.display()))?;
    scenario
        .validate()
        .map_err(|e| format!("{}: {e}", options.scenario.display()))?;

    let mut fields = Vec::new();
    if let Some(tenant) = &options.tenant {
        fields.push(("tenant".to_string(), Value::Str(tenant.clone())));
    }
    fields.push(("scenario".to_string(), scenario_value));
    let body = serde_json::to_string(&Value::Map(fields)).map_err(|e| e.to_string())?;

    let (status, reply) = http_request(&options.addr, "POST", "/jobs", Some(&body))?;
    let reply: Value =
        serde_json::from_str(&reply).map_err(|e| format!("bad submit reply: {e} ({reply})"))?;
    if status != 201 {
        // lbs-lint: allow(nondet-debug-fmt, reason = "error path; vendored Value's Debug is deterministic (ordered map)")
        return Err(format!("submit failed (HTTP {status}): {reply:?}"));
    }
    let job_id =
        value_u64(&reply, "job_id").ok_or_else(|| "submit reply without job_id".to_string())?;
    println!("submitted `{}` as job {job_id}", scenario.id);

    // Poll the anytime estimate until the job settles.
    // lbs-lint: allow(ambient-time, reason = "client-side poll deadline; served results are unaffected")
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(options.timeout_s);
    let final_state = loop {
        let (status, reply) = http_request(&options.addr, "GET", &format!("/jobs/{job_id}"), None)?;
        if status != 200 {
            return Err(format!("poll failed (HTTP {status}): {reply}"));
        }
        let parsed: Value =
            serde_json::from_str(&reply).map_err(|e| format!("bad poll reply: {e}"))?;
        let snapshot = parsed
            .get("snapshot")
            .ok_or_else(|| "poll reply without snapshot".to_string())?;
        let samples = value_u64(snapshot, "samples").unwrap_or(0);
        let queries = value_u64(snapshot, "queries").unwrap_or(0);
        let estimate = snapshot.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        let std_error = snapshot
            .get("std_error")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        println!(
            "  anytime: samples {samples:>5}  queries {queries:>7}  \
             estimate {estimate:>12.2} ± {:.2}",
            1.96 * std_error
        );
        let running = matches!(parsed.get("state"), Some(Value::Str(s)) if s == "Running");
        if !running {
            break parsed;
        }
        // lbs-lint: allow(ambient-time, reason = "client-side poll deadline; served results are unaffected")
        if std::time::Instant::now() >= deadline {
            return Err(format!("timed out after {}s", options.timeout_s));
        }
        std::thread::sleep(std::time::Duration::from_millis(options.poll_ms));
    };

    let (status, reply) = http_request(
        &options.addr,
        "GET",
        &format!("/jobs/{job_id}/result?wait_ms=1000"),
        None,
    )?;
    if status != 200 {
        return Err(format!("result fetch failed (HTTP {status}): {reply}"));
    }
    let result: Value =
        serde_json::from_str(&reply).map_err(|e| format!("bad result reply: {e}"))?;
    let estimate = result
        .get("estimate")
        // lbs-lint: allow(nondet-debug-fmt, reason = "error path; vendored Value's Debug is deterministic (ordered map)")
        .ok_or_else(|| format!("job settled without an estimate: {final_state:?}"))?;
    let served_value = estimate
        .get("value")
        .and_then(Value::as_f64)
        .ok_or_else(|| "estimate without a value".to_string())?;
    let query_cost = value_u64(estimate, "query_cost").unwrap_or(0);
    let samples = value_u64(estimate, "samples").unwrap_or(0);
    println!("result: estimate {served_value:.4} ({samples} samples, {query_cost} queries)");

    if options.check_batch {
        // Re-run the same scenario locally through the batch-equivalent
        // session path and require a bit-exact match with the served
        // estimate. The server's actual job-construction config (seed,
        // smoke caps) comes from /stats so a non-default `repro serve
        // --seed`/`--smoke` cannot produce a spurious divergence; the
        // thread count never changes bits.
        let (status, stats) = http_request(&options.addr, "GET", "/stats", None)?;
        if status != 200 {
            return Err(format!("stats fetch failed (HTTP {status}): {stats}"));
        }
        let stats: Value =
            serde_json::from_str(&stats).map_err(|e| format!("bad stats reply: {e}"))?;
        let ctx = ScenarioContext {
            scale: Scale::Small,
            seed: value_u64(&stats, "seed").unwrap_or(2015),
            threads: 1,
            smoke: matches!(stats.get("smoke"), Some(Value::Bool(true))),
        };
        let workload = lbs_bench::build_workload(&scenario, &ctx)?;
        let backend = workload.backend();
        let mut session = workload.start_session(backend, workload.session_config(1, 0))?;
        while !session.is_finished() {
            session.step();
        }
        let local = session
            .finalize()
            .map_err(|e| format!("local batch run failed: {e}"))?;
        if local.value.to_bits() != served_value.to_bits() {
            return Err(format!(
                "SERVED ESTIMATE DIVERGES FROM BATCH PATH: served {served_value} \
                 vs batch {} (bitwise comparison)",
                local.value
            ));
        }
        println!(
            "check-batch: served estimate matches the local batch path bit for bit \
             ({served_value})"
        );
    }

    if options.shutdown {
        let (status, _) = http_request(&options.addr, "POST", "/shutdown", None)?;
        if status != 200 {
            return Err(format!("shutdown request failed (HTTP {status})"));
        }
        println!("server shutdown requested");
    }
    Ok(())
}
