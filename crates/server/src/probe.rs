//! Session-throughput probe: the serving layer's entry in
//! `BENCH_repro.json`.
//!
//! Builds a fixed bundle of small single-tenant estimation jobs, runs them
//! through the round-robin [`Scheduler`] once in submission order (timed)
//! and once with the submission order shuffled (deterministically, from the
//! probe seed), and compares every job's final estimate bitwise. The timed
//! run yields the throughput metrics (jobs/s, mean time-to-first-estimate);
//! the comparison yields the `deterministic` flag the bench gate checks.

use std::collections::BTreeMap;

use lbs_bench::{CacheBenchReport, Scenario, SessionBenchReport};
use serde::Deserialize;

use crate::scheduler::{Scheduler, SchedulerConfig};

/// Number of jobs in the probe bundle.
const PROBE_JOBS: usize = 6;

/// Builds the `i`-th probe scenario: tiny uniform COUNT workloads with
/// distinct seeds and budgets so the bundle exercises interleaving of jobs
/// of different lengths.
fn probe_scenario(i: usize, seed: u64) -> Scenario {
    let toml = format!(
        "id = \"probe_{i}\"\nseed = {}\n\n[dataset]\nmodel = \"uniform\"\nsize = {}\n\n\
         [interface]\nkind = \"lr\"\nk = 5\n\n[aggregate]\nkind = \"count\"\n\n\
         [estimator]\nalgorithm = \"lr\"\nbudget = {}\n\n[session]\nwave_size = 8\n",
        seed ^ (77 + i as u64),
        40 + 20 * i,
        80 + 40 * i,
    );
    let value = lbs_bench::toml_lite::parse(&toml).expect("probe scenario TOML is well-formed");
    let scenario = Scenario::from_value(&value).expect("probe scenario deserializes");
    scenario.validate().expect("probe scenario validates");
    scenario
}

/// Runs the bundle in the given submission order and returns per-scenario
/// `(estimate bits, query cost)` plus the throughput numbers of the run.
fn run_bundle(
    order: &[usize],
    seed: u64,
    threads: usize,
) -> (BTreeMap<String, (u64, u64)>, SessionBenchReport) {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        threads,
        seed,
        smoke: false,
    });
    // Build every workload (TOML parse + dataset generation) before the
    // clock starts: the probe measures the *serving* layer, not scenario
    // construction — and pre-building keeps one job's time-to-first-estimate
    // from absorbing the builds of later submissions.
    let ctx = scheduler.scenario_context();
    let workloads: Vec<(usize, lbs_bench::Workload)> = order
        .iter()
        .map(|&i| {
            let scenario = probe_scenario(i, seed);
            let workload =
                lbs_bench::build_workload(&scenario, &ctx).expect("probe workloads build");
            (i, workload)
        })
        .collect();
    let started = std::time::Instant::now();
    let ids: Vec<(usize, u64)> = workloads
        .into_iter()
        .map(|(i, workload)| {
            let id = scheduler
                .submit_workload(workload, Some("probe"))
                .expect("probe scenarios submit cleanly");
            (i, id)
        })
        .collect();
    let ticks = scheduler.run_until_idle();
    let wall_s = started.elapsed().as_secs_f64();

    let mut estimates = BTreeMap::new();
    let mut first_estimate_ms_sum = 0.0;
    for &(i, id) in &ids {
        let estimate = scheduler
            .result(id)
            .expect("probe jobs finish with results");
        estimates.insert(
            format!("probe_{i}"),
            (estimate.value.to_bits(), estimate.query_cost),
        );
        first_estimate_ms_sum += scheduler
            .poll(id)
            .and_then(|s| s.time_to_first_estimate_ms)
            .unwrap_or(0) as f64;
    }
    let report = SessionBenchReport {
        jobs: ids.len(),
        wall_s,
        jobs_per_s: ids.len() as f64 / wall_s.max(1e-9),
        mean_time_to_first_estimate_ms: first_estimate_ms_sum / ids.len().max(1) as f64,
        ticks,
        deterministic: false, // filled by the caller after the comparison
    };
    (estimates, report)
}

/// Runs the probe and returns the `sessions` record of `BENCH_repro.json`.
pub fn run_session_probe(seed: u64, threads: usize) -> SessionBenchReport {
    let in_order: Vec<usize> = (0..PROBE_JOBS).collect();
    // A fixed derangement-ish shuffle keyed only to the job count: the
    // point is a *different* arrival order, not a random one.
    let shuffled: Vec<usize> = (0..PROBE_JOBS).map(|i| (i + 3) % PROBE_JOBS).collect();

    let (estimates_a, mut report) = run_bundle(&in_order, seed, threads);
    let (estimates_b, _) = run_bundle(&shuffled, seed, threads);
    report.deterministic = estimates_a == estimates_b;
    report
}

/// Builds the shared-cache probe scenario: a small uniform COUNT workload
/// with `cache = "shared"`.
fn cache_probe_scenario(seed: u64) -> Scenario {
    let toml = format!(
        "id = \"cache_probe\"\nseed = {}\n\n[dataset]\nmodel = \"uniform\"\nsize = 60\n\n\
         [interface]\nkind = \"lr\"\nk = 5\n\n[backend]\ncache = \"shared\"\n\n\
         [aggregate]\nkind = \"count\"\n\n[estimator]\nalgorithm = \"lr\"\nbudget = 120\n",
        seed ^ 0xCAC4E,
    );
    let value = lbs_bench::toml_lite::parse(&toml).expect("cache probe TOML is well-formed");
    let scenario = Scenario::from_value(&value).expect("cache probe scenario deserializes");
    scenario.validate().expect("cache probe scenario validates");
    scenario
}

/// Runs the shared answer-cache probe: the same `cache = "shared"` scenario
/// is submitted twice, under two different tenants, through one scheduler.
/// The first run populates the cross-tenant cache (all misses); the second
/// must be served from it (hits > 0) while reproducing the first estimate
/// bit for bit — the `deterministic` flag the bench gate checks. Returns the
/// `cache` record of `BENCH_repro.json`.
pub fn run_cache_probe(seed: u64, threads: usize) -> CacheBenchReport {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        threads,
        seed,
        smoke: false,
    });
    let ctx = scheduler.scenario_context();
    let scenario = cache_probe_scenario(seed);
    let ids: Vec<u64> = ["tenant-a", "tenant-b"]
        .iter()
        .map(|tenant| {
            let workload =
                lbs_bench::build_workload(&scenario, &ctx).expect("cache probe workload builds");
            let id = scheduler
                .submit_workload(workload, Some(tenant))
                .expect("cache probe submits cleanly");
            scheduler.run_until_idle();
            id
        })
        .collect();
    let first = scheduler.result(ids[0]).expect("cache probe jobs finish");
    let second = scheduler.result(ids[1]).expect("cache probe jobs finish");
    let stats = scheduler.shared_cache().stats();
    CacheBenchReport {
        hits: stats.hits,
        misses: stats.misses,
        invalidations: stats.invalidations,
        evictions: stats.evictions,
        hit_rate: stats.hit_rate(),
        deterministic: first.value.to_bits() == second.value.to_bits()
            && first.ci95 == second.ci95
            && first.samples == second.samples
            && first.query_cost == second.query_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_probe_hits_and_stays_deterministic() {
        let report = run_cache_probe(2015, 1);
        assert!(report.deterministic, "warm replay changed bits");
        assert!(report.hits > 0, "replay produced no cache hits");
        assert!(report.misses > 0);
        assert!(report.hit_rate > 0.0 && report.hit_rate < 1.0);
        assert_eq!(report.invalidations, 0);
        assert_eq!(report.evictions, 0);
    }

    #[test]
    fn probe_is_deterministic_and_reports_throughput() {
        let report = run_session_probe(2015, 1);
        assert!(report.deterministic, "scheduler interleave changed bits");
        assert_eq!(report.jobs, PROBE_JOBS);
        assert!(report.jobs_per_s > 0.0);
        assert!(report.wall_s > 0.0);
        assert!(report.ticks >= PROBE_JOBS as u64);
    }
}
