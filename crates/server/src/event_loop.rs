//! The non-blocking, event-driven server core.
//!
//! One **event-loop thread** multiplexes every connection over the vendored
//! [`polling`] readiness shim (`poll(2)` under the hood): non-blocking
//! accepts, per-connection read/write buffers with an incremental HTTP/1.1
//! parse state machine ([`crate::http`]), keep-alive, idle timeouts, and
//! explicit backpressure. Two helper threads complete the core:
//!
//! * the **ticker** drives [`Scheduler::tick`] continuously (unchanged from
//!   the blocking server), and
//! * the **submission worker** drains the bounded
//!   [`SubmissionQueue`] front-to-back — build the workload *outside* the
//!   scheduler lock, submit, post the completion, wake the loop.
//!
//! ## The determinism contract
//!
//! **Admission order is the schedule; readiness order is not.** The event
//! loop may parse sockets in any order the OS reports them, but a job only
//! exists once `try_enqueue` admits it, and a single worker feeds admitted
//! jobs to the scheduler strictly FIFO. Whatever the interleaving of
//! clients, the scheduler observes one serial submission stream — so served
//! estimates stay bitwise equal to a batch run of the same scenarios
//! (`repro client --check-batch` asserts exactly this).
//!
//! ## Backpressure, not blocking
//!
//! | condition | reply |
//! |---|---|
//! | submission queue full | `429 Too Many Requests`, `Retry-After: 1` |
//! | tenant quota exhausted | `429 Too Many Requests`, `Retry-After: 60` |
//! | body larger than [`ServerConfig::max_body_bytes`] | `413 Payload Too Large` |
//! | header/body stalled past [`ServerConfig::header_timeout`] | `408 Request Timeout` |
//! | idle keep-alive past [`ServerConfig::keep_alive_timeout`] | silent close |
//! | `POST /shutdown` | graceful drain (stop accepting, finish queued work, flush, exit) |

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lbs_bench::Scenario;
use polling::{Event, Events, Poller};
use serde::{Deserialize, Serialize, Value};

use crate::http::{find_head_end, json_of, RequestHead, Response};
use crate::queue::SubmissionQueue;
use crate::scheduler::{JobState, Scheduler};

/// Poller key reserved for the listener; connections count up from 1.
const LISTENER_KEY: usize = 0;
/// Longest honoured `wait_ms` long-poll.
const MAX_WAIT_MS: u64 = 120_000;

/// The one ambient-clock read of the event loop. Wall time only decides
/// *when* the server replies (timeouts, drain deadlines) — never what any
/// reply contains, so determinism of served results is untouched.
fn now() -> Instant {
    // lbs-lint: allow(ambient-time, reason = "connection timeouts and drain deadlines decide when to reply, never what the reply contains")
    Instant::now()
}

/// Tuning knobs of the event-driven server core (see `SERVING.md` for the
/// operational guidance behind each default).
///
/// ```
/// use std::time::Duration;
/// use lbs_server::ServerConfig;
///
/// let config = ServerConfig {
///     queue_depth: 8,
///     keep_alive_timeout: Duration::from_secs(5),
///     ..ServerConfig::default()
/// };
/// assert_eq!(config.queue_depth, 8);
/// assert_eq!(config.max_connections, 256);
/// ```
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bound of the job-submission queue; beyond it `POST /jobs` replies
    /// `429` with `Retry-After: 1`.
    pub queue_depth: usize,
    /// Most connections held open at once; the listener pauses (stops
    /// accepting) at the cap and resumes as connections close.
    pub max_connections: usize,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_timeout: Duration,
    /// A connection that started a request but stalls mid-header or
    /// mid-body is answered `408 Request Timeout` after this long.
    pub header_timeout: Duration,
    /// Largest accepted header block (`400` beyond it).
    pub max_header_bytes: usize,
    /// Largest accepted request body (`413` beyond it).
    pub max_body_bytes: usize,
    /// On shutdown, how long the drain may take before remaining
    /// connections are dropped.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            max_connections: 256,
            keep_alive_timeout: Duration::from_secs(30),
            header_timeout: Duration::from_secs(10),
            max_header_bytes: 64 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Shared state of a running server.
pub struct ServerState {
    /// The scheduler behind the API (public so embedders and the session
    /// probe can drive it directly).
    pub scheduler: Mutex<Scheduler>,
    shutdown: AtomicBool,
    /// Wakes the event loop when shutdown is requested off-loop.
    waker: Mutex<Option<Arc<Poller>>>,
}

impl ServerState {
    /// Wraps a scheduler for serving.
    pub fn new(scheduler: Scheduler) -> Arc<Self> {
        Arc::new(ServerState {
            scheduler: Mutex::new(scheduler),
            shutdown: AtomicBool::new(false),
            waker: Mutex::new(None),
        })
    }

    /// Signals the server to drain and exit (same as `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(poller) = self.waker.lock().expect("waker lock").as_ref() {
            let _ = poller.notify();
        }
    }

    /// `true` once shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn attach_waker(&self, poller: Arc<Poller>) {
        *self.waker.lock().expect("waker lock") = Some(poller);
    }
}

/// Wire-level counters of a running server (monotone; never reset).
#[derive(Default)]
struct HttpCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    queue_429: AtomicU64,
    quota_429: AtomicU64,
    payload_413: AtomicU64,
    timeout_408: AtomicU64,
}

/// Snapshot of the server's wire-level counters plus admission-queue gauges,
/// served under the `http` key of `GET /stats`.
#[derive(Clone, Debug, Serialize)]
pub struct HttpStats {
    /// TCP connections accepted so far.
    pub connections: u64,
    /// Requests fully parsed.
    pub requests: u64,
    /// Responses written (includes error replies).
    pub responses: u64,
    /// `429`s from a full submission queue.
    pub queue_429: u64,
    /// `429`s from an exhausted tenant quota.
    pub quota_429: u64,
    /// `413 Payload Too Large` replies.
    pub payload_413: u64,
    /// `408 Request Timeout` replies.
    pub timeout_408: u64,
    /// Submissions admitted but not yet drained by the worker.
    pub queue_depth: usize,
    /// The admission bound ([`ServerConfig::queue_depth`]).
    pub queue_capacity: usize,
    /// Deepest the queue has ever been.
    pub queue_high_water: usize,
}

fn snapshot_http_stats(counters: &HttpCounters, queue: &SubmissionQueue) -> HttpStats {
    HttpStats {
        connections: counters.connections.load(Ordering::Relaxed),
        requests: counters.requests.load(Ordering::Relaxed),
        responses: counters.responses.load(Ordering::Relaxed),
        queue_429: counters.queue_429.load(Ordering::Relaxed),
        quota_429: counters.quota_429.load(Ordering::Relaxed),
        payload_413: counters.payload_413.load(Ordering::Relaxed),
        timeout_408: counters.timeout_408.load(Ordering::Relaxed),
        queue_depth: queue.len(),
        queue_capacity: queue.capacity(),
        queue_high_water: queue.high_water(),
    }
}

/// A running HTTP server: event-loop thread (all socket I/O), ticker thread
/// (drives the scheduler), and submission-worker thread (drains the
/// admission queue). See the module docs for the full architecture.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    queue: Arc<SubmissionQueue>,
    counters: Arc<HttpCounters>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving with [`ServerConfig::default`].
    pub fn start(addr: &str, state: Arc<ServerState>) -> std::io::Result<Server> {
        Server::start_with_config(addr, state, ServerConfig::default())
    }

    /// Binds `addr` and starts serving with explicit tuning knobs.
    pub fn start_with_config(
        addr: &str,
        state: Arc<ServerState>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let poller = Arc::new(Poller::new()?);
        let queue = SubmissionQueue::new(config.queue_depth);
        let counters = Arc::new(HttpCounters::default());
        state.attach_waker(Arc::clone(&poller));

        let ticker_state = Arc::clone(&state);
        let ticker = std::thread::spawn(move || {
            while !ticker_state.shutting_down() {
                let progressed = ticker_state
                    .scheduler
                    .lock()
                    .expect("scheduler lock")
                    .tick()
                    .is_some();
                if !progressed {
                    // Idle: nothing runnable. Sleep briefly instead of
                    // spinning on the lock.
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        });

        let worker_state = Arc::clone(&state);
        let worker_queue = Arc::clone(&queue);
        let worker_poller = Arc::clone(&poller);
        let worker = std::thread::spawn(move || {
            submission_worker(worker_state, worker_queue, worker_poller);
        });

        let loop_state = Arc::clone(&state);
        let loop_queue = Arc::clone(&queue);
        let loop_counters = Arc::clone(&counters);
        let event_loop = std::thread::spawn(move || {
            let mut event_loop = EventLoop {
                listener,
                poller,
                state: Arc::clone(&loop_state),
                queue: Arc::clone(&loop_queue),
                counters: loop_counters,
                config,
                conns: BTreeMap::new(),
                next_key: LISTENER_KEY + 1,
                draining: false,
                drain_deadline: None,
                orphans: Vec::new(),
            };
            let _ = event_loop.run();
            // Whether the loop drained cleanly or died on a poller error,
            // the other threads must not outlive it.
            loop_state.request_shutdown();
            loop_queue.close();
        });

        Ok(Server {
            state,
            addr: local,
            queue,
            counters,
            threads: vec![ticker, worker, event_loop],
        })
    }

    /// The bound address (useful with an ephemeral `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state handle.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// The bounded admission queue — exposed so tests and operators can
    /// [`pause`](SubmissionQueue::pause) the drain worker (deterministic
    /// saturation) and read depth / high-water gauges.
    pub fn admission_queue(&self) -> Arc<SubmissionQueue> {
        Arc::clone(&self.queue)
    }

    /// Snapshot of the wire-level counters (also served under `http` in
    /// `GET /stats`).
    pub fn http_stats(&self) -> HttpStats {
        snapshot_http_stats(&self.counters, &self.queue)
    }

    /// Blocks until the server shuts down (via `POST /shutdown` or
    /// [`ServerState::request_shutdown`]).
    pub fn join(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

/// Drains the admission queue into the scheduler, strictly FIFO. The
/// expensive workload build happens here, *outside* the scheduler lock, so
/// running jobs keep ticking while a large submission materialises — without
/// giving up the serial admission order (one worker, one queue).
fn submission_worker(state: Arc<ServerState>, queue: Arc<SubmissionQueue>, poller: Arc<Poller>) {
    while let Some(job) = queue.pop_blocking() {
        let ctx = state
            .scheduler
            .lock()
            .expect("scheduler lock")
            .scenario_context();
        let result = lbs_bench::build_workload(&job.scenario, &ctx).and_then(|workload| {
            state
                .scheduler
                .lock()
                .expect("scheduler lock")
                .submit_workload(workload, job.tenant.as_deref())
        });
        queue.complete(job.ticket, result);
        let _ = poller.notify();
    }
}

/// Lifecycle phase of one connection (the per-connection state machine).
enum Phase {
    /// Reading and parsing the next request (head, then body).
    Read,
    /// Request admitted to the queue; waiting for the worker's completion.
    AwaitSubmit {
        /// Completion ticket from [`SubmissionQueue::try_enqueue`].
        ticket: u64,
    },
    /// Long-polling a job result until it settles or the deadline passes.
    AwaitResult {
        /// Job id being polled.
        job: u64,
        /// When to give up and reply `202 {"pending":true}`.
        deadline: Instant,
    },
    /// Flushing the rendered response from the write buffer.
    Write,
}

/// One live connection: socket, buffers, and parse/lifecycle state.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed (may hold pipelined requests).
    buf: Vec<u8>,
    /// Parsed head of the in-progress request, with its byte length, while
    /// the body is still arriving.
    head: Option<(RequestHead, usize)>,
    phase: Phase,
    /// Rendered response bytes not yet fully written.
    out: Vec<u8>,
    out_pos: usize,
    last_activity: Instant,
    close_after_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            head: None,
            phase: Phase::Read,
            out: Vec::new(),
            out_pos: 0,
            last_activity: now(),
            close_after_write: false,
        }
    }
}

enum ParseOutcome {
    /// A full request was consumed and dispatched (phase changed).
    Dispatched,
    /// More bytes are needed.
    NeedMore,
}

enum Flush {
    Done,
    Pending,
    Failed,
}

enum ResultPoll {
    NoSuchJob,
    Pending,
    Ready(String),
}

struct EventLoop {
    listener: TcpListener,
    poller: Arc<Poller>,
    state: Arc<ServerState>,
    queue: Arc<SubmissionQueue>,
    counters: Arc<HttpCounters>,
    config: ServerConfig,
    conns: BTreeMap<usize, Conn>,
    next_key: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// Tickets whose connection died before the completion arrived. The
    /// job is still admitted (admission is a promise to the scheduler, not
    /// to the socket); only the reply is discarded.
    orphans: Vec<u64>,
}

impl EventLoop {
    fn run(&mut self) -> std::io::Result<()> {
        self.poller
            .add(&self.listener, Event::readable(LISTENER_KEY))?;
        let mut events = Events::new();
        loop {
            let timeout = self.wait_timeout();
            self.poller.wait(&mut events, Some(timeout))?;

            if !self.draining && self.state.shutting_down() {
                self.begin_drain();
            }

            let mut accept_ready = false;
            let mut readable: Vec<usize> = Vec::new();
            for event in events.iter() {
                if event.key == LISTENER_KEY {
                    accept_ready = true;
                } else if event.readable {
                    readable.push(event.key);
                }
                // Write readiness needs no special handling: `step` retries
                // the flush of every `Phase::Write` connection each pass.
            }
            if accept_ready && !self.draining {
                self.accept_ready();
            }
            for key in readable {
                if !self.read_ready(key) {
                    self.close_conn(key);
                }
            }

            // Protocol stepping is cheap (no blocking syscalls), so every
            // connection advances every pass: deadlines fire, completions
            // and settled long-polls get their replies, writes flush.
            let keys: Vec<usize> = self.conns.keys().copied().collect();
            for key in keys {
                self.step(key);
            }
            self.orphans
                .retain(|&ticket| self.queue.take_completion(ticket).is_none());

            if self.draining {
                let expired = self.drain_deadline.is_some_and(|d| now() >= d);
                if self.conns.is_empty() || expired {
                    return Ok(());
                }
            }
            self.rearm();
        }
    }

    /// How long the next `wait` may block: short while anything is parked
    /// on a completion/result or a drain is running, long when idle.
    fn wait_timeout(&self) -> Duration {
        if self.draining {
            return Duration::from_millis(10);
        }
        let mut timeout = Duration::from_millis(250);
        for conn in self.conns.values() {
            let t = match conn.phase {
                Phase::AwaitSubmit { .. } | Phase::AwaitResult { .. } => Duration::from_millis(10),
                Phase::Read | Phase::Write => Duration::from_millis(50),
            };
            timeout = timeout.min(t);
        }
        timeout
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(now() + self.config.drain_timeout);
        // No new jobs; the worker drains what was admitted and exits.
        self.queue.close();
        // Stop accepting; in-flight connections finish their exchange.
        let _ = self.poller.delete(&self.listener);
        for conn in self.conns.values_mut() {
            conn.close_after_write = true;
        }
    }

    fn accept_ready(&mut self) {
        while self.conns.len() < self.config.max_connections {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.next_key;
                    self.next_key += 1;
                    if self.poller.add(&stream, Event::none(key)).is_err() {
                        continue;
                    }
                    self.counters.connections.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(key, Conn::new(stream));
                }
                // WouldBlock: drained the backlog. Anything else
                // (ECONNABORTED, EINTR, fd pressure) is transient — the
                // listener stays registered and the next pass retries.
                Err(_) => break,
            }
        }
    }

    /// Pulls everything the socket has into the connection buffer.
    /// Returns `false` when the connection is dead.
    fn read_ready(&mut self, key: usize) -> bool {
        let Some(conn) = self.conns.get_mut(&key) else {
            return true;
        };
        let mut scratch = [0u8; 8192];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = now();
                    // A client may pipeline ahead, but not without bound.
                    if conn.buf.len()
                        > self.config.max_header_bytes + self.config.max_body_bytes + 8192
                    {
                        return false;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    fn close_conn(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            let _ = self.poller.delete(&conn.stream);
            if let Phase::AwaitSubmit { ticket } = conn.phase {
                self.orphans.push(ticket);
            }
        }
    }

    /// Runs one connection's state machine until it blocks (needs bytes, a
    /// completion, a settled job, or socket writability) or dies.
    fn step(&mut self, key: usize) {
        let Some(mut conn) = self.conns.remove(&key) else {
            return;
        };
        if self.drive(&mut conn) {
            self.conns.insert(key, conn);
        } else {
            let _ = self.poller.delete(&conn.stream);
            if let Phase::AwaitSubmit { ticket } = conn.phase {
                self.orphans.push(ticket);
            }
        }
    }

    fn drive(&mut self, conn: &mut Conn) -> bool {
        loop {
            match conn.phase {
                Phase::Read => match self.advance_parse(conn) {
                    ParseOutcome::Dispatched => continue,
                    ParseOutcome::NeedMore => {
                        let idle = now().saturating_duration_since(conn.last_activity);
                        if !conn.buf.is_empty() || conn.head.is_some() {
                            // Mid-request stall: the client owes us bytes.
                            if idle >= self.config.header_timeout {
                                self.counters.timeout_408.fetch_add(1, Ordering::Relaxed);
                                self.respond(
                                    conn,
                                    Response::error(
                                        408,
                                        "Request Timeout",
                                        "timed out reading the request",
                                    ),
                                    true,
                                );
                                continue;
                            }
                        } else {
                            // Between requests: close idle keep-alives
                            // silently, immediately so while draining.
                            if self.draining || idle >= self.config.keep_alive_timeout {
                                return false;
                            }
                        }
                        return true;
                    }
                },
                Phase::AwaitSubmit { ticket } => match self.queue.take_completion(ticket) {
                    Some(Ok(id)) => {
                        let reply = Value::Map(vec![("job_id".to_string(), Value::U64(id))]);
                        self.respond(conn, Response::json(201, "Created", json_of(&reply)), false);
                        continue;
                    }
                    Some(Err(e)) => {
                        self.respond(conn, Response::error(400, "Bad Request", &e), false);
                        continue;
                    }
                    None => return true,
                },
                Phase::AwaitResult { job, deadline } => match self.poll_result(job) {
                    ResultPoll::Ready(body) => {
                        self.respond(conn, Response::json(200, "OK", body), false);
                        continue;
                    }
                    ResultPoll::NoSuchJob => {
                        self.respond(
                            conn,
                            Response::error(404, "Not Found", "no such job"),
                            false,
                        );
                        continue;
                    }
                    // Give up on the deadline — or immediately on drain, so
                    // an in-flight long-poll cannot stall the shutdown.
                    ResultPoll::Pending if now() >= deadline || self.draining => {
                        self.respond(
                            conn,
                            Response::json(202, "Accepted", r#"{"pending":true}"#),
                            false,
                        );
                        continue;
                    }
                    ResultPoll::Pending => return true,
                },
                Phase::Write => match flush(conn) {
                    Flush::Done => {
                        if conn.close_after_write {
                            return false;
                        }
                        // Back to reading — the buffer may already hold the
                        // next pipelined request.
                        conn.phase = Phase::Read;
                        continue;
                    }
                    Flush::Pending => return true,
                    Flush::Failed => return false,
                },
            }
        }
    }

    /// Advances the incremental parse; dispatches at most one request.
    fn advance_parse(&mut self, conn: &mut Conn) -> ParseOutcome {
        if conn.head.is_none() {
            let Some(head_len) = find_head_end(&conn.buf) else {
                if conn.buf.len() > self.config.max_header_bytes {
                    self.respond(
                        conn,
                        Response::error(400, "Bad Request", "header block too large"),
                        true,
                    );
                    return ParseOutcome::Dispatched;
                }
                return ParseOutcome::NeedMore;
            };
            match RequestHead::parse(&conn.buf[..head_len]) {
                Ok(head) => {
                    if head.content_length > self.config.max_body_bytes {
                        self.counters.payload_413.fetch_add(1, Ordering::Relaxed);
                        self.respond(
                            conn,
                            Response::error(
                                413,
                                "Payload Too Large",
                                "request body exceeds the configured limit",
                            ),
                            true,
                        );
                        return ParseOutcome::Dispatched;
                    }
                    conn.head = Some((head, head_len));
                }
                Err(e) => {
                    self.respond(conn, Response::from(e), true);
                    return ParseOutcome::Dispatched;
                }
            }
        }

        let (head, head_len) = conn.head.as_ref().expect("head parsed above");
        let total = head_len + head.content_length;
        if conn.buf.len() < total {
            return ParseOutcome::NeedMore;
        }
        let (head, head_len) = conn.head.take().expect("head parsed above");
        let body_bytes = conn.buf[head_len..total].to_vec();
        conn.buf.drain(..total);
        conn.last_activity = now();
        let body = match String::from_utf8(body_bytes) {
            Ok(body) => body,
            Err(_) => {
                self.respond(
                    conn,
                    Response::error(400, "Bad Request", "body is not UTF-8"),
                    true,
                );
                return ParseOutcome::Dispatched;
            }
        };
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        if !head.keep_alive {
            conn.close_after_write = true;
        }
        self.dispatch(conn, head, body);
        ParseOutcome::Dispatched
    }

    /// Routes one fully-parsed request: answers immediately or parks the
    /// connection (`AwaitSubmit` / `AwaitResult`).
    fn dispatch(&mut self, conn: &mut Conn, head: RequestHead, body: String) {
        let segments: Vec<&str> = head.path.split('/').filter(|s| !s.is_empty()).collect();
        match (head.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => {
                self.respond(conn, Response::json(200, "OK", r#"{"ok":true}"#), false);
            }
            ("GET", ["stats"]) => {
                let body = self.stats_body();
                self.respond(conn, Response::json(200, "OK", body), false);
            }
            ("POST", ["shutdown"]) => {
                // Reply first, then raise the flag: the drain beginning next
                // pass flushes this response before the close.
                self.respond(conn, Response::json(200, "OK", r#"{"ok":true}"#), true);
                self.state.request_shutdown();
            }
            ("POST", ["jobs"]) => self.dispatch_submit(conn, &body),
            ("GET", ["jobs", id]) => match id.parse::<u64>() {
                Ok(id) => {
                    let status = self
                        .state
                        .scheduler
                        .lock()
                        .expect("scheduler lock")
                        .poll(id);
                    match status {
                        Some(status) => {
                            self.respond(conn, Response::json(200, "OK", json_of(&status)), false);
                        }
                        None => self.respond(
                            conn,
                            Response::error(404, "Not Found", "no such job"),
                            false,
                        ),
                    }
                }
                Err(_) => {
                    self.respond(
                        conn,
                        Response::error(400, "Bad Request", "bad job id"),
                        false,
                    );
                }
            },
            ("GET", ["jobs", id, "result"]) => match id.parse::<u64>() {
                Ok(id) => {
                    let wait_ms = head.query_u64("wait_ms").unwrap_or(0).min(MAX_WAIT_MS);
                    // Park; `drive` polls immediately, so settled jobs and
                    // `wait_ms=0` answer without a extra pass.
                    conn.phase = Phase::AwaitResult {
                        job: id,
                        deadline: now() + Duration::from_millis(wait_ms),
                    };
                }
                Err(_) => {
                    self.respond(
                        conn,
                        Response::error(400, "Bad Request", "bad job id"),
                        false,
                    );
                }
            },
            ("DELETE", ["jobs", id]) => match id.parse::<u64>() {
                Ok(id) => {
                    let cancelled = self
                        .state
                        .scheduler
                        .lock()
                        .expect("scheduler lock")
                        .cancel(id);
                    let reply = Value::Map(vec![("cancelled".to_string(), Value::Bool(cancelled))]);
                    self.respond(conn, Response::json(200, "OK", json_of(&reply)), false);
                }
                Err(_) => {
                    self.respond(
                        conn,
                        Response::error(400, "Bad Request", "bad job id"),
                        false,
                    );
                }
            },
            _ => {
                self.respond(
                    conn,
                    Response::error(404, "Not Found", "no such route"),
                    false,
                );
            }
        }
    }

    /// `POST /jobs`: validate, check the tenant quota, admit to the bounded
    /// queue — or push back with `429` + `Retry-After`.
    fn dispatch_submit(&mut self, conn: &mut Conn, body: &str) {
        if self.draining {
            self.respond(
                conn,
                Response::error(503, "Service Unavailable", "server is shutting down"),
                true,
            );
            return;
        }
        let (tenant, scenario) = match parse_submission(body) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.respond(conn, Response::error(400, "Bad Request", &e), false);
                return;
            }
        };
        let saturated = self
            .state
            .scheduler
            .lock()
            .expect("scheduler lock")
            .tenant_quota_saturated(tenant.as_deref().unwrap_or(""));
        if saturated {
            self.counters.quota_429.fetch_add(1, Ordering::Relaxed);
            let mut reply = Response::error(429, "Too Many Requests", "tenant quota exhausted");
            // A spent quota does not refill on its own; hint a long back-off.
            reply.retry_after_s = Some(60);
            self.respond(conn, reply, false);
            return;
        }
        match self.queue.try_enqueue(tenant, scenario) {
            Ok(ticket) => {
                conn.phase = Phase::AwaitSubmit { ticket };
            }
            Err(()) => {
                self.counters.queue_429.fetch_add(1, Ordering::Relaxed);
                let mut reply =
                    Response::error(429, "Too Many Requests", "submission queue is full");
                reply.retry_after_s = Some(1);
                self.respond(conn, reply, false);
            }
        }
    }

    /// Renders `response` into the connection's write buffer and switches
    /// it to `Phase::Write`. `close` forces `Connection: close`.
    fn respond(&self, conn: &mut Conn, response: Response, close: bool) {
        if close || self.draining {
            conn.close_after_write = true;
        }
        conn.out
            .extend_from_slice(&response.render(!conn.close_after_write));
        self.counters.responses.fetch_add(1, Ordering::Relaxed);
        conn.phase = Phase::Write;
    }

    fn poll_result(&self, id: u64) -> ResultPoll {
        let scheduler = self.state.scheduler.lock().expect("scheduler lock");
        match scheduler.poll(id) {
            None => ResultPoll::NoSuchJob,
            Some(status) if status.state != JobState::Running => {
                let mut fields = vec![
                    ("status".to_string(), status.state.to_value()),
                    ("scenario_id".to_string(), Value::Str(status.scenario_id)),
                    ("tenant".to_string(), Value::Str(status.tenant)),
                    ("snapshot".to_string(), status.snapshot.to_value()),
                ];
                if let Some(estimate) = scheduler.result(id) {
                    fields.push(("estimate".to_string(), estimate.to_value()));
                }
                ResultPoll::Ready(json_of(&Value::Map(fields)))
            }
            Some(_) => ResultPoll::Pending,
        }
    }

    /// Scheduler stats with the wire-level `http` block appended.
    fn stats_body(&self) -> String {
        let stats = self.state.scheduler.lock().expect("scheduler lock").stats();
        let mut value = stats.to_value();
        if let Value::Map(fields) = &mut value {
            fields.push((
                "http".to_string(),
                snapshot_http_stats(&self.counters, &self.queue).to_value(),
            ));
        }
        json_of(&value)
    }

    /// Re-arms every registered source for the next pass (the poller's
    /// delivery model is oneshot: delivered events clear interest).
    fn rearm(&mut self) {
        for (key, conn) in &self.conns {
            let interest = match conn.phase {
                Phase::Write => Event::writable(*key),
                _ => Event::readable(*key),
            };
            let _ = self.poller.modify(&conn.stream, interest);
        }
        if !self.draining {
            let interest = if self.conns.len() < self.config.max_connections {
                Event::readable(LISTENER_KEY)
            } else {
                // At the cap: leave the backlog in the kernel; re-arms once
                // a connection closes.
                Event::none(LISTENER_KEY)
            };
            let _ = self.poller.modify(&self.listener, interest);
        }
    }
}

fn flush(conn: &mut Conn) -> Flush {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Flush::Failed,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flush::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Failed,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    Flush::Done
}

/// Parses a `POST /jobs` body into `(tenant, validated scenario)`.
fn parse_submission(body: &str) -> Result<(Option<String>, Scenario), String> {
    let value: Value = serde_json::from_str(body).map_err(|e| format!("bad JSON body: {e}"))?;
    let tenant: Option<String> = match value.get("tenant") {
        Some(v) => Some(String::from_value(v).map_err(|e| format!("tenant: {e}"))?),
        None => None,
    };
    let scenario_value = value
        .get("scenario")
        .ok_or_else(|| "body needs a `scenario` object".to_string())?;
    let scenario = Scenario::from_value(scenario_value).map_err(|e| e.to_string())?;
    scenario.validate()?;
    Ok((tenant, scenario))
}
