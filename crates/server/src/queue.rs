//! The bounded job-submission queue in front of the scheduler.
//!
//! **This queue is the determinism boundary.** The event loop parses
//! requests in whatever order sockets become readable, but every accepted
//! `POST /jobs` passes through here, and a *single* worker thread drains
//! the queue front-to-back into [`Scheduler::submit_workload`]. Admission
//! order — the order of successful `try_enqueue` calls — is therefore the
//! only order the scheduler ever observes; socket
//! readiness order is invisible to it.
//!
//! The queue is bounded: when `len == capacity` new submissions are
//! rejected and the caller replies `429 Too Many Requests` with
//! `Retry-After`. That is the server's explicit backpressure signal —
//! nothing ever blocks the event loop, and nothing is silently dropped.
//!
//! [`Scheduler::submit_workload`]: crate::scheduler::Scheduler::submit_workload

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use lbs_bench::Scenario;

/// One admitted-but-not-yet-built submission.
pub(crate) struct PendingSubmission {
    /// Ticket handed back to the event loop; completions are keyed on it.
    pub ticket: u64,
    /// Tenant the job was submitted under (`None` = default tenant).
    pub tenant: Option<String>,
    /// The declarative scenario to build and submit.
    pub scenario: Scenario,
}

struct QueueInner {
    pending: VecDeque<PendingSubmission>,
    next_ticket: u64,
    high_water: usize,
    paused: bool,
    closed: bool,
}

/// Bounded, explicitly backpressured admission queue (see module docs).
///
/// Constructed by the server; exposed through
/// [`Server::admission_queue`](crate::Server::admission_queue) so tests and
/// operators can pause the drain worker (to provoke saturation
/// deterministically) and read depth / high-water marks.
///
/// ```
/// use lbs_server::SubmissionQueue;
///
/// let queue = SubmissionQueue::new(2);
/// assert_eq!(queue.capacity(), 2);
/// assert_eq!(queue.len(), 0);
/// // `pause` stops the drain worker after its current job; `resume`
/// // restarts it. While paused the queue still admits up to `capacity`
/// // jobs, then rejects with 429 — which is how the saturation tests
/// // provoke deterministic backpressure.
/// queue.pause();
/// queue.resume();
/// ```
pub struct SubmissionQueue {
    capacity: usize,
    inner: Mutex<QueueInner>,
    ready: Condvar,
    completions: Mutex<BTreeMap<u64, Result<u64, String>>>,
}

impl SubmissionQueue {
    /// A queue admitting at most `capacity` (≥ 1) undrained submissions.
    pub fn new(capacity: usize) -> Arc<SubmissionQueue> {
        Arc::new(SubmissionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner {
                pending: VecDeque::new(),
                next_ticket: 1,
                high_water: 0,
                paused: false,
                closed: false,
            }),
            ready: Condvar::new(),
            completions: Mutex::new(BTreeMap::new()),
        })
    }

    /// Admits a submission, returning its completion ticket — or `Err(())`
    /// when the queue is full (or draining), in which case the caller owes
    /// the client a `429` / `503`.
    pub(crate) fn try_enqueue(
        &self,
        tenant: Option<String>,
        scenario: Scenario,
    ) -> Result<u64, ()> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.pending.len() >= self.capacity {
            return Err(());
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.pending.push_back(PendingSubmission {
            ticket,
            tenant,
            scenario,
        });
        inner.high_water = inner.high_water.max(inner.pending.len());
        drop(inner);
        self.ready.notify_one();
        Ok(ticket)
    }

    /// Blocks until a submission is available (respecting `pause`) or the
    /// queue is closed *and* empty — the worker's exit condition.
    pub(crate) fn pop_blocking(&self) -> Option<PendingSubmission> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            // A closed queue still drains: every admitted job was promised
            // a completion, so `closed` only stops *new* tickets.
            if !inner.paused || inner.closed {
                if let Some(job) = inner.pending.pop_front() {
                    return Some(job);
                }
                if inner.closed {
                    return None;
                }
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(500))
                .expect("queue lock");
            inner = guard;
        }
    }

    /// Records the outcome of a drained submission (job id or error).
    pub(crate) fn complete(&self, ticket: u64, result: Result<u64, String>) {
        self.completions
            .lock()
            .expect("completions lock")
            .insert(ticket, result);
    }

    /// Takes the completion for `ticket`, if the worker has produced one.
    pub(crate) fn take_completion(&self, ticket: u64) -> Option<Result<u64, String>> {
        self.completions
            .lock()
            .expect("completions lock")
            .remove(&ticket)
    }

    /// Stops the drain worker after its current job. Admission continues
    /// until the queue fills; then clients see deterministic `429`s.
    pub fn pause(&self) {
        self.inner.lock().expect("queue lock").paused = true;
    }

    /// Restarts the drain worker.
    pub fn resume(&self) {
        self.inner.lock().expect("queue lock").paused = false;
        self.ready.notify_all();
    }

    /// Refuses all further admissions; the worker drains what was already
    /// admitted and exits. Called when the server starts its shutdown drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth (admitted, not yet drained by the worker).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").pending.len()
    }

    /// `true` when no submissions are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deepest the queue has ever been — `high_water == capacity` is the
    /// witness that observed `429`s were genuine saturation.
    pub fn high_water(&self) -> usize {
        self.inner.lock().expect("queue lock").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn scenario(i: usize) -> Scenario {
        let toml = format!(
            "id = \"q_{i}\"\nseed = {}\n\n[dataset]\nmodel = \"uniform\"\nsize = 40\n\n\
             [interface]\nkind = \"lr\"\nk = 5\n\n[aggregate]\nkind = \"count\"\n\n\
             [estimator]\nalgorithm = \"lr\"\nbudget = 60\n",
            100 + i
        );
        let value = lbs_bench::toml_lite::parse(&toml).expect("well-formed");
        Scenario::from_value(&value).expect("deserializes")
    }

    #[test]
    fn bounded_admission_and_fifo_drain() {
        let queue = SubmissionQueue::new(2);
        let t1 = queue.try_enqueue(None, scenario(1)).expect("admits");
        let t2 = queue
            .try_enqueue(Some("a".into()), scenario(2))
            .expect("admits");
        assert!(t2 > t1, "tickets are monotone");
        assert!(
            queue.try_enqueue(None, scenario(3)).is_err(),
            "full rejects"
        );
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.high_water(), 2);

        let first = queue.pop_blocking().expect("drains");
        assert_eq!(first.ticket, t1, "FIFO: admission order is drain order");
        queue.complete(first.ticket, Ok(7));
        assert_eq!(queue.take_completion(t1), Some(Ok(7)));
        assert_eq!(
            queue.take_completion(t1),
            None,
            "completions are taken once"
        );

        queue.close();
        assert!(
            queue.try_enqueue(None, scenario(4)).is_err(),
            "closed rejects"
        );
        assert_eq!(queue.pop_blocking().expect("drains the rest").ticket, t2);
        assert!(
            queue.pop_blocking().is_none(),
            "closed + empty ends the worker"
        );
    }

    #[test]
    fn pause_stalls_the_worker_but_not_admission() {
        let queue = SubmissionQueue::new(4);
        queue.pause();
        queue
            .try_enqueue(None, scenario(1))
            .expect("admits while paused");
        let q = Arc::clone(&queue);
        let worker = std::thread::spawn(move || q.pop_blocking().map(|j| j.ticket));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(queue.len(), 1, "paused worker drained the queue");
        queue.resume();
        assert_eq!(worker.join().expect("worker"), Some(1));
    }
}
