//! Queue-saturation test: with the drain worker paused, the bounded
//! admission queue fills, the next submission draws a deterministic `429`,
//! and — after the worker resumes — every admitted job's served estimate is
//! bitwise identical to a local batch run of the same scenario.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use lbs_bench::{Scale, Scenario, ScenarioContext};
use lbs_server::{http_request, Scheduler, SchedulerConfig, Server, ServerConfig, ServerState};
use serde::{Deserialize, Value};

fn scenario_json(id: &str, seed: u64) -> String {
    format!(
        r#"{{"id":"{id}","seed":{seed},
            "dataset":{{"model":"uniform","size":45}},
            "interface":{{"kind":"lr","k":5}},
            "aggregate":{{"kind":"count"}},
            "estimator":{{"algorithm":"lr","budget":90}}}}"#
    )
}

/// Writes one full `POST /jobs` request and returns the socket without
/// reading the response — the reply only arrives once the drain worker
/// processes the admitted job.
fn send_submit(addr: &str, scenario: &str) -> TcpStream {
    let body = format!(r#"{{"scenario":{scenario}}}"#);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(
            format!(
                "POST /jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write submit");
    stream
}

/// Reads the parked socket's eventual response (status line + JSON body).
fn read_response(stream: TcpStream) -> (u16, String) {
    use std::io::Read;
    let mut raw = Vec::new();
    let mut stream = stream;
    let mut scratch = [0u8; 4096];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&scratch[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in: {text}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn wait_for_queue_len(queue: &lbs_server::SubmissionQueue, len: usize) {
    // lbs-lint: allow(ambient-time, reason = "test-harness deadline for observing queue depth; no estimate depends on it")
    let deadline = Instant::now() + Duration::from_secs(10);
    while queue.len() != len {
        assert!(
            // lbs-lint: allow(ambient-time, reason = "test-harness deadline for observing queue depth; no estimate depends on it")
            Instant::now() < deadline,
            "queue never reached depth {len} (at {})",
            queue.len()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs `scenario` through the local batch path exactly the way
/// `repro client --check-batch` does, returning the final estimate.
fn batch_value(scenario_json: &str) -> f64 {
    let value: Value = serde_json::from_str(scenario_json).expect("scenario JSON");
    let scenario = Scenario::from_value(&value).expect("scenario deserializes");
    scenario.validate().expect("scenario validates");
    let ctx = ScenarioContext {
        scale: Scale::Small,
        seed: 2015,
        threads: 1,
        smoke: false,
    };
    let workload = lbs_bench::build_workload(&scenario, &ctx).expect("workload builds");
    let backend = workload.backend();
    let mut session = workload
        .start_session(backend, workload.session_config(1, 0))
        .expect("session starts");
    while !session.is_finished() {
        session.step();
    }
    session.finalize().expect("batch run finishes").value
}

#[test]
fn saturation_draws_deterministic_429s_and_admitted_results_match_batch() {
    let state = ServerState::new(Scheduler::new(SchedulerConfig::default()));
    let config = ServerConfig {
        queue_depth: 2,
        ..ServerConfig::default()
    };
    let server = Server::start_with_config("127.0.0.1:0", state, config).expect("bind");
    let addr = server.addr().to_string();
    let queue = server.admission_queue();

    // Pause the drain worker so admissions pile up deterministically.
    queue.pause();

    // Two submissions fill the queue (capacity 2); the sockets park waiting
    // for their tickets to complete. Waiting for the observed queue depth
    // between sends pins the admission order.
    let scenarios = [scenario_json("sat_a", 101), scenario_json("sat_b", 202)];
    let parked_a = send_submit(&addr, &scenarios[0]);
    wait_for_queue_len(&queue, 1);
    let parked_b = send_submit(&addr, &scenarios[1]);
    wait_for_queue_len(&queue, 2);

    // The queue is saturated: the third submission is rejected immediately
    // with 429 + Retry-After even though the worker has made no progress.
    let rejected = send_submit(&addr, &scenario_json("sat_c", 303));
    let (status, _) = read_response(rejected);
    assert_eq!(status, 429, "a full queue must answer 429");

    let stats = server.http_stats();
    assert_eq!(stats.queue_429, 1, "exactly one rejection");
    assert_eq!(
        stats.queue_high_water, stats.queue_capacity,
        "429s only happen at saturation"
    );

    // Resume the worker: both admitted jobs are drained in admission order
    // and their submitters finally get 201s.
    queue.resume();
    let (status_a, reply_a) = read_response(parked_a);
    let (status_b, reply_b) = read_response(parked_b);
    assert_eq!((status_a, status_b), (201, 201), "{reply_a} / {reply_b}");

    // The served estimates are bitwise identical to local batch runs — the
    // saturation episode and concurrent admission changed nothing.
    for (reply, scenario) in [(&reply_a, &scenarios[0]), (&reply_b, &scenarios[1])] {
        let reply: Value = serde_json::from_str(reply).expect("submit reply");
        let job_id = match reply.get("job_id") {
            Some(Value::U64(n)) => *n,
            other => panic!("job_id missing: {other:?}"),
        };
        let (status, result) = http_request(
            &addr,
            "GET",
            &format!("/jobs/{job_id}/result?wait_ms=60000"),
            None,
        )
        .expect("result");
        assert_eq!(status, 200, "{result}");
        let result: Value = serde_json::from_str(&result).expect("result JSON");
        let served = result
            .get("estimate")
            .and_then(|e| e.get("value"))
            .and_then(Value::as_f64)
            .expect("estimate value");
        assert_eq!(
            served.to_bits(),
            batch_value(scenario).to_bits(),
            "served estimate diverged from the batch run"
        );
    }

    let state = server.state();
    state.request_shutdown();
    server.join();
}
